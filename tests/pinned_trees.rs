//! Pinned-seed regression fixtures for the hot-path refactor.
//!
//! The trees and round totals live in `tests/common/fixtures.rs`,
//! shared with `cli_smoke.rs` (which pins the CLI's printed output to
//! the same expectations). The linear-algebra refactor must be
//! bit-transparent: same seed, same tree, same ledger total — on every
//! graph of the standard suite, through both the cold and the prepared
//! path, and under the iterated-squaring Schur route too.
//!
//! If a change legitimately alters the sampled stream (a *semantic*
//! change, not an optimization), the fixtures must be regenerated and
//! the change called out loudly in the PR.

#[path = "common/fixtures.rs"]
mod fixtures;

use cct::core::{CliqueTreeSampler, SchurComputation};
use fixtures::{cli_config, exact_suite, standard_suite};
use rand::SeedableRng;

#[test]
fn thm1_trees_are_byte_identical_to_pre_refactor_fixtures() {
    let sampler = CliqueTreeSampler::new(cli_config());
    for (name, g, tree, rounds) in standard_suite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = sampler.sample(&g, &mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "tree changed on {name}");
        assert_eq!(
            report.total_rounds(),
            rounds,
            "round total changed on {name}"
        );
    }
}

#[test]
fn every_backend_reproduces_the_pinned_fixtures() {
    // The backend axis: Dense, Sparse, and Auto must all emit the
    // pre-refactor trees and round totals bit for bit — representation
    // is a memory/speed knob, never a semantic one.
    for backend in fixtures::backends() {
        let sampler = CliqueTreeSampler::new(cli_config().backend(backend));
        for (name, g, tree, rounds) in standard_suite() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let report = sampler.sample(&g, &mut rng).unwrap();
            assert_eq!(
                report.tree.edges(),
                &tree[..],
                "tree changed on {name} under {backend}"
            );
            assert_eq!(
                report.total_rounds(),
                rounds,
                "round total changed on {name} under {backend}"
            );
        }
        // The prepared path too, on one representative fixture.
        let (name, g, tree, rounds) = standard_suite().swap_remove(0);
        let prepared = CliqueTreeSampler::new(cli_config().backend(backend))
            .prepare(&g)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = prepared.sample(&mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "{name} under {backend}");
        assert_eq!(report.total_rounds(), rounds, "{name} under {backend}");
    }
}

#[test]
fn prepared_path_reproduces_the_same_fixtures() {
    let sampler = CliqueTreeSampler::new(cli_config());
    for (name, g, tree, rounds) in standard_suite() {
        let prepared = sampler.prepare(&g).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = prepared.sample(&mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "tree changed on {name}");
        assert_eq!(
            report.total_rounds(),
            rounds,
            "round total changed on {name}"
        );
    }
}

#[test]
fn exact_variant_fixtures_hold() {
    let sampler = CliqueTreeSampler::new(cct::core::SamplerConfig::exact_variant().threads(4));
    for (name, g, tree, rounds) in exact_suite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = sampler.sample(&g, &mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "tree changed on {name}");
        assert_eq!(
            report.total_rounds(),
            rounds,
            "round total changed on {name}"
        );
    }
}

#[test]
fn weight_one_graphs_reproduce_the_unweighted_fixtures_bit_for_bit() {
    // The weighted-graph degenerate case: rebuilding every fixture
    // graph through `from_weighted_edges` with explicit weight 1.0 must
    // leave the sampled stream untouched — same pinned tree, same round
    // total — across the backend axis and across worker counts. Any
    // drift here means the weighted code path is not a strict
    // generalization of the unweighted one.
    use cct::core::Workers;
    for backend in [cct::core::Backend::Dense, cct::core::Backend::Sparse] {
        for workers in [1usize, 4] {
            let sampler = CliqueTreeSampler::new(
                cli_config()
                    .backend(backend)
                    .workers(Workers::Fixed(workers)),
            );
            for (name, g, tree, rounds) in standard_suite() {
                let wg = fixtures::weight_one(&g);
                let mut rng = rand::rngs::StdRng::seed_from_u64(42);
                let report = sampler.sample(&wg, &mut rng).unwrap();
                assert_eq!(
                    report.tree.edges(),
                    &tree[..],
                    "weight-1 tree drifted on {name} under {backend} with {workers} workers"
                );
                assert_eq!(
                    report.total_rounds(),
                    rounds,
                    "weight-1 rounds drifted on {name} under {backend} with {workers} workers"
                );
            }
        }
    }
    // The exact variant's fixtures hold under weight-1 too.
    let sampler = CliqueTreeSampler::new(cct::core::SamplerConfig::exact_variant().threads(4));
    for (name, g, tree, rounds) in exact_suite() {
        let wg = fixtures::weight_one(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = sampler.sample(&wg, &mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "exact weight-1 on {name}");
        assert_eq!(report.total_rounds(), rounds, "exact weight-1 on {name}");
    }
}

#[test]
fn f32_fixtures_hold_across_workers_and_backends() {
    // The f32 determinism contract: same seed ⇒ byte-identical tree and
    // ledger under `Precision::F32`, across worker counts and matrix
    // backends, cold and prepared — exactly the f64 contract, just on
    // the f32 stream's own pinned expectations.
    use cct::core::{Backend, Precision, Workers};
    for backend in [Backend::Dense, Backend::Sparse, Backend::Auto] {
        for workers in [1usize, 4] {
            let sampler = CliqueTreeSampler::new(
                fixtures::cli_config()
                    .precision(Precision::F32)
                    .backend(backend)
                    .workers(Workers::Fixed(workers)),
            );
            for (name, g, tree, rounds) in fixtures::f32_suite() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(42);
                let report = sampler.sample(&g, &mut rng).unwrap();
                assert_eq!(
                    report.tree.edges(),
                    &tree[..],
                    "f32 tree drifted on {name} under {backend} with {workers} workers"
                );
                assert_eq!(
                    report.total_rounds(),
                    rounds,
                    "f32 rounds drifted on {name} under {backend} with {workers} workers"
                );
            }
        }
        // The prepared path too, on one representative fixture.
        let (name, g, tree, rounds) = fixtures::f32_suite().swap_remove(0);
        let prepared = CliqueTreeSampler::new(
            fixtures::cli_config()
                .precision(Precision::F32)
                .backend(backend),
        )
        .prepare(&g)
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = prepared.sample(&mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "{name} under {backend}");
        assert_eq!(report.total_rounds(), rounds, "{name} under {backend}");
    }
}

#[test]
fn iterated_squaring_route_matches_exact_solve_trees() {
    // The block-squaring rewrite sits on the IteratedSquaring Schur
    // route; at tight tolerance it must sample the same trees as the
    // (numerically clean) exact solve, with identical ledgers.
    for (name, g, _, _) in standard_suite() {
        let exact = CliqueTreeSampler::new(cli_config());
        let squaring = CliqueTreeSampler::new(
            cli_config().schur(SchurComputation::IteratedSquaring { tol: 1e-12 }),
        );
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = exact.sample(&g, &mut r1).unwrap();
        let b = squaring.sample(&g, &mut r2).unwrap();
        assert_eq!(a.tree, b.tree, "{name}");
        assert_eq!(a.rounds, b.rounds, "{name}");
    }
}
