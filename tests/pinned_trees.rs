//! Pinned-seed regression fixtures for the hot-path refactor.
//!
//! The trees and round totals below were captured from `main` *before*
//! the block-squaring / scratch-kernel / `PreparedSampler` rewrite (CLI:
//! `cct thm1 --graph <spec> --seed 42`, i.e. the default Theorem-1
//! config with 4 local threads). The linear-algebra refactor must be
//! bit-transparent: same seed, same tree, same ledger total — on every
//! graph of the standard suite, through both the cold and the prepared
//! path, and under the iterated-squaring Schur route too.
//!
//! If a change legitimately alters the sampled stream (a *semantic*
//! change, not an optimization), these fixtures must be regenerated and
//! the change called out loudly in the PR.

use cct::core::{CliqueTreeSampler, SamplerConfig, SchurComputation};
use cct::graph::{generators, Graph};
use rand::SeedableRng;

/// The CLI's default thm1 configuration (`src/main.rs` sequential path).
fn cli_config() -> SamplerConfig {
    SamplerConfig::new().threads(4)
}

fn edges(spec: &str) -> Vec<(usize, usize)> {
    spec.split_whitespace()
        .map(|e| {
            let (u, v) = e.split_once('-').expect("u-v");
            (u.parse().unwrap(), v.parse().unwrap())
        })
        .collect()
}

/// `(name, graph, pinned tree at seed 42, pinned total rounds)`.
type Fixture = (&'static str, Graph, Vec<(usize, usize)>, u64);

fn standard_suite() -> Vec<Fixture> {
    vec![
        (
            "petersen",
            generators::petersen(),
            edges("0-1 0-5 1-2 2-3 3-4 5-7 5-8 6-8 7-9"),
            1625,
        ),
        (
            "complete:9",
            generators::complete(9),
            edges("0-2 1-2 1-7 3-7 3-8 4-8 5-6 6-7"),
            1146,
        ),
        (
            "grid:3x3",
            generators::grid(3, 3),
            edges("0-1 0-3 1-2 2-5 3-6 4-5 4-7 7-8"),
            1159,
        ),
        (
            "lollipop:5:4",
            generators::lollipop(5, 4),
            edges("0-2 0-4 1-2 2-3 4-5 5-6 6-7 7-8"),
            1190,
        ),
        (
            "cycle:8",
            generators::cycle(8),
            edges("0-1 0-7 1-2 2-3 3-4 4-5 5-6"),
            1912,
        ),
        (
            "kdense:9",
            generators::k_dense_irregular(9),
            edges("0-6 0-7 0-8 1-7 2-6 3-7 4-7 5-7"),
            1188,
        ),
        (
            "wheel:9",
            generators::wheel(9),
            edges("0-1 0-8 2-3 3-4 4-5 5-6 6-7 7-8"),
            1134,
        ),
    ]
}

#[test]
fn thm1_trees_are_byte_identical_to_pre_refactor_fixtures() {
    let sampler = CliqueTreeSampler::new(cli_config());
    for (name, g, tree, rounds) in standard_suite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = sampler.sample(&g, &mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "tree changed on {name}");
        assert_eq!(
            report.total_rounds(),
            rounds,
            "round total changed on {name}"
        );
    }
}

#[test]
fn prepared_path_reproduces_the_same_fixtures() {
    let sampler = CliqueTreeSampler::new(cli_config());
    for (name, g, tree, rounds) in standard_suite() {
        let prepared = sampler.prepare(&g).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = prepared.sample(&mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "tree changed on {name}");
        assert_eq!(
            report.total_rounds(),
            rounds,
            "round total changed on {name}"
        );
    }
}

#[test]
fn exact_variant_fixtures_hold() {
    // The Appendix variant at the same seed (CLI: `cct exact --seed 42`).
    let sampler = CliqueTreeSampler::new(SamplerConfig::exact_variant().threads(4));
    let fixtures = [
        (
            "petersen",
            generators::petersen(),
            edges("0-5 1-2 1-6 2-7 3-4 3-8 4-9 5-7 6-8"),
            2684u64,
        ),
        (
            "complete:9",
            generators::complete(9),
            edges("0-1 0-4 0-5 1-8 2-4 3-8 6-7 6-8"),
            2244,
        ),
        (
            "grid:3x3",
            generators::grid(3, 3),
            edges("0-1 0-3 1-2 1-4 2-5 5-8 6-7 7-8"),
            2244,
        ),
    ];
    for (name, g, tree, rounds) in fixtures {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let report = sampler.sample(&g, &mut rng).unwrap();
        assert_eq!(report.tree.edges(), &tree[..], "tree changed on {name}");
        assert_eq!(
            report.total_rounds(),
            rounds,
            "round total changed on {name}"
        );
    }
}

#[test]
fn iterated_squaring_route_matches_exact_solve_trees() {
    // The block-squaring rewrite sits on the IteratedSquaring Schur
    // route; at tight tolerance it must sample the same trees as the
    // (numerically clean) exact solve, with identical ledgers.
    for (name, g, _, _) in standard_suite() {
        let exact = CliqueTreeSampler::new(cli_config());
        let squaring = CliqueTreeSampler::new(
            cli_config().schur(SchurComputation::IteratedSquaring { tol: 1e-12 }),
        );
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = exact.sample(&g, &mut r1).unwrap();
        let b = squaring.sample(&g, &mut r2).unwrap();
        assert_eq!(a.tree, b.tree, "{name}");
        assert_eq!(a.rounds, b.rounds, "{name}");
    }
}
