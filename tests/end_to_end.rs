//! Workspace-level integration tests exercising the public facade across
//! crates: the full sampler pipeline, the doubling sampler, and the
//! baselines, all agreeing with each other on the same inputs.

use cct::core::{EngineChoice, SchurComputation};
use cct::graph::{spanning_tree_count_exact, spanning_tree_distribution};
use cct::prelude::*;
use cct::walks::stats;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn quick_config() -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost)
}

#[test]
fn all_three_samplers_agree_on_exact_distribution() {
    // The distributed sampler, Aldous–Broder, and Wilson must all match
    // the Matrix–Tree law of the same graph.
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    let exact = spanning_tree_distribution(&g);
    let trials = 12_000;

    let sampler = CliqueTreeSampler::new(quick_config());
    let mut r = rng(1);
    let counts =
        stats::empirical_counts((0..trials).map(|_| sampler.sample(&g, &mut r).unwrap().tree));
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
    assert!(stat < crit, "distributed: {stat:.1} ≥ {crit:.1}");

    let mut r = rng(2);
    let counts =
        stats::empirical_counts((0..trials).map(|_| aldous_broder(&g, 0, &mut r).unwrap()));
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
    assert!(stat < crit, "aldous-broder: {stat:.1} ≥ {crit:.1}");

    let mut r = rng(3);
    let counts = stats::empirical_counts((0..trials).map(|_| wilson(&g, 0, &mut r).unwrap()));
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
    assert!(stat < crit, "wilson: {stat:.1} ≥ {crit:.1}");
}

#[test]
fn sampler_handles_the_full_generator_suite() {
    let mut r = rng(4);
    let sampler = CliqueTreeSampler::new(quick_config());
    let graphs = vec![
        generators::complete(12),
        generators::cycle(11),
        generators::path(10),
        generators::star(12),
        generators::wheel(10),
        generators::grid(3, 4),
        generators::petersen(),
        generators::barbell(6),
        generators::lollipop(6, 5),
        generators::complete_bipartite(4, 5),
        generators::k_dense_irregular(12),
        generators::erdos_renyi_connected(14, 0.35, &mut r),
        generators::random_regular(12, 3, &mut r),
    ];
    for g in graphs {
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure, "failure on n = {}", g.n());
        assert_eq!(report.tree.n(), g.n());
        for &(u, v) in report.tree.edges() {
            assert!(g.has_edge(u, v));
        }
        // Total first-visit edges = n − 1 across phases.
        let new_total: usize = report.phases.iter().map(|p| p.new_vertices).sum();
        assert_eq!(new_total, g.n() - 1);
    }
}

#[test]
fn schur_route_choice_does_not_change_results() {
    // Exact solve vs iterated squaring: same seed, same tree (the
    // numerics agree far below sampling granularity).
    let mut r1 = rng(5);
    let mut r2 = rng(5);
    let g = generators::erdos_renyi_connected(16, 0.3, &mut rng(6));
    let t1 = CliqueTreeSampler::new(quick_config().schur(SchurComputation::ExactSolve))
        .sample(&g, &mut r1)
        .unwrap();
    let t2 = CliqueTreeSampler::new(
        quick_config().schur(SchurComputation::IteratedSquaring { tol: 1e-12 }),
    )
    .sample(&g, &mut r2)
    .unwrap();
    assert_eq!(t1.tree, t2.tree);
}

#[test]
fn doubling_sampler_matches_exact_distribution() {
    let g = generators::complete(4);
    let exact = spanning_tree_distribution(&g);
    let trials = 8_000;
    let mut r = rng(7);
    let counts = stats::empirical_counts((0..trials).map(|_| {
        let mut clique = Clique::new(4);
        sample_tree_via_doubling(&mut clique, &g, 2.0, 500, &mut r).0
    }));
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
    assert!(stat < crit, "doubling sampler: {stat:.1} ≥ {crit:.1}");
}

#[test]
fn round_reports_are_consistent() {
    let g = generators::complete(25);
    let sampler = CliqueTreeSampler::new(quick_config());
    let mut r = rng(8);
    let report = sampler.sample(&g, &mut r).unwrap();
    // Phase ledgers sum to the total ledger.
    let phase_sum: u64 = report.phases.iter().map(|p| p.rounds.total_rounds()).sum();
    assert_eq!(phase_sum, report.total_rounds());
    // ρ = 5 on K25 → ceil(24/4) = 6 phases.
    assert_eq!(report.num_phases(), 6);
}

#[test]
fn matrix_tree_agrees_with_known_formulas_via_facade() {
    assert_eq!(
        spanning_tree_count_exact(&generators::complete(6)).unwrap(),
        1296
    );
    assert_eq!(
        spanning_tree_count_exact(&generators::complete_bipartite(3, 4)).unwrap(),
        3i128.pow(3) * 4i128.pow(2)
    );
    // Petersen graph: 2000 spanning trees (classical).
    assert_eq!(
        spanning_tree_count_exact(&generators::petersen()).unwrap(),
        2000
    );
}

#[test]
fn exact_variant_end_to_end() {
    let g = generators::erdos_renyi_connected(20, 0.35, &mut rng(9));
    let config = SamplerConfig::exact_variant()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost);
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(10);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert!(!report.monte_carlo_failure);
    assert_eq!(report.tree.edges().len(), 19);
    // Exact variant: more, smaller phases (ρ = n^{1/3}).
    assert!(report.num_phases() >= 9, "{} phases", report.num_phases());
}

#[test]
fn engines_differ_only_in_ledger() {
    let g = generators::erdos_renyi_connected(27, 0.3, &mut rng(11));
    let configs = [
        quick_config(),
        quick_config().engine(EngineChoice::Semiring),
        quick_config().engine(EngineChoice::FastOracle {
            alpha: cct::sim::ALPHA,
        }),
    ];
    let trees: Vec<_> = configs
        .iter()
        .map(|c| {
            let mut r = rng(12);
            CliqueTreeSampler::new(c.clone())
                .sample(&g, &mut r)
                .unwrap()
        })
        .collect();
    assert_eq!(trees[0].tree, trees[1].tree);
    assert_eq!(trees[0].tree, trees[2].tree);
    // But the charged rounds differ (unit < oracle < semiring at n=27).
    assert!(trees[0].total_rounds() < trees[2].total_rounds());
    assert!(trees[2].total_rounds() < trees[1].total_rounds());
}
