# The Petersen graph as a `file:` edge-list fixture — identical (edge
# set, unit weights) to `generators::petersen()`, so the pinned seed-42
# tree must come out of `cct thm1 --graph file:tests/data/petersen.el`.
0 1
0 5
5 7
1 2
1 6
6 8
2 3
2 7
7 9
3 4
3 8
8 5
4 0
4 9
9 6
