//! CLI smoke tests: every algorithm listed in `main.rs` must produce a valid
//! spanning tree of the Petersen graph and exit 0 — and the seed-42
//! default runs must print exactly the pinned trees of
//! `tests/common/fixtures.rs` (shared with `pinned_trees.rs`).

#[path = "common/fixtures.rs"]
mod fixtures;

use cct::graph::{generators, Graph, SpanningTree};
use std::process::Command;

/// All algorithms advertised by `cct --help`.
const ALGORITHMS: [&str; 7] = [
    "thm1",
    "exact",
    "doubling",
    "direction4",
    "aldous-broder",
    "wilson",
    "mst-strawman",
];

fn run_cct(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cct"))
        .args(args)
        .output()
        .expect("failed to spawn cct binary")
}

fn run_cct_env(args: &[&str], env: &[(&str, &str)]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cct"))
        .args(args)
        .envs(env.iter().copied())
        .output()
        .expect("failed to spawn cct binary")
}

/// Parses `tree: 0-1 2-3 …` and checks it is a spanning tree of `g` by
/// round-tripping it through the library's own validating constructor.
fn assert_valid_spanning_tree(stdout: &str, g: &Graph) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("tree: "))
        .unwrap_or_else(|| panic!("no `tree:` line in output:\n{stdout}"));
    let edges: Vec<(usize, usize)> = line["tree: ".len()..]
        .split_whitespace()
        .map(|e| {
            let (u, v) = e
                .split_once('-')
                .unwrap_or_else(|| panic!("bad edge `{e}`"));
            (
                u.parse().expect("bad endpoint"),
                v.parse().expect("bad endpoint"),
            )
        })
        .collect();
    SpanningTree::new_in(g, edges)
        .unwrap_or_else(|e| panic!("CLI printed an invalid spanning tree ({e:?}): {line}"));
}

#[test]
fn every_algorithm_samples_a_valid_tree_on_petersen() {
    let g = generators::petersen();
    for alg in ALGORITHMS {
        let out = run_cct(&[alg, "--graph", "petersen", "--seed", "7"]);
        assert!(
            out.status.success(),
            "`cct {alg} --graph petersen --seed 7` failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_valid_spanning_tree(&String::from_utf8_lossy(&out.stdout), &g);
    }
}

#[test]
fn dot_output_is_graphviz() {
    let out = run_cct(&["wilson", "--graph", "petersen", "--seed", "7", "--dot"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("graph spanning_tree {"),
        "not graphviz: {stdout}"
    );
    assert_eq!(
        stdout.matches(" -- ").count(),
        9,
        "petersen tree has 9 edges"
    );
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn seed42_output_matches_the_shared_pinned_fixtures() {
    // The CLI's stdout is pinned to the same fixtures the library-level
    // pinned_trees suite asserts — the two can never drift apart. The
    // round total is printed on stderr and pinned too.
    for (spec, _, tree, rounds) in fixtures::standard_suite() {
        let out = run_cct(&["thm1", "--graph", spec, "--seed", "42"]);
        assert!(out.status.success(), "thm1 --graph {spec} --seed 42 failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            stdout.trim_end(),
            fixtures::tree_line(&tree),
            "CLI tree drifted from the pinned fixture on {spec}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("rounds: {rounds} over")),
            "CLI round total drifted on {spec}: {stderr}"
        );
    }
}

#[test]
fn samples_flag_draws_the_same_trees_as_sequential_trials() {
    // The PreparedSampler contract surfaced at the CLI: `--samples K`
    // must print exactly what `--trials K` prints, and adding
    // `--workers N` must change neither — the combination the smoke
    // matrix was missing.
    let trials = run_cct(&[
        "thm1", "--graph", "petersen", "--seed", "42", "--trials", "3",
    ]);
    assert!(trials.status.success());
    for extra in [&[][..], &["--workers", "2"][..], &["--workers", "4"][..]] {
        let mut args = vec![
            "thm1",
            "--graph",
            "petersen",
            "--seed",
            "42",
            "--samples",
            "3",
        ];
        args.extend_from_slice(extra);
        let samples = run_cct(&args);
        assert!(
            samples.status.success(),
            "{args:?} failed: {}",
            String::from_utf8_lossy(&samples.stderr)
        );
        assert_eq!(
            samples.stdout, trials.stdout,
            "--samples diverged from --trials with {extra:?}"
        );
    }
    // And the first sampled tree is the pinned seed-42 fixture.
    let first = fixtures::tree_line(&fixtures::standard_suite()[0].2);
    assert_eq!(
        String::from_utf8_lossy(&trials.stdout).lines().next(),
        Some(first.as_str())
    );
}

#[test]
fn seeded_runs_are_reproducible() {
    let a = run_cct(&["thm1", "--graph", "petersen", "--seed", "7"]);
    let b = run_cct(&["thm1", "--graph", "petersen", "--seed", "7"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must give the same tree");
}

#[test]
fn parallel_flag_gives_the_same_tree_as_sequential() {
    let seq = run_cct(&["thm1", "--graph", "petersen", "--seed", "7"]);
    assert!(seq.status.success());
    for workers in ["1", "2", "4"] {
        let par = run_cct(&[
            "thm1",
            "--graph",
            "petersen",
            "--seed",
            "7",
            "--workers",
            workers,
        ]);
        assert!(
            par.status.success(),
            "--workers {workers} failed: {}",
            String::from_utf8_lossy(&par.stderr)
        );
        assert_eq!(
            par.stdout, seq.stdout,
            "same seed must give the same tree at {workers} workers"
        );
    }
    let auto = run_cct(&["thm1", "--graph", "petersen", "--seed", "7", "--parallel"]);
    assert!(auto.status.success());
    assert_eq!(
        auto.stdout, seq.stdout,
        "--parallel must not change the tree"
    );
}

#[test]
fn workers_zero_is_rejected() {
    let out = run_cct(&["thm1", "--graph", "petersen", "--workers", "0"]);
    assert!(!out.status.success(), "--workers 0 must exit nonzero");
}

#[test]
fn parallel_flag_is_rejected_for_sequential_algorithms() {
    for alg in [
        "wilson",
        "aldous-broder",
        "doubling",
        "direction4",
        "mst-strawman",
    ] {
        let out = run_cct(&[alg, "--graph", "petersen", "--parallel"]);
        assert!(
            !out.status.success(),
            "`{alg} --parallel` must exit nonzero, not run silently sequential"
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("only apply"),
            "{alg}: expected a scope error message"
        );
    }
}

#[test]
fn help_exits_zero_and_lists_algorithms() {
    let out = run_cct(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for alg in ALGORITHMS {
        assert!(stdout.contains(alg), "--help must mention `{alg}`");
    }
}

#[test]
fn unknown_algorithm_fails() {
    let out = run_cct(&["not-an-algorithm"]);
    assert!(!out.status.success(), "unknown algorithm must exit nonzero");
}

#[test]
fn backend_flag_produces_identical_trees_across_backends() {
    // An odd cycle large enough that Auto/Sparse really run CSR levels:
    // all three backends must print byte-identical stdout.
    let reference = run_cct(&[
        "thm1",
        "--graph",
        "cycle:65",
        "--backend",
        "dense",
        "--seed",
        "7",
    ]);
    assert!(reference.status.success());
    for backend in ["sparse", "auto"] {
        let out = run_cct(&[
            "thm1",
            "--graph",
            "cycle:65",
            "--backend",
            backend,
            "--seed",
            "7",
        ]);
        assert!(out.status.success(), "--backend {backend} failed");
        assert_eq!(out.stdout, reference.stdout, "--backend {backend} diverged");
    }
    let out = run_cct(&["thm1", "--backend", "csr"]);
    assert!(!out.status.success(), "unknown backend must exit nonzero");
}

#[test]
fn sparse_backend_raises_the_cap_for_sparse_friendly_specs() {
    // Past the dense cap: rejected with the typed dense-only message…
    let out = run_cct(&["wilson", "--graph", "star:10000", "--seed", "1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--backend sparse"),
        "error must name the fix: {stderr}"
    );
    // …admitted under the sparse backend (a fast O(n)-edge algorithm).
    let g = generators::star(10_000);
    let out = run_cct(&[
        "wilson",
        "--graph",
        "star:10000",
        "--backend",
        "sparse",
        "--seed",
        "1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_valid_spanning_tree(&String::from_utf8_lossy(&out.stdout), &g);
    // Dense-only families stay capped even under the sparse backend.
    let out = run_cct(&["thm1", "--graph", "complete:10000", "--backend", "sparse"]);
    assert!(!out.status.success());
}

#[test]
fn file_spec_loads_the_edge_list_fixture_and_matches_the_pinned_tree() {
    // `file:` is a first-class graph source: the committed Petersen
    // edge-list fixture describes the same graph as `petersen`, so the
    // seed-42 run must print the exact pinned tree and round total —
    // loading from disk is invisible to the sampler.
    let (_, _, tree, rounds) = fixtures::standard_suite()
        .into_iter()
        .find(|(spec, _, _, _)| *spec == "petersen")
        .expect("petersen is in the pinned suite");
    let out = run_cct(&[
        "thm1",
        "--graph",
        "file:tests/data/petersen.el",
        "--seed",
        "42",
    ]);
    assert!(
        out.status.success(),
        "file: spec failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim_end(),
        fixtures::tree_line(&tree),
        "file:petersen.el drifted from the pinned petersen tree"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains(&format!("rounds: {rounds} over")),
        "file:petersen.el round total drifted"
    );
    // Malformed paths surface the loader's typed error, not a panic.
    let out = run_cct(&["thm1", "--graph", "file:tests/data/no_such_file.el"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("edge list"),
        "missing file must report the loader error"
    );
}

#[test]
fn cct_max_n_overrides_the_cap() {
    // A lowered cap rejects what the default admits…
    let out = run_cct_env(
        &["wilson", "--graph", "path:64", "--seed", "1"],
        &[("CCT_MAX_N", "32")],
    );
    assert!(!out.status.success(), "CCT_MAX_N=32 must reject path:64");
    // …and a raised cap admits what the default rejects (a star keeps
    // the walk fast: O(n log n) cover time).
    let g = generators::star(9_000);
    let out = run_cct_env(
        &["wilson", "--graph", "star:9000", "--seed", "1"],
        &[("CCT_MAX_N", "10000")],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_valid_spanning_tree(&String::from_utf8_lossy(&out.stdout), &g);
}
