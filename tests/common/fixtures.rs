//! The pinned seed-42 fixtures shared by the integration suites.
//!
//! One home for the expectations `pinned_trees.rs` (library-level
//! determinism) and `cli_smoke.rs` (the CLI prints exactly these trees)
//! both assert against, so the pinned trees can never drift apart
//! between the two suites. Captured from `main` before the PR-3 hot-path
//! refactor (CLI: `cct thm1 --graph <spec> --seed 42`, i.e. the default
//! Theorem-1 config with 4 local threads).
//!
//! If a change legitimately alters the sampled stream (a *semantic*
//! change, not an optimization), regenerate these fixtures and call the
//! change out loudly in the PR.

// Each test binary compiles this file independently and uses a subset.
#![allow(dead_code)]

use cct::core::{Backend, SamplerConfig};
use cct::graph::{generators, Graph};

/// The CLI's default thm1 configuration (`src/main.rs` sequential path).
pub fn cli_config() -> SamplerConfig {
    SamplerConfig::new().threads(4)
}

/// The backend axis of the fixture suites: every pinned tree and round
/// total must reproduce bit for bit under each matrix backend (the
/// cct-linalg bit-identity contract — representation is invisible in
/// results).
pub fn backends() -> [Backend; 3] {
    Backend::ALL
}

/// Rebuilds `g` through the *weighted* constructor with every weight
/// explicitly `1.0`. The result must be indistinguishable from the
/// unweighted original everywhere: `P = w/deg` collapses to the
/// unweighted transition matrix bit for bit, so every pinned tree and
/// round total must reproduce exactly (the weight-1 degenerate axis of
/// the weighted-graph contract).
pub fn weight_one(g: &Graph) -> Graph {
    let edges: Vec<(usize, usize, f64)> = g.edges().iter().map(|&(u, v, _)| (u, v, 1.0)).collect();
    Graph::from_weighted_edges(g.n(), &edges).expect("same topology")
}

/// Parses `0-1 2-3 …` into an edge list.
pub fn edges(spec: &str) -> Vec<(usize, usize)> {
    spec.split_whitespace()
        .map(|e| {
            let (u, v) = e.split_once('-').expect("u-v");
            (u.parse().unwrap(), v.parse().unwrap())
        })
        .collect()
}

/// Renders an edge list the way the CLI prints it (`tree: 0-1 2-3 …`).
pub fn tree_line(edges: &[(usize, usize)]) -> String {
    let rendered: Vec<String> = edges.iter().map(|(u, v)| format!("{u}-{v}")).collect();
    format!("tree: {}", rendered.join(" "))
}

/// `(spec, graph, pinned tree at seed 42, pinned total rounds)`.
pub type Fixture = (&'static str, Graph, Vec<(usize, usize)>, u64);

/// The standard suite: every graph's pinned `thm1 --seed 42` tree and
/// round total.
pub fn standard_suite() -> Vec<Fixture> {
    vec![
        (
            "petersen",
            generators::petersen(),
            edges("0-1 0-5 1-2 2-3 3-4 5-7 5-8 6-8 7-9"),
            1625,
        ),
        (
            "complete:9",
            generators::complete(9),
            edges("0-2 1-2 1-7 3-7 3-8 4-8 5-6 6-7"),
            1146,
        ),
        (
            "grid:3x3",
            generators::grid(3, 3),
            edges("0-1 0-3 1-2 2-5 3-6 4-5 4-7 7-8"),
            1159,
        ),
        (
            "lollipop:5:4",
            generators::lollipop(5, 4),
            edges("0-2 0-4 1-2 2-3 4-5 5-6 6-7 7-8"),
            1190,
        ),
        (
            "cycle:8",
            generators::cycle(8),
            edges("0-1 0-7 1-2 2-3 3-4 4-5 5-6"),
            1912,
        ),
        (
            "kdense:9",
            generators::k_dense_irregular(9),
            edges("0-6 0-7 0-8 1-7 2-6 3-7 4-7 5-7"),
            1188,
        ),
        (
            "wheel:9",
            generators::wheel(9),
            edges("0-1 0-8 2-3 3-4 4-5 5-6 6-7 7-8"),
            1134,
        ),
    ]
}

/// The opt-in f32 precision mode at the same seed (CLI: `cct thm1
/// --graph <spec> --seed 42 --precision f32`). Pinned independently of
/// [`standard_suite`]: f32 draws are their own deterministic stream.
/// On these small graphs the binary32 quantization happens to leave
/// every draw decision unchanged, so the *trees* coincide with the f64
/// pins — but the round totals differ (a 32-bit payload spans several
/// `O(log n)`-bit machine words, so matmul rounds inflate), and the
/// trees may legitimately diverge on other graphs or seeds. Never
/// "simplify" this suite to reuse the f64 expectations.
pub fn f32_suite() -> Vec<Fixture> {
    vec![
        (
            "petersen",
            generators::petersen(),
            edges("0-1 0-5 1-2 2-3 3-4 5-7 5-8 6-8 7-9"),
            6469,
        ),
        (
            "complete:9",
            generators::complete(9),
            edges("0-2 1-2 1-7 3-7 3-8 4-8 5-6 6-7"),
            4716,
        ),
        (
            "grid:3x3",
            generators::grid(3, 3),
            edges("0-1 0-3 1-2 2-5 3-6 4-5 4-7 7-8"),
            4729,
        ),
    ]
}

/// The Appendix exact variant at the same seed (CLI:
/// `cct exact --seed 42`).
pub fn exact_suite() -> Vec<Fixture> {
    vec![
        (
            "petersen",
            generators::petersen(),
            edges("0-5 1-2 1-6 2-7 3-4 3-8 4-9 5-7 6-8"),
            2684,
        ),
        (
            "complete:9",
            generators::complete(9),
            edges("0-1 0-4 0-5 1-8 2-4 3-8 6-7 6-8"),
            2244,
        ),
        (
            "grid:3x3",
            generators::grid(3, 3),
            edges("0-1 0-3 1-2 1-4 2-5 5-8 6-7 7-8"),
            2244,
        ),
    ]
}
