//! End-to-end smoke of the `cct serve` / `cct request` subcommands:
//! start a real service process on a Unix socket, issue requests from
//! separate client processes, and check the protocol's replay and
//! cold-replay guarantees at the process boundary.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Kills the server on drop so a failing assertion can't leak the
/// child process.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cct-serve-cli-{tag}-{}.sock", std::process::id()))
}

fn spawn_server_with(socket: &Path, extra: &[&str]) -> ServerGuard {
    let mut args = vec![
        "serve".to_string(),
        "--listen".to_string(),
        format!("unix:{}", socket.display()),
        "--workers".to_string(),
        "2".to_string(),
        "--cache".to_string(),
        "4".to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_cct"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cct serve");
    // The server prints 'serving on …' after binding; the socket file
    // appearing is the cross-process readiness signal.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "server never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    ServerGuard(child)
}

fn spawn_server(socket: &Path, accept_limit: u32) -> ServerGuard {
    spawn_server_with(socket, &["--accept-limit", &accept_limit.to_string()])
}

fn request(socket: &Path, args: &[&str]) -> Output {
    let mut full = vec![
        "request".to_string(),
        "--connect".to_string(),
        format!("unix:{}", socket.display()),
    ];
    full.extend(args.iter().map(|s| s.to_string()));
    Command::new(env!("CARGO_BIN_EXE_cct"))
        .args(&full)
        .output()
        .expect("spawn cct request")
}

#[test]
fn served_requests_replay_bit_identically() {
    let socket = socket_path("replay");
    let mut server = spawn_server(&socket, 3);
    let args = ["--graph", "petersen", "--seed", "7", "--count", "2"];
    let a = request(&socket, &args);
    let b = request(&socket, &args);
    let c = request(&socket, &["--graph", "complete:9", "--seed", "9"]);
    for (label, out) in [("a", &a), ("b", &b), ("c", &c)] {
        assert!(
            out.status.success(),
            "request {label} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // stdout (the trees) is the determinism contract: byte-identical
    // replays. stderr carries cache metadata and legitimately differs
    // (the second request is a cache hit).
    assert_eq!(a.stdout, b.stdout, "replay diverged");
    assert_eq!(
        String::from_utf8_lossy(&a.stdout).lines().count(),
        2,
        "two draws, two tree lines"
    );
    assert!(String::from_utf8_lossy(&a.stderr).contains("hit = false"));
    assert!(String::from_utf8_lossy(&b.stderr).contains("hit = true"));
    assert_ne!(a.stdout, c.stdout, "different graphs, different trees");
    // --accept-limit 3 reached: the server exits on its own.
    let status = server.0.wait().expect("server exit");
    assert!(status.success(), "server exited non-zero");
    assert!(!socket.exists(), "socket file cleaned up");
}

#[test]
fn served_draw_equals_the_cli_at_the_derived_seed() {
    // The documented cold-replay recipe, executed across real process
    // boundaries: draw 0 of master seed 7 must equal
    // `cct thm1 --graph petersen --seed machine_seed(7, 0)`.
    let socket = socket_path("derived");
    let _server = spawn_server(&socket, 1);
    let served = request(&socket, &["--graph", "petersen", "--seed", "7"]);
    assert!(served.status.success());
    let derived = cct::serve::machine_seed(7, 0);
    let cold = Command::new(env!("CARGO_BIN_EXE_cct"))
        .args([
            "thm1",
            "--graph",
            "petersen",
            "--seed",
            &derived.to_string(),
        ])
        .output()
        .expect("spawn cct thm1");
    assert!(cold.status.success());
    assert_eq!(
        served.stdout, cold.stdout,
        "served draw and cold CLI run disagree at the derived seed"
    );
}

#[test]
fn stats_and_shutdown_control_the_server() {
    // No accept limit: the server runs until asked to drain, so the
    // shutdown frame — not connection exhaustion — is what stops it.
    let socket = socket_path("control");
    let mut server = spawn_server_with(&socket, &[]);
    let ok = request(&socket, &["--graph", "petersen"]);
    assert!(ok.status.success());
    let stats = request(&socket, &["--stats"]);
    assert!(
        stats.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("\"thm1\""), "stats frame: {text}");
    assert!(text.contains("\"latency_us\""), "stats frame: {text}");
    let down = request(&socket, &["--shutdown"]);
    assert!(
        down.status.success(),
        "shutdown failed: {}",
        String::from_utf8_lossy(&down.stderr)
    );
    let status = server.0.wait().expect("server exit");
    assert!(status.success(), "server exited non-zero after drain");
    assert!(!socket.exists(), "socket file cleaned up after drain");
}

#[test]
fn bad_requests_exit_nonzero_with_the_server_message() {
    let socket = socket_path("errors");
    let _server = spawn_server(&socket, 2);
    let bad_spec = request(&socket, &["--graph", "no-such-family:4"]);
    assert!(!bad_spec.status.success());
    assert!(
        String::from_utf8_lossy(&bad_spec.stderr).contains("bad graph spec"),
        "stderr: {}",
        String::from_utf8_lossy(&bad_spec.stderr)
    );
    // The service survives the bad request and keeps serving.
    let ok = request(&socket, &["--graph", "petersen"]);
    assert!(ok.status.success());
}
