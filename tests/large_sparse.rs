//! Large-n sparse smoke: the out-of-core route at sizes where any
//! surviving Θ(n²) allocation would be unmissable (10⁵ vertices dense =
//! 80 GB — the process would die long before an assertion fired). The
//! "RSS" assertions are exact byte accounting via
//! `PreparedSampler::matrix_bytes`, not OS-level sampling, so they are
//! deterministic on every machine.

use cct::core::{Backend, CliqueTreeSampler, SamplerConfig};
use cct::graph::{generators, SpanningTree};
use rand::SeedableRng;
use std::io::Write;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn path_1e5_sparse_backend_stays_csr_resident() {
    // A 10⁵-vertex path under --backend sparse: the default walk length
    // pushes the doubling table far past `max_table_bytes`, so prepare
    // must hold CSR-only state — n² bytes (10 GB dense-equivalent ÷ 8)
    // is the failure line, ~3 MB of CSR the expectation.
    let n = 100_000;
    let g = generators::path(n);
    let sampler = CliqueTreeSampler::new(SamplerConfig::new().backend(Backend::Sparse));
    let prepared = sampler.prepare(&g).expect("connected input");
    let resident = prepared.matrix_bytes();
    assert!(
        resident < n * n / 8,
        "prepared state {resident} bytes is Θ(n²)-class"
    );
    assert!(
        resident < 8 << 20,
        "prepared CSR for a 10⁵-path should be a few MB, got {resident}"
    );
    let report = prepared.sample(&mut rng(7)).expect("prepared sample");
    // m = n − 1: the out-of-core route recognizes the unique tree.
    assert_eq!(report.tree.edges().len(), n - 1);
    assert!(!report.monte_carlo_failure);
    assert!(
        prepared.matrix_bytes() < n * n / 8,
        "sampling must not materialize a dense table out of core"
    );
}

#[test]
fn regular_1e5_streamed_route_is_csr_resident_and_valid() {
    // m = 3n/2: no unique-tree shortcut — this exercises the streamed
    // phase walks end to end at 10⁵ vertices. A bounded-degree expander
    // keeps each step O(1) and the cover time O(n log n), so Las Vegas
    // covers every phase and the tree is a genuine Aldous–Broder
    // sample, not a fallback.
    let n = 100_000;
    let g = generators::random_regular(n, 3, &mut rng(5));
    let sampler = CliqueTreeSampler::new(SamplerConfig::new().backend(Backend::Sparse));
    let prepared = sampler.prepare(&g).expect("connected input");
    let report = prepared.sample(&mut rng(11)).expect("prepared sample");
    assert!(!report.monte_carlo_failure);
    SpanningTree::new_in(&g, report.tree.edges().to_vec()).expect("valid spanning tree");
    assert!(
        prepared.matrix_bytes() < n * n / 8,
        "streamed route leaked a Θ(n²) allocation"
    );
}

#[test]
fn cycle_past_the_table_cap_takes_the_streamed_route_on_every_backend() {
    // n = 4096 with ℓ₀ = 2¹⁵ crosses the default 2 GiB dense-equivalent
    // table cap — small enough that a full Las Vegas cover (Θ(n²) walk
    // steps on a cycle) stays fast, big enough that the escape is real.
    // The decision is backend-independent: dense must produce the same
    // tree from the same CSR state.
    let n = 4096;
    let g = generators::cycle(n);
    let mut trees = Vec::new();
    for backend in [Backend::Sparse, Backend::Dense] {
        let config = SamplerConfig::new()
            .backend(backend)
            .walk_length(cct::core::WalkLength::Fixed(1 << 15))
            .rho(256)
            .variant(cct::core::Variant::LasVegas);
        let prepared = CliqueTreeSampler::new(config)
            .prepare(&g)
            .expect("connected input");
        assert!(
            prepared.matrix_bytes() < n * n / 8,
            "{backend:?}: escape did not force CSR"
        );
        let report = prepared.sample(&mut rng(13)).expect("prepared sample");
        assert!(!report.monte_carlo_failure);
        SpanningTree::new_in(&g, report.tree.edges().to_vec()).expect("valid spanning tree");
        trees.push(report.tree);
    }
    assert_eq!(trees[0], trees[1], "escape route diverged across backends");
}

/// Writes the deterministic million-vertex path edge list the ISSUE's
/// acceptance command reads (`--graph file:tests/data/path_1e6.el`).
/// Generated, not committed: 13 MB of `i i+1` lines compresses to
/// nothing but would bloat every clone; the file is gitignored and this
/// test (and CI) recreate it on demand.
fn ensure_path_1e6(path: &str, n: usize) {
    if let Ok(meta) = std::fs::metadata(path) {
        if meta.len() > 0 {
            return;
        }
    }
    std::fs::create_dir_all("tests/data").expect("tests/data exists");
    let f = std::fs::File::create(path).expect("create path_1e6.el");
    let mut w = std::io::BufWriter::new(f);
    writeln!(w, "# path on {n} vertices: edges i — i+1").unwrap();
    for i in 0..n - 1 {
        writeln!(w, "{i} {}", i + 1).unwrap();
    }
    w.flush().unwrap();
}

#[test]
fn path_1e6_edge_list_loads_and_samples_its_spanning_tree() {
    // The headline acceptance: a million-vertex path through the whole
    // pipeline — streaming loader → spec layer (sparse limits, file
    // uncapped) → out-of-core sampler — with exact-byte residency.
    let n = 1_000_000;
    let file = "tests/data/path_1e6.el";
    ensure_path_1e6(file, n);
    let limits = cct::graph::spec::SpecLimits::from_env().with_sparse_backend(true);
    let g = cct::graph::spec::parse_spec_with_limits(&format!("file:{file}"), &mut rng(1), &limits)
        .expect("file: spec admits a 10⁶-vertex load under the sparse backend");
    assert_eq!((g.n(), g.m()), (n, n - 1));
    let sampler = CliqueTreeSampler::new(SamplerConfig::new().backend(Backend::Sparse));
    let prepared = sampler.prepare(&g).expect("connected input");
    let report = prepared.sample(&mut rng(42)).expect("prepared sample");
    assert!(!report.monte_carlo_failure);
    // The path *is* its unique spanning tree: check the exact edge set.
    let mut edges = report.tree.edges().to_vec();
    edges.sort_unstable();
    assert!(
        edges
            .iter()
            .enumerate()
            .all(|(i, &(u, v))| (u, v) == (i, i + 1)),
        "tree is not the path's edge set"
    );
    assert!(
        prepared.matrix_bytes() < 64 << 20,
        "10⁶-vertex CSR state should be tens of MB, got {}",
        prepared.matrix_bytes()
    );
}
