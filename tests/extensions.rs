//! Integration tests for the beyond-the-paper extensions: Direction 4,
//! the MST strawman negative control, the PageRank estimator, Kirchhoff
//! marginals, and the extra generators — all through the public facade.

use cct::core::direction4_sample;
use cct::core::{CliqueTreeSampler, EngineChoice, SamplerConfig, WalkLength};
use cct::doubling::{estimate_visit_distribution, exact_visit_distribution};
use cct::graph::{
    effective_resistance, generators, spanning_tree_distribution, spanning_tree_edge_marginals,
};
use cct::walks::{random_mst_distribution, random_weight_mst, stats};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn direction4_handles_every_generator() {
    let mut r = rng(1);
    for g in [
        generators::hypercube(4),
        generators::torus(3, 4),
        generators::binary_tree(3),
        generators::k_dense_irregular(14),
        generators::wheel(11),
    ] {
        let report = direction4_sample(&g, 1.5, &mut r).unwrap();
        assert_eq!(report.tree.n(), g.n());
        for &(u, v) in report.tree.edges() {
            assert!(g.has_edge(u, v));
        }
    }
}

#[test]
fn main_sampler_on_new_generators() {
    let config = SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost);
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(2);
    for g in [
        generators::hypercube(3),
        generators::torus(3, 3),
        generators::binary_tree(3),
    ] {
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure, "n = {}", g.n());
        assert_eq!(report.tree.edges().len(), g.n() - 1);
    }
}

#[test]
fn strawman_negative_control_via_facade() {
    // The gate passes real samplers and rejects the strawman on the same
    // graph with the same trial count — the methodology's litmus test.
    let g = cct::graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    let uniform = spanning_tree_distribution(&g);
    let trials = 40_000;

    let mut r = rng(3);
    let counts =
        stats::empirical_counts((0..trials).map(|_| random_weight_mst(&g, &mut r).unwrap()));
    let (stat_straw, crit) = stats::goodness_of_fit(&counts, &uniform, trials);
    assert!(
        stat_straw > crit,
        "strawman not rejected: {stat_straw:.1} ≤ {crit:.1}"
    );

    let mut r = rng(4);
    let counts =
        stats::empirical_counts((0..trials).map(|_| cct::walks::wilson(&g, 0, &mut r).unwrap()));
    let (stat_real, crit) = stats::goodness_of_fit(&counts, &uniform, trials);
    assert!(
        stat_real < crit,
        "wilson rejected: {stat_real:.1} ≥ {crit:.1}"
    );

    // And the strawman matches its own exact law.
    let mst_law = random_mst_distribution(&g);
    let mut r = rng(5);
    let counts =
        stats::empirical_counts((0..trials).map(|_| random_weight_mst(&g, &mut r).unwrap()));
    let (stat, crit) = stats::goodness_of_fit(&counts, &mst_law, trials);
    assert!(stat < crit);
}

#[test]
fn pagerank_estimator_matches_power_iteration() {
    let mut r = rng(6);
    let g = generators::hypercube(3);
    let tau = 8;
    let exact = exact_visit_distribution(&g, tau);
    let est = estimate_visit_distribution(&g, tau, 1200, &mut r);
    for (v, (a, b)) in est.distribution.iter().zip(&exact).enumerate() {
        assert!((a - b).abs() < 0.02, "vertex {v}: {a} vs {b}");
    }
}

#[test]
fn resistance_identities_via_facade() {
    // Hypercube Q3: R between antipodal vertices is 5/6 (classical).
    let q3 = generators::hypercube(3);
    assert!((effective_resistance(&q3, 0, 7) - 5.0 / 6.0).abs() < 1e-10);
    // Foster: Σ marginals = n − 1 on the torus.
    let t = generators::torus(3, 4);
    let total: f64 = spanning_tree_edge_marginals(&t)
        .iter()
        .map(|&(_, _, p)| p)
        .sum();
    assert!((total - 11.0).abs() < 1e-8);
    // The 3×4 torus is vertex- but not edge-transitive: the 12
    // "short-direction" edges share one marginal, the 12 long-direction
    // edges another, and the two classes differ.
    let marginals = spanning_tree_edge_marginals(&t);
    let (mut horiz, mut vert) = (Vec::new(), Vec::new());
    for &(u, v, p) in &marginals {
        if u / 4 == v / 4 {
            horiz.push(p); // same row
        } else {
            vert.push(p);
        }
    }
    assert_eq!(horiz.len(), 12);
    assert_eq!(vert.len(), 12);
    for &p in &horiz {
        assert!((p - horiz[0]).abs() < 1e-9);
    }
    for &p in &vert {
        assert!((p - vert[0]).abs() < 1e-9);
    }
    assert!(
        (horiz[0] - vert[0]).abs() > 1e-6,
        "edge classes should differ"
    );
}

#[test]
fn weighted_paper_walk_length_scales_with_w() {
    // Footnote 1: the ℓ budget must grow with the weight bound W.
    let mut r = rng(7);
    let base = generators::complete(6);
    let heavy = generators::with_random_integer_weights(&base, 32, &mut r).unwrap();
    let sampler = CliqueTreeSampler::new(SamplerConfig::new().engine(EngineChoice::UnitCost));
    let plain = sampler.sample(&base, &mut r).unwrap();
    let weighted = sampler.sample(&heavy, &mut r).unwrap();
    assert!(!plain.monte_carlo_failure && !weighted.monte_carlo_failure);
    let ell_plain = plain.phases[0].ell;
    let ell_weighted = weighted.phases[0].ell;
    assert!(
        ell_weighted > ell_plain,
        "weighted ℓ {ell_weighted} should exceed unweighted {ell_plain}"
    );
}
