//! Weighted-Kirchhoff statistical layer: chi-square of the Theorem 1 and
//! Appendix exact-variant samplers over *weighted* K4, C4, and diamond
//! graphs, against the weight-proportional spanning-tree distribution
//! (each tree drawn with probability ∝ ∏ edge weights, footnote 1 of the
//! paper). The same oracle is then applied to the *served* path by
//! drawing through `cct-serve` on a `-w` weighted spec, so the weighted
//! contract is pinned both cold and behind the service.
//!
//! Gates mirror `crates/core/tests/parallel_uniformity.rs`: 8 000 trials
//! per graph, a generous `2 × crit` chi-square threshold, and a < 1%
//! Monte Carlo failure budget.

use cct::core::{CliqueTreeSampler, EngineChoice, SamplerConfig, WalkLength, Workers};
use cct::graph::{spanning_tree_count_exact, spanning_tree_distribution, Graph, SpanningTree};
use cct::serve::{serve, spec_seed, SampleRequest, ServeOptions};
use cct::walks::stats;
use rand::SeedableRng;
use std::collections::HashMap;

const TRIALS: usize = 8_000;

/// Cross-checks the enumerated weighted distribution against the
/// weighted Matrix–Tree determinant, then returns it as the oracle.
fn weighted_oracle(g: &Graph, label: &str) -> Vec<(SpanningTree, f64)> {
    let exact = spanning_tree_distribution(g);
    let kirchhoff = spanning_tree_count_exact(g).expect("tiny integer-weighted graph") as f64;
    let total: f64 = exact.iter().map(|(t, _)| t.weight_in(g)).sum();
    assert!(
        (total - kirchhoff).abs() < 1e-6 * kirchhoff,
        "{label}: enumerated tree-weight mass {total} disagrees with the \
         weighted Matrix–Tree determinant {kirchhoff}"
    );
    exact
}

fn chi_square_gate(
    counts: &HashMap<SpanningTree, usize>,
    exact: &[(SpanningTree, f64)],
    failures: usize,
    trials: usize,
    label: &str,
) {
    assert!(
        failures * 100 < trials,
        "{label}: {failures}/{trials} Monte Carlo failures"
    );
    let effective = trials - failures;
    let (stat, crit) = stats::goodness_of_fit(counts, exact, effective);
    assert!(
        stat < 2.0 * crit,
        "{label}: chi² = {stat:.1} ≥ 2 × {crit:.1} over {} trees",
        exact.len()
    );
}

fn assert_weighted_uniform(g: &Graph, config: SamplerConfig, seed: u64, label: &str) {
    let exact = weighted_oracle(g, label);
    let sampler = CliqueTreeSampler::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts: HashMap<SpanningTree, usize> = HashMap::new();
    let mut failures = 0usize;
    for _ in 0..TRIALS {
        let report = sampler.sample(g, &mut rng).expect("sampling failed");
        if report.monte_carlo_failure {
            failures += 1;
            continue;
        }
        *counts.entry(report.tree).or_insert(0) += 1;
    }
    chi_square_gate(&counts, &exact, failures, TRIALS, label);
}

fn thm1_config(engine: EngineChoice) -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(engine)
        .workers(Workers::Fixed(4))
}

fn exact_config(engine: EngineChoice) -> SamplerConfig {
    SamplerConfig::exact_variant()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(engine)
        .workers(Workers::Fixed(4))
}

/// K4 with all six weights distinct (1..=6): the most asymmetric tiny
/// case — tree probabilities span a 120:6 range.
fn weighted_k4() -> Graph {
    Graph::from_weighted_edges(
        4,
        &[
            (0, 1, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 2, 4.0),
            (1, 3, 5.0),
            (2, 3, 6.0),
        ],
    )
    .unwrap()
}

/// C4 with weights 1..=4: each tree omits one edge, so the four tree
/// probabilities are ∝ 24/w_omitted — a clean closed form.
fn weighted_c4() -> Graph {
    Graph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)]).unwrap()
}

/// The diamond (K4 minus {1,3}) with a heavy chord: weight skew
/// concentrated on the edge shared by most trees.
fn weighted_diamond() -> Graph {
    Graph::from_weighted_edges(
        4,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 0, 3.0),
            (0, 2, 5.0),
        ],
    )
    .unwrap()
}

#[test]
fn thm1_is_weight_proportional_on_k4() {
    assert_weighted_uniform(
        &weighted_k4(),
        thm1_config(EngineChoice::UnitCost),
        3100,
        "K4-w/thm1",
    );
}

#[test]
fn thm1_is_weight_proportional_on_cycle4() {
    assert_weighted_uniform(
        &weighted_c4(),
        thm1_config(EngineChoice::UnitCost),
        3101,
        "C4-w/thm1",
    );
}

#[test]
fn thm1_is_weight_proportional_on_diamond_semiring() {
    // Run the diamond through the real semiring engine so the
    // MachineProgram-based multiply sits on the weighted path too.
    assert_weighted_uniform(
        &weighted_diamond(),
        thm1_config(EngineChoice::Semiring),
        3102,
        "diamond-w/thm1-semiring",
    );
}

#[test]
fn exact_variant_is_weight_proportional_on_k4() {
    assert_weighted_uniform(
        &weighted_k4(),
        exact_config(EngineChoice::UnitCost),
        3103,
        "K4-w/exact",
    );
}

#[test]
fn exact_variant_is_weight_proportional_on_diamond() {
    assert_weighted_uniform(
        &weighted_diamond(),
        exact_config(EngineChoice::UnitCost),
        3104,
        "diamond-w/exact",
    );
}

/// The served path on a weighted spec: draws batched through
/// `cct-serve` on `cycle-w:4` must follow the same weighted-Kirchhoff
/// distribution as the cold samplers above. The oracle graph is rebuilt
/// exactly as the service builds it — `parse_spec` seeded by
/// `spec_seed(spec)` (the deterministic weights are RNG-independent,
/// but this keeps the recipe honest).
#[test]
fn served_draws_are_weight_proportional_on_weighted_spec() {
    const SPEC: &str = "cycle-w:4";
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec_seed(SPEC));
    let g = cct::graph::spec::parse_spec(SPEC, &mut rng).unwrap();
    assert!(
        g.edges().iter().any(|&(_, _, w)| w != 1.0),
        "spec should carry non-unit weights"
    );
    let exact = weighted_oracle(&g, "served/cycle-w:4");

    let quick = SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost);
    let options = ServeOptions::new()
        .workers(2)
        .config(cct::serve::Algorithm::Thm1, quick);
    let (counts, failures, trials) = serve(options, |handle| {
        let mut counts: HashMap<SpanningTree, usize> = HashMap::new();
        let mut failures = 0usize;
        let mut trials = 0usize;
        for (batch, seed) in [(4_000u32, 5), (4_000u32, 6)] {
            let response = handle
                .request(SampleRequest::new(SPEC).seed(seed).count(batch))
                .unwrap();
            assert_eq!(response.draws.len(), batch as usize);
            for draw in response.draws {
                trials += 1;
                if draw.monte_carlo_failure {
                    failures += 1;
                    continue;
                }
                let tree = SpanningTree::new_in(&g, draw.edges).expect("served tree fits spec");
                *counts.entry(tree).or_insert(0) += 1;
            }
        }
        (counts, failures, trials)
    });
    chi_square_gate(&counts, &exact, failures, trials, "served/cycle-w:4");
}
