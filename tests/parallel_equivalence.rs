//! Bit-identical equivalence of the sequential and parallel round
//! engines *and* of the matrix backends: for a fixed seed, every
//! algorithm in the repertoire must produce the same spanning tree and
//! identical `RoundLedger` totals whether machines run on 1, 2, 4, or 8
//! worker threads (the cct-sim determinism contract) and whether the
//! transition matrices live in Dense, Sparse, or Auto storage (the
//! cct-linalg bit-identity contract). Property-tested over random graph
//! specs.

use cct::core::{
    direction4_sample, Backend, CliqueTreeSampler, EngineChoice, SamplerConfig, Variant,
    WalkLength, Workers,
};
use cct::graph::{generators, Graph};
use cct::prelude::{aldous_broder, sample_tree_via_doubling, wilson, Clique};
use cct::walks::random_weight_mst;
use proptest::prelude::*;
use rand::SeedableRng;

/// The worker-thread sweep of the equivalence contract: 1/2/4/8 by
/// default; when `CCT_WORKERS` is set (the CI thread-count matrix), the
/// sweep narrows to {1, max(CCT_WORKERS, 2)} so every matrix leg checks
/// a real sequential-vs-parallel pairing (never 1-vs-1) without
/// repeating the full sweep.
fn worker_sweep() -> Vec<usize> {
    match std::env::var("CCT_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
    {
        Some(w) => vec![1, w.max(2)],
        None => vec![1, 2, 4, 8],
    }
}

/// The matrix-backend sweep: all three by default (local runs); when
/// `CCT_BACKEND` names one (the CI matrix), the sweep narrows —
/// `dense` runs the dense-only pre-backend sweep (the default CI legs,
/// at their pre-backend cost), while any other backend runs the
/// {Dense, that backend} pairing (Dense stays in as the reference leg).
fn backend_sweep() -> Vec<Backend> {
    match std::env::var("CCT_BACKEND")
        .ok()
        .and_then(|s| Backend::parse(&s))
    {
        None => vec![Backend::Dense, Backend::Sparse, Backend::Auto],
        Some(Backend::Dense) => vec![Backend::Dense],
        Some(b) => vec![Backend::Dense, b],
    }
}

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A random small connected graph drawn from a spec id + seed.
fn build_graph(kind: u8, n: usize, seed: u64) -> Graph {
    match kind % 5 {
        0 => generators::erdos_renyi_connected(n, 0.5, &mut rng(seed)),
        1 => generators::complete(n),
        2 => generators::cycle(n.max(3)),
        3 => generators::wheel(n.max(4)),
        _ => generators::complete_bipartite(2, (n - 2).max(1)),
    }
}

fn any_engine() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::UnitCost),
        Just(EngineChoice::Semiring),
        Just(EngineChoice::FastOracle {
            alpha: cct::sim::ALPHA
        }),
    ]
}

/// Runs the phase sampler at a given worker count and backend and
/// returns the (tree, full ledger) pair.
fn run_phase_sampler(
    g: &Graph,
    engine: EngineChoice,
    exact: bool,
    workers: usize,
    backend: Backend,
    seed: u64,
) -> (cct::graph::SpanningTree, cct::sim::RoundLedger) {
    let base = if exact {
        SamplerConfig::exact_variant()
    } else {
        SamplerConfig::new()
    };
    let config = base
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(engine)
        .variant(Variant::LasVegas) // no Monte Carlo breakouts: full coverage
        .workers(Workers::Fixed(workers))
        .backend(backend);
    let report = CliqueTreeSampler::new(config)
        .sample(g, &mut rng(seed))
        .expect("connected input");
    (report.tree, report.rounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 sampler and the Appendix exact variant: same seed ⇒
    /// same tree and byte-identical ledger at every worker count and
    /// under every matrix backend (the reference leg is Dense at one
    /// worker; every (backend, workers) combination must match it).
    #[test]
    fn phase_samplers_are_worker_and_backend_invariant(
        kind in 0u8..5,
        n in 4usize..=10,
        graph_seed in any::<u64>(),
        sample_seed in any::<u64>(),
        engine in any_engine(),
    ) {
        let g = build_graph(kind, n, graph_seed);
        for exact in [false, true] {
            let reference =
                run_phase_sampler(&g, engine, exact, 1, Backend::Dense, sample_seed);
            for backend in backend_sweep() {
                for workers in worker_sweep() {
                    let got =
                        run_phase_sampler(&g, engine, exact, workers, backend, sample_seed);
                    prop_assert_eq!(
                        &got.0, &reference.0,
                        "tree mismatch: exact={} workers={} backend={}",
                        exact, workers, backend
                    );
                    prop_assert_eq!(
                        &got.1, &reference.1,
                        "ledger mismatch: exact={} workers={} backend={}",
                        exact, workers, backend
                    );
                }
            }
        }
    }

    /// The same contract on the *weighted* axis: integer-weighted
    /// graphs (weights 1..=8, the `-w` spec range) through both
    /// variants must stay bit-identical across worker counts and
    /// matrix backends — the weighted transition matrices `P = w/deg`
    /// ride the identical sharding and storage paths.
    #[test]
    fn weighted_phase_samplers_are_worker_and_backend_invariant(
        kind in 0u8..5,
        n in 4usize..=10,
        graph_seed in any::<u64>(),
        weight_seed in any::<u64>(),
        sample_seed in any::<u64>(),
        engine in any_engine(),
    ) {
        let g = generators::with_random_integer_weights(
            &build_graph(kind, n, graph_seed), 8, &mut rng(weight_seed),
        ).unwrap();
        for exact in [false, true] {
            let reference =
                run_phase_sampler(&g, engine, exact, 1, Backend::Dense, sample_seed);
            for backend in backend_sweep() {
                for workers in worker_sweep() {
                    let got =
                        run_phase_sampler(&g, engine, exact, workers, backend, sample_seed);
                    prop_assert_eq!(
                        &got.0, &reference.0,
                        "weighted tree mismatch: exact={} workers={} backend={}",
                        exact, workers, backend
                    );
                    prop_assert_eq!(
                        &got.1, &reference.1,
                        "weighted ledger mismatch: exact={} workers={} backend={}",
                        exact, workers, backend
                    );
                }
            }
        }
    }

    /// The forced-sparse backend on larger, genuinely sparse inputs
    /// (where Auto also resolves sparse and CSR levels really appear):
    /// byte-identical trees and ledgers to the dense route, cold and
    /// prepared — through the full default pipeline, matching placement
    /// included.
    #[test]
    fn sparse_backend_matches_dense_on_sparse_graphs(
        n in 48usize..=80,
        sample_seed in any::<u64>(),
        use_cycle in any::<bool>(),
    ) {
        let g = if use_cycle {
            generators::cycle(n | 1) // odd: phase 1 takes the top-down route
        } else {
            generators::random_regular(n & !1, 3, &mut rng(n as u64))
        };
        let reference =
            run_phase_sampler(&g, EngineChoice::UnitCost, false, 1, Backend::Dense, sample_seed);
        for backend in [Backend::Sparse, Backend::Auto] {
            let got =
                run_phase_sampler(&g, EngineChoice::UnitCost, false, 1, backend, sample_seed);
            prop_assert_eq!(&got.0, &reference.0, "tree mismatch: backend={}", backend);
            prop_assert_eq!(&got.1, &reference.1, "ledger mismatch: backend={}", backend);
        }
        // Prepared path under the sparse backend reproduces the dense
        // cold path draw for draw.
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost)
            .variant(Variant::LasVegas)
            .backend(Backend::Sparse);
        let prepared = CliqueTreeSampler::new(config).prepare(&g).expect("connected");
        let mut r = rng(sample_seed);
        let draw = prepared.sample(&mut r).expect("prepared draw");
        prop_assert_eq!(&draw.tree, &reference.0);
        prop_assert_eq!(&draw.rounds, &reference.1);
    }

    /// The other five algorithms (doubling, direction4, and the three
    /// sequential baselines) take no worker knob — they never touch the
    /// parallel engine, so "sequential vs parallel" is the same code
    /// path and their contract reduces to seed-determinism: repeated
    /// runs must agree exactly on tree (and ledger, where one exists).
    #[test]
    fn remaining_algorithms_are_seed_deterministic(
        kind in 0u8..5,
        n in 4usize..=10,
        graph_seed in any::<u64>(),
        sample_seed in any::<u64>(),
    ) {
        let g = build_graph(kind, n, graph_seed);

        let doubling = || {
            let mut clique = Clique::new(g.n());
            let (tree, _) =
                sample_tree_via_doubling(&mut clique, &g, 2.0, 100_000, &mut rng(sample_seed));
            (tree, clique.ledger().clone())
        };
        let direction4 = || {
            let report = direction4_sample(&g, 1.0, &mut rng(sample_seed)).expect("connected");
            (report.tree, report.rounds)
        };
        let ab = || aldous_broder(&g, 0, &mut rng(sample_seed)).expect("connected");
        let wi = || wilson(&g, 0, &mut rng(sample_seed)).expect("connected");
        let mst = || random_weight_mst(&g, &mut rng(sample_seed)).expect("connected");

        prop_assert_eq!(doubling(), doubling(), "doubling not seed-deterministic");
        prop_assert_eq!(direction4(), direction4(), "direction4 not seed-deterministic");
        prop_assert_eq!(ab(), ab(), "aldous-broder not seed-deterministic");
        prop_assert_eq!(wi(), wi(), "wilson not seed-deterministic");
        prop_assert_eq!(mst(), mst(), "mst-strawman not seed-deterministic");
    }
}
