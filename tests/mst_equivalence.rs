//! The MST MachineProgram against the sequential ground truth:
//! `MstEngine` (distributed Borůvka over `cct-sim`) must return the
//! exact edge set of Kruskal's algorithm on every weighted graph — with
//! *distinct* weights (unique MST) and with heavily *tied* weights,
//! where both sides resolve ties by the same total order
//! `(w, min(u,v), max(u,v))`. Also pins the determinism contract: the
//! tree AND the round ledger are identical at every worker count.

use cct::core::{MstEngine, Workers};
use cct::graph::{generators, Graph};
use cct::walks::kruskal_mst;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A random small connected topology drawn from a spec id + seed
/// (mirrors `parallel_equivalence.rs`).
fn build_topology(kind: u8, n: usize, seed: u64) -> Graph {
    match kind % 5 {
        0 => generators::erdos_renyi_connected(n, 0.5, &mut rng(seed)),
        1 => generators::complete(n),
        2 => generators::cycle(n.max(3)),
        3 => generators::wheel(n.max(4)),
        _ => generators::complete_bipartite(2, (n - 2).max(1)),
    }
}

/// Reweights `g` with a shuffled permutation of `1..=m`: every weight
/// distinct, so the MST is unique and edge-set equality is forced.
fn with_distinct_weights(g: &Graph, seed: u64) -> Graph {
    let mut weights: Vec<f64> = (1..=g.m()).map(|w| w as f64).collect();
    weights.shuffle(&mut rng(seed));
    let edges: Vec<(usize, usize, f64)> = g
        .edges()
        .iter()
        .zip(weights)
        .map(|(&(u, v, _), w)| (u, v, w))
        .collect();
    Graph::from_weighted_edges(g.n(), &edges).unwrap()
}

/// Reweights `g` from the tiny pool {1, 2, 3}: ties everywhere, so the
/// test only passes if both sides break them identically.
fn with_tied_weights(g: &Graph, seed: u64) -> Graph {
    generators::with_random_integer_weights(g, 3, &mut rng(seed)).unwrap()
}

fn assert_mst_matches_kruskal(g: &Graph, label: &str) {
    let reference = kruskal_mst(g).expect("connected input");
    let report = MstEngine::new().run(g).expect("connected input");
    assert_eq!(
        report.tree.edges(),
        reference.edges(),
        "{label}: Borůvka and Kruskal disagree on the MST edge set"
    );
    let expected: f64 = reference.weight_sum_in(g);
    assert!(
        (report.total_weight - expected).abs() < 1e-9,
        "{label}: reported weight {} ≠ Kruskal weight {expected}",
        report.total_weight
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Distinct weights ⇒ a unique MST; the MachineProgram must find
    /// exactly it.
    #[test]
    fn boruvka_matches_kruskal_on_distinct_weights(
        kind in 0u8..5,
        n in 4usize..14,
        topo_seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
    ) {
        let g = with_distinct_weights(&build_topology(kind, n, topo_seed), weight_seed);
        assert_mst_matches_kruskal(&g, "distinct");
    }

    /// Weights from {1,2,3}: massive tie pressure. Both sides order
    /// edges by `(w, min, max)`, so the edge sets must still agree
    /// exactly.
    #[test]
    fn boruvka_matches_kruskal_on_tied_weights(
        kind in 0u8..5,
        n in 4usize..14,
        topo_seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
    ) {
        let g = with_tied_weights(&build_topology(kind, n, topo_seed), weight_seed);
        assert_mst_matches_kruskal(&g, "tied");
    }

    /// Determinism contract: the MST tree *and* its round ledger are
    /// byte-identical at every worker count (Borůvka uses no RNG, so
    /// even the seed is irrelevant).
    #[test]
    fn mst_is_worker_invariant(
        kind in 0u8..5,
        n in 4usize..14,
        topo_seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
    ) {
        let g = with_tied_weights(&build_topology(kind, n, topo_seed), weight_seed);
        let reference = MstEngine::new()
            .workers(Workers::Fixed(1))
            .run(&g)
            .expect("connected input");
        for workers in [2usize, 4, 8] {
            let report = MstEngine::new()
                .workers(Workers::Fixed(workers))
                .run(&g)
                .expect("connected input");
            prop_assert_eq!(&report.tree, &reference.tree, "workers = {}", workers);
            prop_assert_eq!(&report.rounds, &reference.rounds, "workers = {}", workers);
            prop_assert_eq!(report.phases, reference.phases, "workers = {}", workers);
        }
    }
}

/// Weighted `-w` spec families feed the same contract: the MST of
/// `er-w`/`grid-w` spec graphs matches Kruskal, and the weight-1
/// degenerate case (unweighted spec) reduces to a minimum-edge-count
/// tree whose weight equals `n − 1`.
#[test]
fn spec_family_msts_match_kruskal() {
    for spec in ["er-w:24:0.3", "grid-w:4x5", "wheel-w:9", "complete-w:8"] {
        let mut r = rng(cct::serve::spec_seed(spec));
        let g = cct::graph::spec::parse_spec(spec, &mut r).unwrap();
        assert_mst_matches_kruskal(&g, spec);
    }
}

#[test]
fn unit_weight_mst_weighs_n_minus_one() {
    let g = generators::petersen();
    let report = MstEngine::new().run(&g).expect("connected");
    assert_eq!(report.total_weight, (g.n() - 1) as f64);
}
