//! The load-balanced doubling algorithm (§3) and its unbalanced \[7\]
//! ablation.
//!
//! To build length-`τ` walks from every vertex, each vertex starts with
//! `k = 2^⌈log₂ τ⌉` length-1 walks; every iteration pairs prefix walks
//! with suffix walks (index `i` merges with index `k−i+1`, the
//! Bahmani–Chakrabarti–Xin index-based merging), halving the count and
//! doubling the length. The paper's contribution is the *load balancing*:
//! tuples are routed through an `8c log n`-wise independent hash so that
//! every machine receives `O(k log n)` tuples w.h.p. (Lemma 10), instead
//! of the `Ω(nk)` a hub vertex receives in the direct scheme.

use crate::TWiseHash;
use cct_graph::Graph;
use cct_sim::{Clique, CostCategory, Envelope};
use cct_walks::random_step;
use rand::Rng;

/// Routed walk segment: (origin machine, segment index, walk vertices).
type Segment = (usize, usize, Vec<usize>);
/// Merged walk addressed to its origin: (origin machine, walk vertices).
type MergedWalk = (usize, Vec<usize>);

/// Which merging-traffic routing to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balancing {
    /// §3: hash-based load balancing (Theorem 2 / Lemma 10).
    Balanced {
        /// The constant `c` in `t = 8c log n`.
        c: usize,
    },
    /// The direct scheme of \[7\]: prefixes travel to the endpoint's own
    /// machine. Correct, but hub vertices melt (experiment E6).
    Naive,
}

/// Per-iteration load measurements.
#[derive(Debug, Clone, Default)]
pub struct DoublingStats {
    /// Max tuples received by any machine, per iteration (Lemma 10's
    /// quantity).
    pub max_tuples_recv: Vec<u64>,
    /// Max words received by any machine, per iteration.
    pub max_words_recv: Vec<u64>,
    /// Walk-length parameter `k` at the start of each iteration.
    pub k_values: Vec<u64>,
}

/// Runs the doubling algorithm on the clique: every vertex ends up with
/// one random walk of length `k₀ = 2^⌈log₂ τ⌉ ≥ τ` starting at itself.
///
/// Each walk is marginally a correct random walk (walks of different
/// vertices are correlated — the price of index-based merging, as the
/// paper notes). Rounds are charged from the *measured* routed loads.
///
/// # Panics
///
/// Panics if `tau == 0`, the clique size differs from `g.n()`, or the
/// graph has an isolated vertex.
pub fn doubling_walks<R: Rng + ?Sized>(
    clique: &mut Clique,
    g: &Graph,
    tau: u64,
    balancing: Balancing,
    rng: &mut R,
) -> (Vec<Vec<usize>>, DoublingStats) {
    let n = g.n();
    assert_eq!(clique.n(), n, "clique size must match graph");
    assert!(tau >= 1, "tau must be positive");
    let k0 = tau.next_power_of_two() as usize;

    // Initialization: vertex v holds k₀ length-1 walks (random edges).
    let mut walks: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|v| (0..k0).map(|_| vec![v, random_step(g, v, rng)]).collect())
        .collect();

    let mut stats = DoublingStats::default();
    let mut k = k0;
    while k > 1 {
        stats.k_values.push(k as u64);
        // Step 1: machine 1 broadcasts the hash seed (O(log² n) bits).
        let hash = match balancing {
            Balancing::Balanced { c } => {
                let t = TWiseHash::paper_t(n, c);
                let seed = rng.gen::<u64>();
                // The O(log² n)-bit string s is broadcast word by word
                // (O(1) rounds via the two-step pattern); every machine
                // reconstructs the same hash function from it.
                let mut words = vec![0u64; t.div_ceil(4).max(1)];
                words[0] = seed;
                let broadcast = clique.broadcast(CostCategory::Doubling, 0, words, 1);
                Some(TWiseHash::from_seed(broadcast[0], t, n))
            }
            Balancing::Naive => None,
        };

        // Steps 2–3: route prefix and suffix tuples.
        // Tuple payload: (origin, index, walk). 0-based: prefix indices
        // 0..k/2 pair with suffix indices k−1−i.
        let words = walks[0][0].len() + 2;
        let mut outboxes: Vec<Vec<Envelope<Segment>>> = (0..n).map(|_| Vec::new()).collect();
        for (v, vw) in walks.iter_mut().enumerate() {
            // Drain this iteration's walks; they are re-filled below.
            let drained: Vec<Vec<usize>> = std::mem::take(vw);
            for (i, w) in drained.into_iter().enumerate() {
                let dest = if i < k / 2 {
                    let end = *w.last().expect("non-empty walk");
                    match &hash {
                        Some(h) => h.hash(end, k - 1 - i),
                        None => end,
                    }
                } else {
                    match &hash {
                        Some(h) => h.hash(v, i),
                        None => v,
                    }
                };
                outboxes[v].push(Envelope::new(dest, words, (v, i, w)));
            }
        }
        record_loads(&outboxes, n, &mut stats);
        let inboxes = clique.route(CostCategory::Doubling, outboxes);

        // Step 4: merge prefix i (ending at v) with suffix k−1−i of v.
        let mut outboxes: Vec<Vec<Envelope<MergedWalk>>> = (0..n).map(|_| Vec::new()).collect();
        for (machine, inbox) in inboxes.into_iter().enumerate() {
            let mut suffixes: std::collections::HashMap<(usize, usize), Vec<usize>> =
                std::collections::HashMap::new();
            let mut prefixes: Vec<(usize, usize, Vec<usize>)> = Vec::new();
            for env in inbox {
                let (origin, idx, walk) = env.payload;
                if idx < k / 2 {
                    prefixes.push((origin, idx, walk));
                } else {
                    suffixes.insert((origin, idx), walk);
                }
            }
            for (origin, idx, prefix) in prefixes {
                let end = *prefix.last().expect("non-empty walk");
                let suffix = suffixes
                    .get(&(end, k - 1 - idx))
                    .expect("consistent hashing delivers the matching suffix");
                let mut merged = prefix;
                merged.extend_from_slice(&suffix[1..]);
                let out_words = merged.len() + 1;
                outboxes[machine].push(Envelope::new(origin, out_words, (idx, merged)));
            }
        }
        let inboxes = clique.route(CostCategory::Doubling, outboxes);

        // Step 5: walks come home; the iteration halves the count.
        for vw in &mut walks {
            vw.resize(k / 2, Vec::new());
        }
        for (machine, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                let (idx, merged) = env.payload;
                walks[machine][idx] = merged;
            }
        }
        k /= 2;
    }

    let final_walks: Vec<Vec<usize>> = walks
        .into_iter()
        .map(|mut vw| vw.pop().expect("one walk per vertex remains"))
        .collect();
    (final_walks, stats)
}

fn record_loads<T>(outboxes: &[Vec<Envelope<T>>], n: usize, stats: &mut DoublingStats) {
    let mut tuples = vec![0u64; n];
    let mut words = vec![0u64; n];
    for outbox in outboxes {
        for env in outbox {
            tuples[env.to] += 1;
            words[env.to] += env.words as u64;
        }
    }
    stats
        .max_tuples_recv
        .push(tuples.iter().copied().max().unwrap_or(0));
    stats
        .max_words_recv
        .push(words.iter().copied().max().unwrap_or(0));
}

/// Lemma 10's high-probability bound on tuples received per machine:
/// `16·c·k·log₂ n`.
pub fn lemma10_bound(n: usize, k: u64, c: usize) -> u64 {
    let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
    16 * c as u64 * k * log_n
}

/// Corollary 1: samples a spanning tree by Aldous–Broder over a walk
/// assembled from doubling segments of length `≈ segment_factor·n·log₂ n`
/// each. Segments continue from the previous endpoint (one continuous
/// walk), so the tree is exactly weighted-uniform.
///
/// Returns the tree and the number of segments used.
///
/// # Panics
///
/// Panics if the graph is disconnected or `max_segments` is exhausted
/// (raise it for graphs with cover time ≫ `n log n`).
pub fn sample_tree_via_doubling<R: Rng + ?Sized>(
    clique: &mut Clique,
    g: &Graph,
    segment_factor: f64,
    max_segments: u32,
    rng: &mut R,
) -> (cct_graph::SpanningTree, u32) {
    let n = g.n();
    assert!(
        g.is_connected(),
        "cover time is infinite on disconnected graphs"
    );
    if n == 1 {
        return (
            cct_graph::SpanningTree::new(1, Vec::new()).expect("trivial"),
            0,
        );
    }
    let seg_len = ((segment_factor * n as f64 * (n as f64).log2()).ceil() as u64).max(2);
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut remaining = n - 1;
    let mut edges = Vec::with_capacity(n - 1);
    let mut cur = 0usize;
    let mut segments = 0u32;
    while remaining > 0 {
        assert!(
            segments < max_segments,
            "graph not covered within {max_segments} doubling segments"
        );
        // One doubling run; only the walk of the current endpoint is
        // consumed, so the cross-vertex correlations are irrelevant.
        let (walks, _) = doubling_walks(clique, g, seg_len, Balancing::Balanced { c: 1 }, rng);
        let walk = &walks[cur];
        for w in walk.windows(2) {
            if !visited[w[1]] {
                visited[w[1]] = true;
                remaining -= 1;
                edges.push((w[0], w[1]));
                if remaining == 0 {
                    break;
                }
            }
        }
        cur = *walk.last().expect("non-empty walk");
        segments += 1;
    }
    (
        cct_graph::SpanningTree::new(n, edges).expect("first-visit edges span"),
        segments,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use cct_walks::{is_valid_walk, stats as wstats};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn walks_are_valid_and_correct_length() {
        let g = generators::petersen();
        let mut clique = Clique::new(10);
        let mut r = rng(1);
        for balancing in [Balancing::Balanced { c: 1 }, Balancing::Naive] {
            let (walks, stats) = doubling_walks(&mut clique, &g, 13, balancing, &mut r);
            assert_eq!(walks.len(), 10);
            for (v, w) in walks.iter().enumerate() {
                assert_eq!(w[0], v, "walk must start at its vertex");
                assert_eq!(w.len(), 17, "16 steps = next_power_of_two(13) + 1 vertices");
                assert!(is_valid_walk(&g, w));
            }
            assert_eq!(stats.k_values.len(), 4); // log2(16) iterations
        }
    }

    #[test]
    fn tau_one_needs_no_merging() {
        let g = generators::complete(4);
        let mut clique = Clique::new(4);
        let mut r = rng(2);
        let (walks, stats) = doubling_walks(&mut clique, &g, 1, Balancing::Naive, &mut r);
        assert!(stats.k_values.is_empty());
        assert!(walks.iter().all(|w| w.len() == 2));
    }

    /// Exact distribution over complete `len`-step walks from `start`.
    fn exact_walks(g: &Graph, start: usize, len: usize) -> Vec<(Vec<usize>, f64)> {
        let p = g.transition_matrix();
        let mut out = Vec::new();
        fn rec(
            p: &cct_linalg::Matrix,
            walk: &mut Vec<usize>,
            pr: f64,
            left: usize,
            out: &mut Vec<(Vec<usize>, f64)>,
        ) {
            if left == 0 {
                out.push((walk.clone(), pr));
                return;
            }
            let u = *walk.last().unwrap();
            for v in 0..p.rows() {
                if p[(u, v)] > 0.0 {
                    walk.push(v);
                    rec(p, walk, pr * p[(u, v)], left - 1, out);
                    walk.pop();
                }
            }
        }
        rec(&p, &mut vec![start], 1.0, len, &mut out);
        out
    }

    #[test]
    fn merged_walk_is_marginally_exact() {
        // The walk held by vertex 0 after two doubling iterations must be
        // distributed exactly as a direct 4-step random walk. This is the
        // correctness core of index-based merging.
        let g = cct_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let exact = exact_walks(&g, 0, 4);
        for balancing in [Balancing::Balanced { c: 1 }, Balancing::Naive] {
            let mut r = rng(3);
            let trials = 30_000;
            let counts = wstats::empirical_counts((0..trials).map(|_| {
                let mut clique = Clique::new(4);
                doubling_walks(&mut clique, &g, 4, balancing, &mut r).0[0].clone()
            }));
            let (stat, crit) = wstats::goodness_of_fit(&counts, &exact, trials);
            assert!(stat < crit, "{balancing:?}: chi² = {stat:.1} ≥ {crit:.1}");
        }
    }

    #[test]
    fn lemma10_load_bound_holds_on_star() {
        // The star is the load-balancing worst case: every walk ends at
        // the hub half the time. Balanced loads must respect Lemma 10.
        let n = 64;
        let g = generators::star(n);
        let mut clique = Clique::new(n);
        let mut r = rng(4);
        let (_, stats) = doubling_walks(
            &mut clique,
            &g,
            n as u64,
            Balancing::Balanced { c: 1 },
            &mut r,
        );
        for (it, (&max_tuples, &k)) in stats
            .max_tuples_recv
            .iter()
            .zip(&stats.k_values)
            .enumerate()
        {
            let bound = lemma10_bound(n, k, 1);
            assert!(
                max_tuples <= bound,
                "iteration {it}: {max_tuples} tuples > bound {bound}"
            );
        }
    }

    #[test]
    fn naive_doubling_overloads_the_hub() {
        // E6's headline: on the star, the hub receives Θ(n·k) tuples in
        // the first naive iteration versus O(k log n) balanced.
        let n = 64;
        let g = generators::star(n);
        let mut r = rng(5);
        let mut c1 = Clique::new(n);
        let (_, naive) = doubling_walks(&mut c1, &g, n as u64, Balancing::Naive, &mut r);
        let mut c2 = Clique::new(n);
        let (_, balanced) =
            doubling_walks(&mut c2, &g, n as u64, Balancing::Balanced { c: 1 }, &mut r);
        assert!(
            naive.max_tuples_recv[0] >= 4 * balanced.max_tuples_recv[0],
            "naive {} vs balanced {}",
            naive.max_tuples_recv[0],
            balanced.max_tuples_recv[0]
        );
        // And the measured rounds reflect it.
        assert!(c1.ledger().total_rounds() > c2.ledger().total_rounds());
    }

    #[test]
    fn rounds_scale_with_tau_over_n() {
        // Theorem 2, long-walk regime: rounds grow roughly linearly in
        // τ/n once τ ≫ n.
        let n = 32;
        let g = generators::random_regular(n, 4, &mut rng(6));
        let mut rounds = Vec::new();
        for tau in [n as u64, 4 * n as u64, 16 * n as u64] {
            let mut clique = Clique::new(n);
            let mut r = rng(7);
            let _ = doubling_walks(&mut clique, &g, tau, Balancing::Balanced { c: 1 }, &mut r);
            rounds.push(clique.ledger().total_rounds());
        }
        assert!(rounds[1] > rounds[0]);
        assert!(
            rounds[2] > 2 * rounds[1],
            "16× τ must cost ≫ 2× the 4× τ rounds"
        );
    }

    #[test]
    fn corollary1_tree_is_valid_on_expander() {
        let n = 24;
        let g = generators::random_regular(n, 4, &mut rng(8));
        let mut clique = Clique::new(n);
        let mut r = rng(9);
        let (tree, segments) = sample_tree_via_doubling(&mut clique, &g, 2.0, 50, &mut r);
        assert_eq!(tree.n(), n);
        for &(u, v) in tree.edges() {
            assert!(g.has_edge(u, v));
        }
        assert!(segments >= 1);
    }

    #[test]
    fn corollary1_tree_is_uniform_on_k4() {
        let g = generators::complete(4);
        let exact = cct_graph::spanning_tree_distribution(&g);
        let mut r = rng(10);
        let trials = 10_000;
        let counts = wstats::empirical_counts((0..trials).map(|_| {
            let mut clique = Clique::new(4);
            sample_tree_via_doubling(&mut clique, &g, 2.0, 200, &mut r).0
        }));
        let (stat, crit) = wstats::goodness_of_fit(&counts, &exact, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn dense_irregular_graph_covers_quickly() {
        // K_{n−√n,√n} has O(n log n) cover time (§1.2): few segments.
        let g = generators::k_dense_irregular(25);
        let mut clique = Clique::new(25);
        let mut r = rng(11);
        let (tree, segments) = sample_tree_via_doubling(&mut clique, &g, 2.0, 60, &mut r);
        assert_eq!(tree.n(), 25);
        assert!(segments <= 20, "took {segments} segments");
    }
}
