//! `t`-wise independent hash families (§3, step 1).
//!
//! The load-balanced doubling algorithm routes walk tuples through an
//! `8c log n`-wise independent hash `h : [n] × [k] → [n]`, sampled from a
//! seed of `O(log² n)` bits that machine 1 broadcasts (Vadhan \[71\]: a
//! degree-`(t−1)` polynomial over a prime field gives a `t`-wise
//! independent family using `t·log p` seed bits).

use rand::{Rng, SeedableRng};

/// The Mersenne prime `2^61 − 1` used as the field size.
pub const FIELD: u128 = (1u128 << 61) - 1;

/// A `t`-wise independent polynomial hash over `GF(2^61 − 1)`,
/// mapping `(vertex, index)` pairs to machines `0..range`.
///
/// # Examples
///
/// ```
/// use cct_doubling::TWiseHash;
///
/// let h = TWiseHash::from_seed(42, 8, 16);
/// let a = h.hash(3, 7);
/// assert!(a < 16);
/// assert_eq!(a, TWiseHash::from_seed(42, 8, 16).hash(3, 7)); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct TWiseHash {
    coeffs: Vec<u64>,
    range: usize,
}

impl TWiseHash {
    /// Expands a broadcast seed into the `t` polynomial coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `range == 0`.
    pub fn from_seed(seed: u64, t: usize, range: usize) -> Self {
        assert!(t >= 1, "need at least 1-wise independence");
        assert!(range >= 1, "range must be positive");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coeffs = (0..t).map(|_| rng.gen::<u64>() % (FIELD as u64)).collect();
        TWiseHash { coeffs, range }
    }

    /// The independence parameter `t` (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the hash on a `(vertex, index)` key.
    pub fn hash(&self, vertex: usize, index: usize) -> usize {
        // Injectively pack the key into the field.
        let x = ((vertex as u128) << 40) ^ (index as u128);
        let x = x % FIELD;
        // Horner evaluation mod p.
        let mut acc: u128 = 0;
        for &c in self.coeffs.iter().rev() {
            acc = (acc * x + c as u128) % FIELD;
        }
        (acc % self.range as u128) as usize
    }

    /// The paper's independence setting: `t = 8·c·⌈log₂ n⌉`.
    pub fn paper_t(n: usize, c: usize) -> usize {
        let log_n = (usize::BITS - n.max(2).leading_zeros()) as usize;
        (8 * c * log_n).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let h1 = TWiseHash::from_seed(7, 16, 32);
        let h2 = TWiseHash::from_seed(7, 16, 32);
        let h3 = TWiseHash::from_seed(8, 16, 32);
        let mut differs = false;
        for v in 0..20 {
            for i in 0..20 {
                assert_eq!(h1.hash(v, i), h2.hash(v, i));
                if h1.hash(v, i) != h3.hash(v, i) {
                    differs = true;
                }
            }
        }
        assert!(differs, "different seeds should give different functions");
    }

    #[test]
    fn values_in_range() {
        let h = TWiseHash::from_seed(1, 8, 10);
        for v in 0..100 {
            for i in 0..50 {
                assert!(h.hash(v, i) < 10);
            }
        }
    }

    #[test]
    fn roughly_uniform() {
        let h = TWiseHash::from_seed(99, 32, 16);
        let mut counts = [0usize; 16];
        let total = 16_000;
        for key in 0..total {
            counts[h.hash(key % 997, key / 997)] += 1;
        }
        let expect = total as f64 / 16.0;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "bucket {b}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn pairwise_keys_distinct() {
        // Distinct (vertex, index) keys map through distinct field points
        // (packing is injective for vertex < 2^21, index < 2^40).
        let h = TWiseHash::from_seed(5, 4, 1 << 20);
        let a = h.hash(1, 0);
        let b = h.hash(0, 1 << 40 >> 20); // different key
                                          // Not an equality test (collisions allowed) — just exercise both.
        let _ = (a, b);
    }

    #[test]
    fn paper_t_scales_with_log_n() {
        assert_eq!(TWiseHash::paper_t(1024, 1), 8 * 11);
        assert!(TWiseHash::paper_t(2, 1) >= 2);
        assert_eq!(TWiseHash::paper_t(1024, 2), 2 * 8 * 11);
    }
}
