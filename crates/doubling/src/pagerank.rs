//! PageRank-style estimation from doubling walks — the application the
//! doubling technique was built for (\[7, 57\], §1.2's "walks of length
//! O(poly log n) are of particular interest for approximating
//! PageRank").

use crate::{doubling_walks, Balancing};
use cct_graph::Graph;
use cct_sim::Clique;
use rand::Rng;

/// Estimate of a `τ`-step visit distribution from doubling-walk batches.
#[derive(Debug, Clone)]
pub struct VisitEstimate {
    /// Estimated probability of standing at each vertex after `τ` steps
    /// from a uniformly random start.
    pub distribution: Vec<f64>,
    /// Walk length used.
    pub tau: u64,
    /// Independent batches run.
    pub batches: usize,
    /// Rounds charged across all batches.
    pub rounds: u64,
}

/// Estimates the `τ`-step visit distribution (uniform start) by running
/// `batches` independent doubling-walk rounds and counting endpoints.
///
/// Every batch produces one endpoint sample *per vertex*: walks within a
/// batch are correlated across vertices (index-based merging), but each
/// is marginally exact and batches are independent, so the estimator is
/// unbiased with variance shrinking as `1/(batches · n)` up to the
/// intra-batch correlation.
///
/// # Panics
///
/// Panics if `batches == 0`, `tau == 0`, or the graph has an isolated
/// vertex.
///
/// # Examples
///
/// ```
/// use cct_doubling::estimate_visit_distribution;
/// use cct_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::complete(6);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let est = estimate_visit_distribution(&g, 4, 200, &mut rng);
/// // K6 mixes instantly: every vertex gets ≈ 1/6.
/// assert!(est.distribution.iter().all(|&p| (p - 1.0 / 6.0).abs() < 0.05));
/// ```
pub fn estimate_visit_distribution<R: Rng + ?Sized>(
    g: &Graph,
    tau: u64,
    batches: usize,
    rng: &mut R,
) -> VisitEstimate {
    assert!(batches > 0, "need at least one batch");
    let n = g.n();
    let mut counts = vec![0u64; n];
    let mut rounds = 0u64;
    for _ in 0..batches {
        let mut clique = Clique::new(n);
        let (walks, _) = doubling_walks(&mut clique, g, tau, Balancing::Balanced { c: 1 }, rng);
        rounds += clique.ledger().total_rounds();
        for w in &walks {
            counts[*w.last().expect("non-empty walk")] += 1;
        }
    }
    let total = (batches * n) as f64;
    VisitEstimate {
        distribution: counts.into_iter().map(|c| c as f64 / total).collect(),
        tau: tau.next_power_of_two(),
        batches,
        rounds,
    }
}

/// The exact `τ`-step visit distribution from a uniform start, by power
/// iteration on the transition matrix — the ground truth for
/// [`estimate_visit_distribution`].
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn exact_visit_distribution(g: &Graph, tau: u64) -> Vec<f64> {
    let n = g.n();
    assert!(n > 0, "graph must be non-empty");
    let p = g.transition_matrix();
    let mut dist = vec![1.0 / n as f64; n];
    for _ in 0..tau.next_power_of_two() {
        let mut next = vec![0.0; n];
        for u in 0..n {
            if dist[u] == 0.0 {
                continue;
            }
            for v in 0..n {
                next[v] += dist[u] * p[(u, v)];
            }
        }
        dist = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use rand::SeedableRng;

    #[test]
    fn estimate_converges_to_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi_connected(12, 0.4, &mut rng);
        let tau = 8;
        let exact = exact_visit_distribution(&g, tau);
        let est = estimate_visit_distribution(&g, tau, 1500, &mut rng);
        assert_eq!(est.tau, 8);
        let max_err = est
            .distribution
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.02, "max error {max_err}");
        // Distributions sum to 1.
        let s: f64 = est.distribution.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_distribution_respects_bipartite_parity() {
        // On a path, a walk from a uniform start after an even number of
        // steps still has mass everywhere (mixed starts), but a walk
        // pinned at one vertex alternates; exact_visit starts uniform so
        // all vertices keep mass.
        let g = generators::path(4);
        let d = exact_visit_distribution(&g, 4);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn rounds_accumulate_across_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = generators::complete(8);
        let one = estimate_visit_distribution(&g, 4, 1, &mut rng);
        let ten = estimate_visit_distribution(&g, 4, 10, &mut rng);
        assert!(ten.rounds >= 9 * one.rounds);
    }
}
