//! # cct-doubling
//!
//! §3 of Pemmaraju–Roy–Sobel (PODC 2025): **load-balanced doubling** for
//! fast random walks in the Congested Clique.
//!
//! Theorem 2: a length-`τ` walk in `O(log τ)` rounds for
//! `τ = O(n/log n)`, and `O((τ/n)·log τ·log n)` rounds above that —
//! achieved by routing the prefix/suffix walk tuples of each doubling
//! iteration through an `8c log n`-wise independent hash
//! ([`TWiseHash`]), so no machine receives more than `16ck log n` tuples
//! w.h.p. (Lemma 10). The unbalanced ablation ([`Balancing::Naive`], the
//! scheme of Bahmani–Chakrabarti–Xin \[7\]) is included for experiment E6.
//!
//! Corollary 1: for graphs with cover time `τ` (expanders, `G(n,p)`,
//! `K_{n−√n,√n}`), [`sample_tree_via_doubling`] samples a uniform
//! spanning tree in `Õ(τ/n)` rounds by running Aldous–Broder over a walk
//! assembled from doubling segments.
//!
//! # Examples
//!
//! ```
//! use cct_doubling::{doubling_walks, Balancing};
//! use cct_graph::generators;
//! use cct_sim::Clique;
//! use rand::SeedableRng;
//!
//! let g = generators::complete(8);
//! let mut clique = Clique::new(8);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (walks, _) = doubling_walks(&mut clique, &g, 16, Balancing::Balanced { c: 1 }, &mut rng);
//! assert_eq!(walks[3][0], 3);       // walk of vertex 3 starts at 3
//! assert_eq!(walks[3].len(), 17);   // 16 steps
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[allow(clippy::module_inception)]
mod doubling;
mod hash;
mod pagerank;

pub use doubling::{
    doubling_walks, lemma10_bound, sample_tree_via_doubling, Balancing, DoublingStats,
};
pub use hash::{TWiseHash, FIELD};
pub use pagerank::{estimate_visit_distribution, exact_visit_distribution, VisitEstimate};
