//! Property-based tests for the doubling walks: validity, determinism,
//! and Lemma 10's load bound across random inputs.

use cct_doubling::{doubling_walks, lemma10_bound, Balancing, TWiseHash};
use cct_graph::generators;
use cct_sim::Clique;
use cct_walks::is_valid_walk;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn walks_valid_on_random_graphs(
        n in 4usize..=24,
        tau in 1u64..=64,
        seed in any::<u64>(),
        balanced in any::<bool>(),
    ) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.5, &mut gr);
        let mut clique = Clique::new(n);
        let balancing = if balanced { Balancing::Balanced { c: 1 } } else { Balancing::Naive };
        let mut r = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
        let (walks, stats) = doubling_walks(&mut clique, &g, tau, balancing, &mut r);
        let expect_len = tau.next_power_of_two() as usize + 1;
        for (v, w) in walks.iter().enumerate() {
            prop_assert_eq!(w[0], v);
            prop_assert_eq!(w.len(), expect_len);
            prop_assert!(is_valid_walk(&g, w));
        }
        prop_assert_eq!(stats.k_values.len(), tau.next_power_of_two().trailing_zeros() as usize);
    }

    #[test]
    fn lemma10_bound_on_random_graphs(n in 8usize..=48, seed in any::<u64>()) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.4, &mut gr);
        let mut clique = Clique::new(n);
        let mut r = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdef);
        let (_, stats) =
            doubling_walks(&mut clique, &g, n as u64, Balancing::Balanced { c: 1 }, &mut r);
        for (&max_tuples, &k) in stats.max_tuples_recv.iter().zip(&stats.k_values) {
            prop_assert!(max_tuples <= lemma10_bound(n, k, 1));
        }
    }

    #[test]
    fn hash_range_and_determinism(seed in any::<u64>(), t in 1usize..=64, range in 1usize..=512) {
        let h1 = TWiseHash::from_seed(seed, t, range);
        let h2 = TWiseHash::from_seed(seed, t, range);
        for v in 0..20 {
            for i in 0..10 {
                let x = h1.hash(v, i);
                prop_assert!(x < range);
                prop_assert_eq!(x, h2.hash(v, i));
            }
        }
    }

    #[test]
    fn doubling_deterministic_per_seed(n in 4usize..=12, seed in any::<u64>()) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.6, &mut gr);
        let run = |s: u64| {
            let mut clique = Clique::new(n);
            let mut r = rand::rngs::StdRng::seed_from_u64(s);
            doubling_walks(&mut clique, &g, 8, Balancing::Balanced { c: 1 }, &mut r).0
        };
        prop_assert_eq!(run(seed ^ 7), run(seed ^ 7));
    }
}
