//! A Borůvka-style minimum spanning tree protocol as a Congested Clique
//! [`MachineProgram`] — the weighted-workload counterpart to the paper's
//! samplers, pointing at the MST line of Congested Clique results
//! (Lotker et al.'s O(log log n), Pemmaraju–Sardeshmukh, and the
//! O(1)-round bound of Jurdziński–Nowicki).
//!
//! # Protocol
//!
//! Machine `i` holds vertex `i`'s adjacency list and a replicated vector
//! of component labels. Each Borůvka phase costs three exchanges:
//!
//! 1. **Candidates** ([`CostCategory::Gather`]): every machine picks its
//!    vertex's minimum outgoing edge — minimum under the total order
//!    `(w, min(u,v), max(u,v))`, so ties cannot create cycles — and
//!    sends it to the leader as a 3-word `(w, u, v)` triple. At most
//!    `3n` words converge on the leader, so Lenzen routing charges
//!    `⌈3n/n⌉ = 3` rounds.
//! 2. **Merge** ([`CostCategory::Broadcast`]): the leader reduces the
//!    candidates to one minimum per component, merges the touched
//!    components in a union–find, records the chosen edges, and scatters
//!    each machine its new label (1 word each — `⌈n/n⌉ = 1` round). If
//!    the merge leaves a single component the leader sends nothing and
//!    flags completion; if no candidates arrived while several
//!    components remain, it flags the graph disconnected.
//! 3. **Relay** ([`CostCategory::Broadcast`]): each machine re-broadcasts
//!    its fresh label to all `n` machines — the second hop of the
//!    standard two-step broadcast, `n` words sent and received per
//!    machine, 1 round — so every machine enters the next phase with the
//!    full label vector.
//!
//! Components at least halve per phase, so a connected `n`-vertex graph
//! finishes in `≤ ⌈log₂ n⌉` phases ≈ `5⌈log₂ n⌉` ledger rounds. The
//! protocol draws no randomness at all, which makes its output and its
//! ledger worker-count-invariant by the [`ParallelClique`] contract —
//! there is no seed to keep in sync.
//!
//! The chosen edge set equals the MST under the total order
//! `(w, min(u,v), max(u,v))`: that order makes all edge weights
//! distinct, and a graph with distinct weights has a *unique* MST, which
//! both Borůvka's merging and any sequential reference (e.g. Kruskal
//! with a stable sort over the same order) must find.
//!
//! This crate sits below the graph crate, so the entry point
//! [`boruvka_mst`] takes a raw adjacency structure; the `Graph`-typed
//! wrapper lives in the pipeline crate.

use crate::{Clique, CostCategory, Envelope, MachineProgram, ParallelClique};

/// Why the MST protocol failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstError {
    /// Some phase found a component with no outgoing edge while several
    /// components remained: the graph is disconnected and has no
    /// spanning tree.
    Disconnected,
    /// `adjacency.len()` disagreed with the clique size.
    WrongMachineCount {
        /// Number of machines in the clique.
        clique: usize,
        /// Number of adjacency rows supplied.
        rows: usize,
    },
}

impl std::fmt::Display for MstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MstError::Disconnected => f.write_str("graph is disconnected: no spanning tree exists"),
            MstError::WrongMachineCount { clique, rows } => write!(
                f,
                "adjacency has {rows} rows but the clique has {clique} machines"
            ),
        }
    }
}

impl std::error::Error for MstError {}

/// The result of [`boruvka_mst`]: the tree edges plus phase accounting
/// (round/word costs land on the clique's own [`crate::RoundLedger`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MstOutcome {
    /// The `n − 1` tree edges as `(u, v, w)` with `u < v`, sorted
    /// lexicographically.
    pub edges: Vec<(usize, usize, f64)>,
    /// Number of Borůvka phases it took (`≤ ⌈log₂ n⌉`).
    pub phases: usize,
}

/// A message of the MST protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum MstMsg {
    /// A vertex's minimum outgoing edge `(w, u, v)` — 3 words.
    Candidate {
        /// Edge weight.
        weight: f64,
        /// The sending endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A component label — 1 word.
    Label(usize),
}

/// The total order that makes every edge weight distinct: weight first,
/// then the canonical endpoint pair. Shared by the candidate selection
/// here and by any sequential reference implementation.
fn edge_key(w: f64, a: usize, b: usize) -> (f64, usize, usize) {
    (w, a.min(b), a.max(b))
}

fn key_less(x: (f64, usize, usize), y: (f64, usize, usize)) -> bool {
    // Weights are finite by the graph contract, so partial_cmp cannot
    // fail; fall through to the endpoint pair on exact weight ties.
    x.0 < y.0 || (x.0 == y.0 && (x.1, x.2) < (y.1, y.2))
}

/// Leader-only bookkeeping (lives on machine 0).
#[derive(Debug)]
struct LeaderState {
    /// Union–find over component labels.
    parent: Vec<usize>,
    /// MST edges chosen so far, as `(u, v, w)` with `u < v`.
    chosen: Vec<(usize, usize, f64)>,
    /// Completed Borůvka phases.
    phases: usize,
    /// Set once a merge leaves a single component.
    done: bool,
    /// Set when a phase proves the graph disconnected.
    disconnected: bool,
}

impl LeaderState {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
}

/// One machine of the MST protocol (see the module docs for the round
/// structure).
#[derive(Debug)]
pub struct MstProgram {
    id: usize,
    n: usize,
    /// Vertex `id`'s neighbors as `(other endpoint, weight)`.
    adj: Vec<(usize, f64)>,
    /// Replicated component labels, refreshed by each relay round.
    labels: Vec<usize>,
    /// `Some` on machine 0 only.
    leader: Option<LeaderState>,
}

impl MstProgram {
    fn new(id: usize, n: usize, adj: Vec<(usize, f64)>) -> Self {
        MstProgram {
            id,
            n,
            adj,
            labels: (0..n).collect(),
            leader: (id == 0).then(|| LeaderState {
                parent: (0..n).collect(),
                chosen: Vec::new(),
                phases: 0,
                done: false,
                disconnected: false,
            }),
        }
    }

    /// This vertex's minimum outgoing edge under the total order, if any
    /// neighbor lies in a different component.
    fn candidate(&self) -> Option<(usize, f64)> {
        let my = self.labels[self.id];
        let mut best: Option<(usize, f64)> = None;
        for &(v, w) in &self.adj {
            if self.labels[v] == my {
                continue;
            }
            let better = match best {
                None => true,
                Some((bv, bw)) => key_less(edge_key(w, self.id, v), edge_key(bw, self.id, bv)),
            };
            if better {
                best = Some((v, w));
            }
        }
        best
    }

    /// The leader's merge step: reduce candidates per component, union
    /// the components, record the chosen edges, and emit the relabel
    /// scatter (or nothing, when finished or provably disconnected).
    fn merge(&mut self, inbox: Vec<Envelope<MstMsg>>) -> Vec<Envelope<MstMsg>> {
        let n = self.n;
        // Per-component minimum candidate, keyed by the component's
        // current label.
        let mut best: Vec<Option<(f64, usize, usize)>> = vec![None; n];
        let mut any = false;
        for e in inbox {
            let MstMsg::Candidate { weight, u, v } = e.payload else {
                unreachable!("merge round receives only candidates");
            };
            any = true;
            let comp = self.labels[u];
            let key = edge_key(weight, u, v);
            if best[comp].is_none_or(|b| key_less(key, edge_key(b.0, b.1, b.2))) {
                best[comp] = Some((weight, u, v));
            }
        }
        let components: std::collections::BTreeSet<usize> = self.labels.iter().copied().collect();
        let leader = self.leader.as_mut().expect("merge runs on the leader");
        if !any {
            if components.len() > 1 {
                leader.disconnected = true;
            } else {
                leader.done = true;
            }
            return Vec::new();
        }
        // Union the endpoints of every chosen edge. Two components can
        // choose the same edge (each other's minimum); recording it once
        // is exactly what the union–find's no-op second union gives us.
        for comp in &components {
            let Some((w, u, v)) = best[*comp] else {
                continue;
            };
            let (ru, rv) = (leader.find(self.labels[u]), leader.find(self.labels[v]));
            if ru != rv {
                leader.parent[ru.max(rv)] = ru.min(rv);
                leader.chosen.push((u.min(v), u.max(v), w));
            }
        }
        leader.phases += 1;
        // Relabel every vertex to its component root.
        let new_labels: Vec<usize> = (0..n)
            .map(|j| {
                let l = self.labels[j];
                self.leader.as_mut().expect("leader").find(l)
            })
            .collect();
        let done = new_labels.iter().all(|&l| l == new_labels[0]);
        self.labels = new_labels;
        let leader = self.leader.as_mut().expect("leader");
        if done {
            leader.done = true;
            return Vec::new();
        }
        (0..n)
            .map(|j| Envelope::new(j, 1, MstMsg::Label(self.labels[j])))
            .collect()
    }
}

impl MachineProgram for MstProgram {
    type Msg = MstMsg;

    fn round(&mut self, round: usize, inbox: Vec<Envelope<MstMsg>>) -> Vec<Envelope<MstMsg>> {
        match round % 3 {
            // Candidates: absorb the previous phase's relayed labels,
            // then send this vertex's minimum outgoing edge to the
            // leader.
            0 => {
                for e in inbox {
                    let MstMsg::Label(l) = e.payload else {
                        unreachable!("candidate round receives only labels");
                    };
                    self.labels[e.from] = l;
                }
                match self.candidate() {
                    Some((v, w)) => vec![Envelope::new(
                        0,
                        3,
                        MstMsg::Candidate {
                            weight: w,
                            u: self.id,
                            v,
                        },
                    )],
                    None => Vec::new(),
                }
            }
            // Merge: leader only.
            1 => {
                if self.id != 0 {
                    debug_assert!(inbox.is_empty());
                    return Vec::new();
                }
                self.merge(inbox)
            }
            // Relay: re-broadcast the label the leader scattered to us.
            _ => {
                let mut label = None;
                for e in inbox {
                    let MstMsg::Label(l) = e.payload else {
                        unreachable!("relay round receives only labels");
                    };
                    label = Some(l);
                }
                let label = label.expect("the leader scatters a label to every machine");
                self.labels[self.id] = label;
                (0..self.n)
                    .map(|to| Envelope::new(to, 1, MstMsg::Label(label)))
                    .collect()
            }
        }
    }
}

/// Runs the Borůvka MST protocol on `clique`, whose machine `i` holds
/// `adjacency[i]` — vertex `i`'s neighbors as `(other endpoint, weight)`
/// pairs (both directions of every edge must be present). Round and
/// word costs are charged to the clique's own ledger under
/// [`CostCategory::Gather`] (candidates) and [`CostCategory::Broadcast`]
/// (merge scatter + relay).
///
/// Deterministic at any `workers` count: the protocol draws no
/// randomness, so the [`ParallelClique`] sharding contract alone makes
/// the output and the ledger worker-invariant.
///
/// # Errors
///
/// [`MstError::Disconnected`] when the graph has no spanning tree;
/// [`MstError::WrongMachineCount`] on an adjacency/clique size mismatch.
///
/// # Examples
///
/// ```
/// use cct_sim::{boruvka_mst, Clique};
///
/// // A triangle with one heavy edge: the MST drops it.
/// let adj = vec![
///     vec![(1, 1.0), (2, 5.0)],
///     vec![(0, 1.0), (2, 2.0)],
///     vec![(0, 5.0), (1, 2.0)],
/// ];
/// let mut clique = Clique::new(3);
/// let out = boruvka_mst(&mut clique, &adj, 1).unwrap();
/// assert_eq!(out.edges, vec![(0, 1, 1.0), (1, 2, 2.0)]);
/// assert!(clique.ledger().total_rounds() > 0);
/// ```
pub fn boruvka_mst(
    clique: &mut Clique,
    adjacency: &[Vec<(usize, f64)>],
    workers: usize,
) -> Result<MstOutcome, MstError> {
    let n = clique.n();
    if adjacency.len() != n {
        return Err(MstError::WrongMachineCount {
            clique: n,
            rows: adjacency.len(),
        });
    }
    if n == 1 {
        return Ok(MstOutcome {
            edges: Vec::new(),
            phases: 0,
        });
    }
    let mut programs: Vec<MstProgram> = adjacency
        .iter()
        .enumerate()
        .map(|(id, adj)| MstProgram::new(id, n, adj.clone()))
        .collect();
    let mut driver = ParallelClique::new(clique, workers);
    let mut inboxes = Vec::new();
    let mut round = 0;
    // Components at least halve per phase; the +2 covers the final
    // nothing-left-to-merge phase and the n = 2 floor.
    let max_phases = (usize::BITS - (n - 1).leading_zeros()) as usize + 2;
    for _ in 0..max_phases {
        inboxes = driver.step(CostCategory::Gather, &mut programs, round, inboxes);
        inboxes = driver.step(CostCategory::Broadcast, &mut programs, round + 1, inboxes);
        round += 2;
        let leader = programs[0]
            .leader
            .as_ref()
            .expect("machine 0 is the leader");
        if leader.disconnected {
            return Err(MstError::Disconnected);
        }
        if leader.done {
            let leader = programs
                .into_iter()
                .next()
                .expect("n >= 2")
                .leader
                .expect("machine 0 is the leader");
            let mut edges = leader.chosen;
            edges.sort_by_key(|&(u, v, _)| (u, v));
            debug_assert_eq!(edges.len(), n - 1);
            return Ok(MstOutcome {
                edges,
                phases: leader.phases,
            });
        }
        inboxes = driver.step(CostCategory::Broadcast, &mut programs, round, inboxes);
        round += 1;
    }
    unreachable!("Borůvka halves the component count every phase");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundLedger;

    fn adjacency(n: usize, edges: &[(usize, usize, f64)]) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
        adj
    }

    fn run(n: usize, edges: &[(usize, usize, f64)], workers: usize) -> (MstOutcome, RoundLedger) {
        let mut clique = Clique::new(n);
        let out = boruvka_mst(&mut clique, &adjacency(n, edges), workers).unwrap();
        (out, clique.ledger().clone())
    }

    #[test]
    fn path_and_star_are_their_own_msts() {
        let path = [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)];
        let (out, _) = run(4, &path, 1);
        assert_eq!(out.edges, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)]);
        let star = [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)];
        let (out, _) = run(4, &star, 1);
        assert_eq!(out.edges.len(), 3);
    }

    #[test]
    fn heavy_edges_are_dropped() {
        // C4 plus a heavy chord; MST drops the heaviest cycle edge.
        let edges = [
            (0, 1, 1.0),
            (1, 2, 4.0),
            (2, 3, 1.0),
            (0, 3, 2.0),
            (0, 2, 9.0),
        ];
        let (out, _) = run(4, &edges, 1);
        assert_eq!(out.edges, vec![(0, 1, 1.0), (0, 3, 2.0), (2, 3, 1.0)]);
    }

    #[test]
    fn tied_weights_resolve_by_the_endpoint_order() {
        // All weights equal: the unique MST under (w, u, v) is whatever
        // Kruskal-by-lex picks — for K4 that is the star at 0.
        let edges = [
            (0, 1, 1.0),
            (0, 2, 1.0),
            (0, 3, 1.0),
            (1, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
        ];
        let (out, _) = run(4, &edges, 1);
        assert_eq!(out.edges, vec![(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
    }

    #[test]
    fn worker_count_changes_nothing() {
        let edges = [
            (0, 1, 3.0),
            (1, 2, 3.0),
            (2, 3, 3.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (0, 5, 2.0),
            (1, 4, 7.0),
            (2, 5, 2.0),
        ];
        let (out1, ledger1) = run(6, &edges, 1);
        for workers in [2, 4, 8] {
            let (out, ledger) = run(6, &edges, workers);
            assert_eq!(out, out1, "workers = {workers}");
            assert_eq!(ledger, ledger1, "workers = {workers}");
        }
        assert_eq!(out1.edges.len(), 5);
    }

    #[test]
    fn disconnected_graphs_are_rejected() {
        let mut clique = Clique::new(4);
        let adj = adjacency(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(
            boruvka_mst(&mut clique, &adj, 1).unwrap_err(),
            MstError::Disconnected
        );
    }

    #[test]
    fn trivial_and_mismatched_inputs() {
        let mut clique = Clique::new(1);
        let out = boruvka_mst(&mut clique, &[Vec::new()], 1).unwrap();
        assert!(out.edges.is_empty());
        let mut clique = Clique::new(3);
        assert!(matches!(
            boruvka_mst(&mut clique, &[Vec::new()], 1),
            Err(MstError::WrongMachineCount { clique: 3, rows: 1 })
        ));
    }

    #[test]
    fn phases_stay_logarithmic_and_rounds_are_charged() {
        // A 64-cycle with equal weights: log2(64) = 6 phases suffice.
        let n = 64;
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|u| (u, (u + 1) % n, 1.0)).collect();
        let (out, ledger) = run(n, &edges, 4);
        assert_eq!(out.edges.len(), n - 1);
        assert!(out.phases <= 7, "phases = {}", out.phases);
        // Candidates land under Gather, relabel/relay under Broadcast.
        assert!(ledger.rounds(CostCategory::Gather) > 0);
        assert!(ledger.rounds(CostCategory::Broadcast) > 0);
        assert_eq!(
            ledger.total_rounds(),
            ledger.rounds(CostCategory::Gather) + ledger.rounds(CostCategory::Broadcast)
        );
    }
}
