//! Distributed matrix multiplication engines (§1.6, §2.4, Lemma 5).
//!
//! The paper's per-phase cost is dominated by computing powers of the
//! `n × n` transition matrix with the Censor-Hillel et al. algebraic
//! algorithm \[17\], which runs in `O(n^α)` rounds, `α = 1 − 2/ω ≈ 0.157`
//! \[72\]. Two engines are provided (plus a unit-cost engine for fast
//! tests):
//!
//! * [`SemiringEngine`] — a *real* distributed implementation of the
//!   classical `O(n^{1/3})`-round cube-partition algorithm. Blocks of the
//!   operands are physically routed between simulated machines through
//!   [`Clique::route`], so its round cost is measured from traffic.
//! * [`FastOracleEngine`] — computes the product locally and charges the
//!   *published* round cost `⌈n^α⌉ · words_per_entry`. Re-deriving the
//!   bilinear fast-matmul construction is out of scope (see DESIGN.md,
//!   substitution 2); this engine reproduces its cost model, which is all
//!   the paper's `Õ(n^{1/2+α})` analysis consumes.
//!
//! Both engines produce numerically identical products up to accumulation
//! order (tested), so swapping engines changes only the ledger.

use crate::{Clique, CostCategory, Envelope, MachineProgram, ParallelClique};
use cct_linalg::{CsrMatrix, Matrix, PMatrix, Rounding};

/// Messages of the semiring machine program.
///
/// Operand pieces travel as **CSR row slices** — `(offset, value)` pairs
/// of the non-zero entries within the block — instead of dense row
/// segments, so a sparse operand's actual data movement is `O(nnz)`.
/// The *charged* bandwidth (the envelope's word count) stays the
/// analytic dense figure `hi − lo`: the paper's protocol ships whole
/// row segments, and the ledger bills the published algorithm, not this
/// simulator's encoding.
#[derive(Debug, Clone)]
enum SemiringMsg {
    /// Round-0 operand shipment: (tag A=0/B=1, source row, sparse row
    /// piece as (offset-within-block, value) pairs).
    Operand(u8, usize, Vec<(u32, f64)>),
    /// Round-1 partial result: (destination row, block column offset,
    /// non-zero partials as (offset-within-block, value) pairs — the
    /// charged words stay the analytic dense segment width).
    Partial(usize, usize, Vec<(u32, f64)>),
}

/// A borrowed operand in either representation, with sparse row-slice
/// extraction for the operand shipments.
#[derive(Clone, Copy)]
enum Rows<'a> {
    Dense(&'a Matrix),
    Sparse(&'a CsrMatrix),
}

impl Rows<'_> {
    fn shape(&self) -> (usize, usize) {
        match self {
            Rows::Dense(m) => m.shape(),
            Rows::Sparse(m) => m.shape(),
        }
    }

    /// The non-zero entries of `row[lo..hi]` as (offset, value) pairs.
    fn piece(&self, row: usize, lo: usize, hi: usize) -> Vec<(u32, f64)> {
        match self {
            Rows::Dense(m) => m.row(row)[lo..hi]
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x != 0.0)
                .map(|(off, &x)| (off as u32, x))
                .collect(),
            Rows::Sparse(m) => {
                let (cols, vals) = m.row(row);
                let start = cols.partition_point(|&c| (c as usize) < lo);
                let end = cols.partition_point(|&c| (c as usize) < hi);
                cols[start..end]
                    .iter()
                    .zip(&vals[start..end])
                    .map(|(&c, &x)| ((c as usize - lo) as u32, x))
                    .collect()
            }
        }
    }
}

/// A distributed square-matrix multiplication engine.
///
/// Implementations must (a) return the true product and (b) charge their
/// round cost to the clique's ledger under [`CostCategory::MatMul`].
pub trait MatMulEngine {
    /// Multiplies `a · b` on the clique, charging rounds.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the operands are not square `n × n`
    /// matrices matching the clique size.
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix;

    /// Representation-adaptive [`MatMulEngine::multiply`]: operands and
    /// result are [`PMatrix`], so sparse inputs multiply through the
    /// CSR kernels (and sparse products stay sparse until the fill-in
    /// tracker promotes them). The charged rounds and words are
    /// **identical** to the dense route — the ledger bills the paper's
    /// protocol, which is representation-agnostic — and so are the
    /// computed bits (the `cct-linalg` contract). The default densifies
    /// and delegates; the engines in this crate override it.
    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        let a_dense;
        let a_ref = match a.as_dense() {
            Some(m) => m,
            None => {
                a_dense = a.to_dense();
                &a_dense
            }
        };
        let b_dense;
        let b_ref = match b.as_dense() {
            Some(m) => m,
            None => {
                b_dense = b.to_dense();
                &b_dense
            }
        };
        PMatrix::Dense(self.multiply(clique, a_ref, b_ref))
    }

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;

    /// The `(rounds, words)` this engine would charge for one `n × n`
    /// multiply, **if** that charge is a pure function of `n` — i.e. the
    /// engine bills an analytic formula rather than measuring real
    /// traffic. Engines that measure (the semiring protocol) return
    /// `None`.
    ///
    /// This is what lets [`DeferredPowers`] charge a full power table up
    /// front and then compute levels lazily: the ledger compares equal
    /// per category regardless of *when* the charges land, so deferring
    /// the compute is invisible to the bit-identity contract — but only
    /// when the charge needs no actual protocol run.
    fn analytic_multiply_charges(&self, n: usize) -> Option<(u64, u64)> {
        let _ = n;
        None
    }

    /// Rounds this engine charges for one `n × n` multiply, without
    /// performing one. Used to charge *analytic* costs for multiplies the
    /// simulation performs out-of-band (e.g. the `2n × 2n` absorbing-chain
    /// squarings of Corollary 2). The default runs a scratch multiply of
    /// identity matrices and reads the ledger, so measured and charged
    /// costs can never drift apart — but the answer is a pure function of
    /// the engine and `n`, so it is memoized per `(engine name, n)`
    /// process-wide: repeated ledger-cost queries (one per `sample()`
    /// call) stop paying an `O(n³)` multiply each. Engines whose charged
    /// cost depends on construction parameters (not just the name and
    /// `n`) must override this method, as [`FastOracleEngine`] does.
    fn rounds_for_multiply(&self, n: usize) -> u64 {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static MEMO: OnceLock<Mutex<HashMap<(&'static str, usize), u64>>> = OnceLock::new();
        let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(&rounds) = memo.lock().expect("memo poisoned").get(&(self.name(), n)) {
            return rounds;
        }
        let mut scratch = Clique::new(n);
        let id = Matrix::identity(n);
        let _ = self.multiply(&mut scratch, &id, &id);
        let rounds = scratch.ledger().total_rounds();
        memo.lock()
            .expect("memo poisoned")
            .insert((self.name(), n), rounds);
        rounds
    }
}

/// The classical `O(n^{1/3})`-round semiring algorithm with real data
/// movement.
///
/// Machines are arranged in a `c × c × c` cube, `c = ⌊n^{1/3}⌋`; machine
/// `(i, j, k)` receives block `A[i,k]` and block `B[k,j]` from the row
/// owners, multiplies them locally, and routes the partial `C[i,j]`
/// contribution back to the row owners of `C`, which accumulate.
#[derive(Debug, Clone)]
pub struct SemiringEngine {
    threads: usize,
}

impl SemiringEngine {
    /// Creates the engine; `threads` is the worker-pool width used to run
    /// the per-machine local steps concurrently (see [`ParallelClique`]).
    /// Output and ledger are identical at every thread count.
    pub fn new(threads: usize) -> Self {
        SemiringEngine {
            threads: threads.max(1),
        }
    }
}

/// The terminal-round accumulator for one owned output row.
///
/// When both operands are sparse the machines accumulate sparsely
/// (ordered map keyed by column), so the protocol's resident state is
/// `O(nnz(C))` in aggregate — never a `Θ(n²)` dense staging buffer that
/// gets compressed back down afterwards. Additions hit each column in
/// the same deterministic inbox order as the dense accumulator, so the
/// summed values are bit-identical.
enum RowAcc {
    Dense(Vec<f64>),
    Sparse(std::collections::BTreeMap<u32, f64>),
}

/// One machine of the semiring algorithm, as a [`MachineProgram`]:
/// round 0 ships this row owner's operand pieces to the cube, round 1
/// multiplies the blocks this cube machine received and ships partial
/// rows back, round 2 (terminal) accumulates the partials of the owned
/// output row.
struct SemiringMachine<'m> {
    id: usize,
    n: usize,
    c: usize,
    s: usize,
    a: Rows<'m>,
    b: Rows<'m>,
    /// Row `id` of the product, filled by the terminal round.
    acc: RowAcc,
}

impl SemiringMachine<'_> {
    fn blocks(&self, idx: usize) -> (usize, usize) {
        (idx * self.s, ((idx + 1) * self.s).min(self.n))
    }

    fn cube(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.c + j) * self.c + k
    }

    /// Round 0: row owner `id` ships its A-pieces to machines
    /// `(bi, *, k)` and its B-pieces to machines `(*, j, bk)`. Pieces
    /// travel as CSR row slices; the envelope's word count stays the
    /// analytic dense segment width `hi − lo` (see [`SemiringMsg`]).
    fn ship_operands(&self) -> Vec<Envelope<SemiringMsg>> {
        let (r, c, n) = (self.id, self.c, self.n);
        let bi = r / self.s;
        let mut outbox = Vec::new();
        for k in 0..c {
            let (lo, hi) = self.blocks(k);
            if lo >= n {
                continue;
            }
            let piece = self.a.piece(r, lo, hi);
            for j in 0..c {
                outbox.push(Envelope::new(
                    self.cube(bi, j, k),
                    hi - lo,
                    SemiringMsg::Operand(0, r, piece.clone()),
                ));
            }
        }
        let bk = r / self.s;
        for j in 0..c {
            let (lo, hi) = self.blocks(j);
            if lo >= n {
                continue;
            }
            let piece = self.b.piece(r, lo, hi);
            for i in 0..c {
                outbox.push(Envelope::new(
                    self.cube(i, j, bk),
                    hi - lo,
                    SemiringMsg::Operand(1, r, piece.clone()),
                ));
            }
        }
        outbox
    }

    /// Round 1: cube machine `(i, j, k)` keeps its operand blocks as the
    /// sparse row pieces they arrived as (no dense block staging),
    /// multiplies them, and ships each partial `C` row to its owner.
    ///
    /// The accumulation visits inner index `kl` in strictly increasing
    /// order and skips only exact-zero multiplicands, exactly like the
    /// dense kernel — bit-identical partials at `O(nnz)` block memory.
    fn multiply_blocks(&self, inbox: Vec<Envelope<SemiringMsg>>) -> Vec<Envelope<SemiringMsg>> {
        let (c, n) = (self.c, self.n);
        if self.id >= c * c * c {
            return Vec::new();
        }
        let (i, j, k) = (self.id / (c * c), (self.id / c) % c, self.id % c);
        let (ilo, ihi) = self.blocks(i);
        let (jlo, jhi) = self.blocks(j);
        let (klo, khi) = self.blocks(k);
        if ilo >= n || jlo >= n || klo >= n {
            return Vec::new();
        }
        let mut a_pieces: Vec<Vec<(u32, f64)>> = vec![Vec::new(); ihi - ilo];
        let mut b_pieces: Vec<Vec<(u32, f64)>> = vec![Vec::new(); khi - klo];
        for env in inbox {
            if let SemiringMsg::Operand(which, r, piece) = env.payload {
                if which == 0 {
                    if (ilo..ihi).contains(&r) {
                        a_pieces[r - ilo] = piece;
                    }
                } else if (klo..khi).contains(&r) {
                    b_pieces[r - klo] = piece;
                }
            }
        }
        let mut outbox = Vec::with_capacity(ihi - ilo);
        for (il, a_row) in a_pieces.iter().enumerate() {
            // Dense scratch for one partial row (O(block side), reused
            // allocation would not change bits; kept simple).
            let mut acc = vec![0.0f64; jhi - jlo];
            for &(kl, av) in a_row {
                for &(jl, bv) in &b_pieces[kl as usize] {
                    acc[jl as usize] += av * bv;
                }
            }
            // Ship only the non-zero partials; the charged bandwidth
            // stays the analytic dense segment width.
            let piece: Vec<(u32, f64)> = acc
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x != 0.0)
                .map(|(off, &x)| (off as u32, x))
                .collect();
            outbox.push(Envelope::new(
                ilo + il,
                acc.len(),
                SemiringMsg::Partial(ilo + il, jlo, piece),
            ));
        }
        outbox
    }
}

impl MachineProgram for SemiringMachine<'_> {
    type Msg = SemiringMsg;

    fn round(
        &mut self,
        round: usize,
        inbox: Vec<Envelope<SemiringMsg>>,
    ) -> Vec<Envelope<SemiringMsg>> {
        match round {
            0 => self.ship_operands(),
            1 => self.multiply_blocks(inbox),
            _ => {
                // Terminal round: accumulate the owned output row. The
                // inbox order is route's deterministic (sender, send
                // order), so every column receives its additions in the
                // same order under either accumulator — same bits.
                for env in inbox {
                    if let SemiringMsg::Partial(r, jlo, piece) = env.payload {
                        debug_assert_eq!(r, self.id);
                        match &mut self.acc {
                            RowAcc::Dense(row) => {
                                for (off, v) in piece {
                                    row[jlo + off as usize] += v;
                                }
                            }
                            RowAcc::Sparse(map) => {
                                for (off, v) in piece {
                                    *map.entry((jlo + off as usize) as u32).or_insert(0.0) += v;
                                }
                            }
                        }
                    }
                }
                Vec::new()
            }
        }
    }
}

impl Default for SemiringEngine {
    fn default() -> Self {
        SemiringEngine::new(1)
    }
}

impl SemiringEngine {
    /// The shared three-round protocol over borrowed operands in either
    /// representation. With `sparse_out` the machines accumulate their
    /// owned rows sparsely and the result is assembled straight into
    /// CSR — no `Θ(n²)` staging buffer, no densifying round-trip — then
    /// run through the promotion tracker (the exact same representation
    /// decision `compacted()` would have made, on the exact same bits).
    fn run(&self, clique: &mut Clique, a: Rows<'_>, b: Rows<'_>, sparse_out: bool) -> PMatrix {
        let n = clique.n();
        assert_eq!(a.shape(), (n, n), "operand A must be n × n");
        assert_eq!(b.shape(), (n, n), "operand B must be n × n");
        let c = ((n as f64).cbrt().floor() as usize).max(1);
        let s = n.div_ceil(c); // block side (last blocks may be smaller)

        // Machine r owns row r of A, B, and C; machine (i, j, k) of the
        // c × c × c cube multiplies block A[i,k] · B[k,j]. The three
        // rounds (ship operands, multiply blocks, accumulate partials)
        // run through the parallel round engine: local steps concurrent,
        // exchange and ledger charges single-threaded.
        let mut machines: Vec<SemiringMachine> = (0..n)
            .map(|id| SemiringMachine {
                id,
                n,
                c,
                s,
                a,
                b,
                acc: if sparse_out {
                    RowAcc::Sparse(std::collections::BTreeMap::new())
                } else {
                    RowAcc::Dense(vec![0.0f64; n])
                },
            })
            .collect();
        let mut driver = ParallelClique::new(clique, self.threads);
        let inboxes = driver.step(CostCategory::MatMul, &mut machines, 0, Vec::new());
        let inboxes = driver.step(CostCategory::MatMul, &mut machines, 1, inboxes);
        driver.finish(&mut machines, 2, inboxes);

        if sparse_out {
            let mut out = CsrMatrix::builder(n, n);
            for machine in machines {
                if let RowAcc::Sparse(map) = machine.acc {
                    for (col, v) in map {
                        // Exact-zero sums are dropped by the builder —
                        // the same entries `from_dense` would skip.
                        out.push(col as usize, v);
                    }
                }
                out.finish_row();
            }
            PMatrix::Sparse(out.build()).promoted()
        } else {
            let mut out = Matrix::zeros(n, n);
            for (r, machine) in machines.into_iter().enumerate() {
                if let RowAcc::Dense(row) = machine.acc {
                    out.row_mut(r).copy_from_slice(&row);
                }
            }
            PMatrix::Dense(out)
        }
    }
}

impl MatMulEngine for SemiringEngine {
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix {
        self.run(clique, Rows::Dense(a), Rows::Dense(b), false)
            .into_dense()
    }

    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        fn rows(m: &PMatrix) -> Rows<'_> {
            match m {
                PMatrix::Dense(d) => Rows::Dense(d),
                PMatrix::Sparse(s) => Rows::Sparse(s),
            }
        }
        // A sparse product may still be sparse: accumulate and assemble
        // in CSR directly (values unchanged bit for bit).
        let sparse_out = a.is_sparse() && b.is_sparse();
        self.run(clique, rows(a), rows(b), sparse_out)
    }

    fn name(&self) -> &'static str {
        "semiring-n^(1/3)"
    }
}

/// The fast algebraic algorithm \[17, 72\] as a cost oracle: local compute,
/// published round cost `⌈n^α⌉ · words_per_entry` (entries of `O(log 1/δ)`
/// bits occupy several machine words, Lemma 7).
#[derive(Debug, Clone)]
pub struct FastOracleEngine {
    alpha: f64,
    words_per_entry: usize,
    threads: usize,
}

/// The currently best matrix-multiplication exponent in the Congested
/// Clique: `α = 1 − 2/ω ≈ 0.157` \[72\].
pub const ALPHA: f64 = 0.157;

impl FastOracleEngine {
    /// Creates the oracle with exponent `alpha` (use [`ALPHA`] for the
    /// paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `\[0, 1\]` or `words_per_entry == 0`.
    pub fn new(alpha: f64, words_per_entry: usize, threads: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(words_per_entry >= 1, "entries occupy at least one word");
        FastOracleEngine {
            alpha,
            words_per_entry,
            threads: threads.max(1),
        }
    }

    /// Round cost charged per multiplication on an `n`-machine clique.
    pub fn rounds_per_multiply(&self, n: usize) -> u64 {
        ((n as f64).powf(self.alpha).ceil() as u64).max(1) * self.words_per_entry as u64
    }
}

impl Default for FastOracleEngine {
    fn default() -> Self {
        FastOracleEngine::new(ALPHA, 1, 1)
    }
}

impl MatMulEngine for FastOracleEngine {
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix {
        let n = clique.n();
        assert_eq!(a.shape(), (n, n), "operand A must be n × n");
        assert_eq!(b.shape(), (n, n), "operand B must be n × n");
        let rounds = self.rounds_per_multiply(n);
        clique.ledger_mut().charge(CostCategory::MatMul, rounds);
        // The algebraic algorithm moves Θ(n²) words in aggregate; record
        // the per-matrix volume for the bandwidth reports.
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n * self.words_per_entry) as u64);
        // Local compute, row-sharded: machine i owns output row i, so the
        // row-parallel kernel is exactly the per-machine concurrent step
        // (bit-identical to sequential at any thread count).
        a.matmul_parallel(b, self.threads)
    }

    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        let n = clique.n();
        assert_eq!(a.shape(), (n, n), "operand A must be n × n");
        assert_eq!(b.shape(), (n, n), "operand B must be n × n");
        // Identical analytic charges to the dense route: the oracle
        // bills the published algorithm, not this simulator's storage.
        let rounds = self.rounds_per_multiply(n);
        clique.ledger_mut().charge(CostCategory::MatMul, rounds);
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n * self.words_per_entry) as u64);
        a.matmul(b, self.threads)
    }

    fn name(&self) -> &'static str {
        "fast-oracle-n^alpha"
    }

    fn rounds_for_multiply(&self, n: usize) -> u64 {
        self.rounds_per_multiply(n)
    }

    fn analytic_multiply_charges(&self, n: usize) -> Option<(u64, u64)> {
        Some((
            self.rounds_per_multiply(n),
            (n * n * self.words_per_entry) as u64,
        ))
    }
}

/// Unit-cost engine: local compute, one round per multiply. For tests that
/// exercise protocol logic without caring about matmul cost.
#[derive(Debug, Clone, Default)]
pub struct UnitCostEngine {
    /// Worker-pool width for the row-sharded local compute (machine i
    /// owns output row i); results are thread-count invariant.
    pub threads: usize,
}

impl MatMulEngine for UnitCostEngine {
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix {
        clique.ledger_mut().charge(CostCategory::MatMul, 1);
        a.matmul_parallel(b, self.threads.max(1))
    }

    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        clique.ledger_mut().charge(CostCategory::MatMul, 1);
        a.matmul(b, self.threads.max(1))
    }

    fn name(&self) -> &'static str {
        "unit-cost"
    }

    fn rounds_for_multiply(&self, _n: usize) -> u64 {
        1
    }

    fn analytic_multiply_charges(&self, _n: usize) -> Option<(u64, u64)> {
        Some((1, 0))
    }
}

/// Algorithm 1 (Initialization Step), steps 2–3: computes
/// `M, M², M⁴, …, M^{2^{levels−1}}` on the clique, optionally truncating
/// entries between squarings (Lemma 7), and charges the column-
/// redistribution cost (each machine sends entry `(i, j)` of every power
/// to machine `j` — `n` entries per machine per power, i.e.
/// `words_per_entry` rounds by Lenzen routing).
///
/// Returns the power table: index `k` holds `M^{2^k}`.
///
/// # Panics
///
/// Panics if `m` is not `n × n` for the clique's `n`, or `levels == 0`.
pub fn distributed_powers(
    clique: &mut Clique,
    engine: &dyn MatMulEngine,
    m: &Matrix,
    levels: usize,
    rounding: Rounding,
) -> Vec<Matrix> {
    distributed_powers_impl(clique, m, levels, rounding, |clique, last| {
        engine.multiply(clique, last, last)
    })
}

/// [`distributed_powers`] on the representation-adaptive backend: the
/// table holds [`PMatrix`] levels, so the early powers of a sparse
/// transition matrix stay CSR (this is where the sparse backend's
/// memory win lands — squaring promotes later levels to dense through
/// the fill-in tracker). Round and word charges are identical to the
/// dense route, and so are the computed bits.
///
/// # Panics
///
/// As [`distributed_powers`].
pub fn distributed_powers_p(
    clique: &mut Clique,
    engine: &dyn MatMulEngine,
    m: &PMatrix,
    levels: usize,
    rounding: Rounding,
) -> Vec<PMatrix> {
    distributed_powers_impl(clique, m, levels, rounding, |clique, last| {
        engine.multiply_p(clique, last, last)
    })
}

/// A lazily materialized Algorithm-1 power table: level `k` holds
/// `M^{2^k}`, computed on demand and memoized.
///
/// # The charge-up-front contract
///
/// The constructor ([`distributed_powers_deferred`]) charges the
/// clique's ledger for **every** level immediately — the same per-
/// category totals the eager [`distributed_powers_p`] route charges —
/// and defers only the local numeric work. Ledger equality is
/// per-category totals (the [`crate::RoundLedger`] representation), so
/// *when* a charge lands is invisible: a run that touches only the
/// first three levels produces the same ledger as one that touches all
/// of them, and both match the eager route bit for bit.
///
/// Deferral requires the engine's multiply cost to be an analytic
/// function of `n` ([`MatMulEngine::analytic_multiply_charges`]);
/// engines that measure real traffic (the semiring protocol) fall back
/// to eager materialization inside the constructor, so callers hold a
/// single type either way.
///
/// Each level is squared from the previous with the representation-
/// adaptive [`PMatrix::matmul`] followed by the same fixed-point
/// truncation the eager route applies — identical bits, identical
/// promotion decisions. Levels live in [`std::sync::OnceLock`] slots, so
/// a shared table is `Sync` and prepared samplers stay shareable across
/// worker threads.
pub struct DeferredPowers {
    levels: Vec<std::sync::OnceLock<PMatrix>>,
    threads: usize,
    rounding: Rounding,
}

impl DeferredPowers {
    /// Wraps an already materialized table (the eager fallback; also
    /// useful for callers that built levels by other means and want the
    /// uniform lazy-table interface).
    pub fn from_materialized(table: Vec<PMatrix>, threads: usize, rounding: Rounding) -> Self {
        let levels = table
            .into_iter()
            .map(|m| {
                let slot = std::sync::OnceLock::new();
                slot.set(m).expect("fresh slot");
                slot
            })
            .collect();
        DeferredPowers {
            levels,
            threads,
            rounding,
        }
    }

    /// Creates a table whose level 0 is `first` and whose higher levels
    /// materialize on first access.
    fn lazy(first: PMatrix, levels: usize, threads: usize, rounding: Rounding) -> Self {
        let mut slots = Vec::with_capacity(levels);
        let slot = std::sync::OnceLock::new();
        slot.set(first).expect("fresh slot");
        slots.push(slot);
        for _ in 1..levels {
            slots.push(std::sync::OnceLock::new());
        }
        DeferredPowers {
            levels: slots,
            threads,
            rounding,
        }
    }

    /// Number of levels (`K + 1` for a table up to `M^{2^K}`).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` if the table has no levels (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Level `k` (`M^{2^k}`), materializing it — and any missing lower
    /// levels — on first access.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn level(&self, k: usize) -> &PMatrix {
        assert!(k < self.levels.len(), "level {k} out of range");
        // Materialize bottom-up so the recursion depth is 1.
        for i in 1..=k {
            if self.levels[i].get().is_none() {
                let prev = self.levels[i - 1].get().expect("lower level materialized");
                let mut sq = prev.matmul(prev, self.threads);
                sq.round_inplace(self.rounding);
                // A concurrent materializer may have won the race; the
                // value is identical either way (pure function of the
                // previous level), so the losing square is dropped.
                let _ = self.levels[i].set(sq);
            }
        }
        self.levels[k].get().expect("materialized above")
    }

    /// How many levels are currently materialized.
    pub fn materialized_levels(&self) -> usize {
        self.levels.iter().filter(|s| s.get().is_some()).count()
    }

    /// Level `k` if it has already been materialized, without forcing
    /// it. Snapshot writers use this to persist exactly the work a
    /// server has actually done — absent levels stay absent.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn materialized_level(&self, k: usize) -> Option<&PMatrix> {
        assert!(k < self.levels.len(), "level {k} out of range");
        self.levels[k].get()
    }

    /// Installs a previously materialized level into an empty slot —
    /// the restore half of snapshotting. The matrix must have the same
    /// shape as level 0; installing into an occupied slot is an error
    /// (level 0 is always occupied), so restore targets `k >= 1` of a
    /// freshly built lazy table.
    ///
    /// Because every level is a pure function of level 0, a caller that
    /// injects bits produced by the same code from the same level 0
    /// preserves the table's value; integrity of the surrounding state
    /// is the caller's contract (the serve snapshot layer verifies the
    /// base matrix and ledger before injecting).
    pub fn set_level(&self, k: usize, m: PMatrix) -> Result<(), String> {
        if k >= self.levels.len() {
            return Err(format!(
                "level {k} out of range (table has {})",
                self.levels.len()
            ));
        }
        let base_shape = self.levels[0]
            .get()
            .expect("level 0 always materialized")
            .shape();
        if m.shape() != base_shape {
            return Err(format!(
                "level {k} shape {:?} does not match table shape {:?}",
                m.shape(),
                base_shape
            ));
        }
        self.levels[k]
            .set(m)
            .map_err(|_| format!("level {k} already materialized"))
    }

    /// Allocated heap bytes of the materialized levels — the power-table
    /// term of a prepared sampler's resident-byte accounting. Absent
    /// levels cost nothing: that is the point.
    pub fn resident_bytes(&self) -> usize {
        self.levels
            .iter()
            .filter_map(|s| s.get())
            .map(|m| m.resident_bytes())
            .sum()
    }
}

impl std::fmt::Debug for DeferredPowers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeferredPowers {{ {}/{} levels materialized, {} bytes }}",
            self.materialized_levels(),
            self.len(),
            self.resident_bytes()
        )
    }
}

/// [`distributed_powers_p`] with lazy level materialization: charges the
/// full Algorithm-1 cost (squarings plus column redistributions) up
/// front and returns a [`DeferredPowers`] whose levels compute on
/// demand.
///
/// `threads` is the local worker width for deferred squarings; pass the
/// same width the engine was constructed with so deferred and eager
/// products shard identically (they are bit-identical at any width —
/// this is about work, not bits).
///
/// Engines without analytic charges fall back to eager materialization
/// through the engine itself — same type, same totals, no deferral.
///
/// # Panics
///
/// As [`distributed_powers`].
pub fn distributed_powers_deferred(
    clique: &mut Clique,
    engine: &dyn MatMulEngine,
    m: &PMatrix,
    levels: usize,
    rounding: Rounding,
    threads: usize,
) -> DeferredPowers {
    let n = clique.n();
    assert_eq!(m.shape(), (n, n), "matrix must match clique size");
    assert!(levels > 0, "need at least one level");
    let threads = threads.max(1);
    let Some((rounds, words)) = engine.analytic_multiply_charges(n) else {
        // Measured-cost engine: the charges only exist if the protocol
        // actually runs, so materialize eagerly.
        let table = distributed_powers_p(clique, engine, m, levels, rounding);
        return DeferredPowers::from_materialized(table, threads, rounding);
    };
    // Charge everything the eager route would charge, in one place:
    // levels−1 squarings plus the per-level column redistribution of
    // Algorithm 1 step 3. Per-category totals equal the eager route's.
    let wpe = rounding.words_per_entry(n) as u64;
    for _ in 1..levels {
        clique.ledger_mut().charge(CostCategory::MatMul, rounds);
        clique.ledger_mut().add_words(CostCategory::MatMul, words);
    }
    for _ in 0..levels {
        clique.ledger_mut().charge(CostCategory::MatMul, wpe);
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n) as u64 * wpe);
    }
    let mut first = m.clone();
    first.round_inplace(rounding);
    DeferredPowers::lazy(first, levels, threads, rounding)
}

/// The shared Algorithm-1 skeleton behind both power-table builders.
trait PowerLevel: Clone {
    fn shape(&self) -> (usize, usize);
    fn round(&mut self, rounding: Rounding);
}

impl PowerLevel for Matrix {
    fn shape(&self) -> (usize, usize) {
        Matrix::shape(self)
    }
    fn round(&mut self, rounding: Rounding) {
        rounding.round_matrix_inplace(self);
    }
}

impl PowerLevel for PMatrix {
    fn shape(&self) -> (usize, usize) {
        PMatrix::shape(self)
    }
    fn round(&mut self, rounding: Rounding) {
        self.round_inplace(rounding);
    }
}

fn distributed_powers_impl<M: PowerLevel>(
    clique: &mut Clique,
    m: &M,
    levels: usize,
    rounding: Rounding,
    mut square: impl FnMut(&mut Clique, &M) -> M,
) -> Vec<M> {
    let n = clique.n();
    assert_eq!(m.shape(), (n, n), "matrix must match clique size");
    assert!(levels > 0, "need at least one level");
    let wpe = rounding.words_per_entry(n) as u64;
    let mut table = Vec::with_capacity(levels);
    let mut first = m.clone();
    first.round(rounding);
    table.push(first);
    for _ in 1..levels {
        let last = table.last().expect("non-empty");
        // Round the engine's product in place: no clone-per-level.
        let mut sq = square(clique, last);
        sq.round(rounding);
        table.push(sq);
    }
    // Step 3 of Algorithm 1: column redistribution of every power.
    for _ in 0..levels {
        clique.ledger_mut().charge(CostCategory::MatMul, wpe);
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n) as u64 * wpe);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_linalg::{is_row_stochastic, normalize_rows, powers_of_two, FixedPoint};
    use rand::{Rng, SeedableRng};

    fn random_stochastic(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>());
        normalize_rows(&mut m);
        m
    }

    #[test]
    fn semiring_matches_local_product() {
        for n in [1usize, 2, 5, 8, 27, 30] {
            let a = random_stochastic(n, 1);
            let b = random_stochastic(n, 2);
            let mut clique = Clique::new(n);
            let engine = SemiringEngine::new(1);
            let dist = engine.multiply(&mut clique, &a, &b);
            let local = a.matmul(&b);
            assert!(
                dist.max_abs_diff(&local) < 1e-12,
                "n = {n}: diff {}",
                dist.max_abs_diff(&local)
            );
        }
    }

    #[test]
    fn semiring_cost_scales_sublinearly() {
        // Rounds should grow roughly like n^{1/3} · const, far below n.
        let mut rounds = Vec::new();
        for n in [27usize, 64, 125] {
            let a = random_stochastic(n, 3);
            let mut clique = Clique::new(n);
            SemiringEngine::new(1).multiply(&mut clique, &a, &a);
            rounds.push((n, clique.ledger().total_rounds()));
        }
        for &(n, r) in &rounds {
            assert!(r as usize <= 8 * n, "n = {n}: {r} rounds is too many");
            assert!(r >= 1);
        }
        // Cost grows slower than linear: r(125)/r(27) < 125/27.
        let (n0, r0) = rounds[0];
        let (n2, r2) = rounds[2];
        assert!(
            (r2 as f64) / (r0 as f64) < (n2 as f64) / (n0 as f64),
            "semiring cost not sublinear: {rounds:?}"
        );
    }

    #[test]
    fn semiring_is_bit_identical_at_every_thread_count() {
        for n in [5usize, 27, 30] {
            let a = random_stochastic(n, 20);
            let b = random_stochastic(n, 21);
            let mut base = Clique::new(n);
            let reference = SemiringEngine::new(1).multiply(&mut base, &a, &b);
            for threads in [2usize, 4, 8] {
                let mut clique = Clique::new(n);
                let prod = SemiringEngine::new(threads).multiply(&mut clique, &a, &b);
                assert_eq!(prod, reference, "n = {n}, threads = {threads}");
                assert_eq!(
                    clique.ledger(),
                    base.ledger(),
                    "n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn fast_oracle_matches_and_charges_formula() {
        let n = 32;
        let a = random_stochastic(n, 4);
        let b = random_stochastic(n, 5);
        let mut clique = Clique::new(n);
        let engine = FastOracleEngine::new(ALPHA, 2, 1);
        let prod = engine.multiply(&mut clique, &a, &b);
        assert!(prod.max_abs_diff(&a.matmul(&b)) < 1e-12);
        let expect = ((n as f64).powf(ALPHA).ceil() as u64) * 2;
        assert_eq!(clique.ledger().rounds(CostCategory::MatMul), expect);
    }

    #[test]
    fn engines_agree_with_each_other() {
        let n = 27;
        let a = random_stochastic(n, 6);
        let b = random_stochastic(n, 7);
        let mut c1 = Clique::new(n);
        let mut c2 = Clique::new(n);
        let r1 = SemiringEngine::new(1).multiply(&mut c1, &a, &b);
        let r2 = FastOracleEngine::default().multiply(&mut c2, &a, &b);
        assert!(r1.max_abs_diff(&r2) < 1e-12);
    }

    #[test]
    fn distributed_powers_match_sequential() {
        let n = 16;
        let p = random_stochastic(n, 8);
        let mut clique = Clique::new(n);
        let table = distributed_powers(
            &mut clique,
            &UnitCostEngine::default(),
            &p,
            5,
            Rounding::Exact,
        );
        let expect = powers_of_two(&p, 5, 1);
        for (a, b) in table.iter().zip(&expect) {
            assert!(a.max_abs_diff(b) < 1e-12);
        }
        for m in &table {
            assert!(is_row_stochastic(m, 1e-9));
        }
    }

    #[test]
    fn distributed_powers_with_rounding_are_substochastic() {
        let n = 8;
        let p = random_stochastic(n, 9);
        let fp = FixedPoint::new(24);
        let mut clique = Clique::new(n);
        let table = distributed_powers(
            &mut clique,
            &UnitCostEngine::default(),
            &p,
            4,
            Rounding::Fixed(fp),
        );
        for m in &table {
            assert!(cct_linalg::is_row_substochastic(m, 1e-12));
        }
        // Squaring count: 3 multiplies + 4 column redistributions.
        let wpe = fp.words_per_entry(n) as u64;
        assert_eq!(clique.ledger().rounds(CostCategory::MatMul), 3 + 4 * wpe);
    }

    #[test]
    fn multiply_p_matches_multiply_bits_and_ledger_in_every_representation() {
        // Banded operand: genuinely sparse, so the CSR kernels run.
        let n = 27;
        let dense_op = Matrix::from_fn(n, n, |i, j| {
            if i.abs_diff(j) <= 2 {
                ((i * 31 + j * 17) % 97) as f64 / 97.0 + 1e-9
            } else {
                0.0
            }
        });
        let engines: Vec<Box<dyn MatMulEngine>> = vec![
            Box::new(UnitCostEngine { threads: 1 }),
            Box::new(FastOracleEngine::new(ALPHA, 2, 1)),
            Box::new(SemiringEngine::new(1)),
        ];
        for engine in &engines {
            let mut reference_clique = Clique::new(n);
            let reference = engine.multiply(&mut reference_clique, &dense_op, &dense_op);
            let sparse_op = PMatrix::Sparse(CsrMatrix::from_dense(&dense_op));
            let dense_p = PMatrix::Dense(dense_op.clone());
            for (label, a, b) in [
                ("d*d", &dense_p, &dense_p),
                ("s*s", &sparse_op, &sparse_op),
                ("s*d", &sparse_op, &dense_p),
                ("d*s", &dense_p, &sparse_op),
            ] {
                let mut clique = Clique::new(n);
                let prod = engine.multiply_p(&mut clique, a, b);
                assert_eq!(
                    prod.to_dense(),
                    reference,
                    "{}: {label} bits diverged",
                    engine.name()
                );
                assert_eq!(
                    clique.ledger(),
                    reference_clique.ledger(),
                    "{}: {label} ledger diverged",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn distributed_powers_p_matches_dense_table_and_ledger() {
        let n = 16;
        let p = random_stochastic(n, 8);
        let mut dense_clique = Clique::new(n);
        let dense_table = distributed_powers(
            &mut dense_clique,
            &UnitCostEngine::default(),
            &p,
            5,
            Rounding::Exact,
        );
        for (repr, pm) in [
            (cct_linalg::Repr::Dense, PMatrix::Dense(p.clone())),
            (
                cct_linalg::Repr::Sparse,
                PMatrix::Sparse(CsrMatrix::from_dense(&p)),
            ),
        ] {
            let mut clique = Clique::new(n);
            let table = distributed_powers_p(
                &mut clique,
                &UnitCostEngine::default(),
                &pm,
                5,
                Rounding::Exact,
            );
            assert_eq!(table.len(), dense_table.len());
            for (a, b) in table.iter().zip(&dense_table) {
                assert_eq!(&a.to_dense(), b, "{repr:?}");
            }
            assert_eq!(clique.ledger(), dense_clique.ledger(), "{repr:?}");
        }
        // A genuinely sparse chain keeps its early levels sparse: powers
        // of a cycle's transition matrix stay banded.
        let cyc = Matrix::from_fn(32, 32, |i, j| {
            if (i + 1) % 32 == j || (j + 1) % 32 == i {
                0.5
            } else {
                0.0
            }
        });
        let mut clique = Clique::new(32);
        let table = distributed_powers_p(
            &mut clique,
            &UnitCostEngine::default(),
            &PMatrix::Sparse(CsrMatrix::from_dense(&cyc)),
            4,
            Rounding::Exact,
        );
        assert!(table[0].is_sparse() && table[1].is_sparse());
    }

    fn banded_stochastic(n: usize) -> Matrix {
        let mut m = Matrix::from_fn(n, n, |i, j| {
            if i.abs_diff(j) <= 1 || (i + 1) % n == j || (j + 1) % n == i {
                ((i * 31 + j * 17) % 97) as f64 / 97.0 + 1e-9
            } else {
                0.0
            }
        });
        normalize_rows(&mut m);
        m
    }

    #[test]
    fn deferred_powers_charge_up_front_and_match_eager_bits() {
        let n = 32;
        let p = banded_stochastic(n);
        let pm = PMatrix::Sparse(CsrMatrix::from_dense(&p));
        let engines: Vec<Box<dyn MatMulEngine>> = vec![
            Box::new(UnitCostEngine { threads: 1 }),
            Box::new(FastOracleEngine::new(ALPHA, 2, 1)),
        ];
        for rounding in [
            Rounding::Exact,
            Rounding::Fixed(FixedPoint::new(24)),
            Rounding::F32,
        ] {
            for engine in &engines {
                let mut eager_clique = Clique::new(n);
                let eager =
                    distributed_powers_p(&mut eager_clique, engine.as_ref(), &pm, 6, rounding);
                let mut lazy_clique = Clique::new(n);
                let lazy = distributed_powers_deferred(
                    &mut lazy_clique,
                    engine.as_ref(),
                    &pm,
                    6,
                    rounding,
                    1,
                );
                // The full cost lands at construction, before any level
                // beyond 0 exists.
                assert_eq!(
                    lazy_clique.ledger(),
                    eager_clique.ledger(),
                    "{}: up-front charges diverged",
                    engine.name()
                );
                assert_eq!(lazy.materialized_levels(), 1);
                assert!(lazy.resident_bytes() < eager.iter().map(|m| m.resident_bytes()).sum());
                // Materialization is charge-free and bit-identical.
                for (k, want) in eager.iter().enumerate() {
                    assert_eq!(
                        lazy.level(k).to_dense(),
                        want.to_dense(),
                        "{}: level {k} diverged",
                        engine.name()
                    );
                    assert_eq!(lazy.level(k).repr(), want.repr(), "level {k} repr");
                }
                assert_eq!(lazy.materialized_levels(), 6);
                assert_eq!(lazy_clique.ledger(), eager_clique.ledger());
            }
        }
    }

    #[test]
    fn deferred_powers_fall_back_to_eager_for_measured_engines() {
        // The semiring engine measures real traffic: no analytic charge
        // exists, so the constructor materializes everything through the
        // engine — same ledger, same bits, same type.
        let n = 27;
        let p = banded_stochastic(n);
        let pm = PMatrix::Sparse(CsrMatrix::from_dense(&p));
        let engine = SemiringEngine::new(1);
        assert!(engine.analytic_multiply_charges(n).is_none());
        let mut eager_clique = Clique::new(n);
        let eager = distributed_powers_p(&mut eager_clique, &engine, &pm, 4, Rounding::Exact);
        let mut lazy_clique = Clique::new(n);
        let lazy =
            distributed_powers_deferred(&mut lazy_clique, &engine, &pm, 4, Rounding::Exact, 1);
        assert_eq!(lazy.materialized_levels(), 4);
        assert_eq!(lazy_clique.ledger(), eager_clique.ledger());
        for (k, want) in eager.iter().enumerate() {
            assert_eq!(lazy.level(k).to_dense(), want.to_dense(), "level {k}");
        }
    }

    #[test]
    fn semiring_sparse_product_assembles_csr_directly() {
        // Both operands sparse: the product must come back in the same
        // representation (and with the same bits) the old densify-then-
        // compact route produced — but via direct CSR assembly.
        let n = 30;
        let p = banded_stochastic(n);
        let sparse = PMatrix::Sparse(CsrMatrix::from_dense(&p));
        let engine = SemiringEngine::new(1);
        let mut c1 = Clique::new(n);
        let prod = engine.multiply_p(&mut c1, &sparse, &sparse);
        assert!(prod.is_sparse(), "banded square stays under break-even");
        let mut c2 = Clique::new(n);
        let reference = engine.multiply(&mut c2, &p, &p);
        assert_eq!(prod.to_dense(), reference);
        assert_eq!(c1.ledger(), c2.ledger(), "analytic charges unchanged");
    }

    #[test]
    fn default_rounds_for_multiply_is_memoized_and_correct() {
        // The semiring engine uses the trait default: the memoized answer
        // must equal a fresh measured multiply, across repeated queries
        // and engine instances, and the second query must not run the
        // scratch multiply (observable as a large speedup; here we settle
        // for value equality plus agreement across instances).
        let n = 30;
        let first = SemiringEngine::new(1).rounds_for_multiply(n);
        let mut clique = Clique::new(n);
        let a = random_stochastic(n, 99);
        SemiringEngine::new(1).multiply(&mut clique, &a, &a);
        assert_eq!(first, clique.ledger().total_rounds());
        assert_eq!(SemiringEngine::new(4).rounds_for_multiply(n), first);
        assert_eq!(SemiringEngine::new(1).rounds_for_multiply(n), first);
    }

    #[test]
    fn oracle_rounds_per_multiply_monotone_in_n() {
        let e = FastOracleEngine::default();
        assert!(e.rounds_per_multiply(64) <= e.rounds_per_multiply(256));
        assert!(e.rounds_per_multiply(2) >= 1);
    }
}
