//! Distributed matrix multiplication engines (§1.6, §2.4, Lemma 5).
//!
//! The paper's per-phase cost is dominated by computing powers of the
//! `n × n` transition matrix with the Censor-Hillel et al. algebraic
//! algorithm \[17\], which runs in `O(n^α)` rounds, `α = 1 − 2/ω ≈ 0.157`
//! \[72\]. Two engines are provided (plus a unit-cost engine for fast
//! tests):
//!
//! * [`SemiringEngine`] — a *real* distributed implementation of the
//!   classical `O(n^{1/3})`-round cube-partition algorithm. Blocks of the
//!   operands are physically routed between simulated machines through
//!   [`Clique::route`], so its round cost is measured from traffic.
//! * [`FastOracleEngine`] — computes the product locally and charges the
//!   *published* round cost `⌈n^α⌉ · words_per_entry`. Re-deriving the
//!   bilinear fast-matmul construction is out of scope (see DESIGN.md,
//!   substitution 2); this engine reproduces its cost model, which is all
//!   the paper's `Õ(n^{1/2+α})` analysis consumes.
//!
//! Both engines produce numerically identical products up to accumulation
//! order (tested), so swapping engines changes only the ledger.

use crate::{Clique, CostCategory, Envelope, MachineProgram, ParallelClique};
use cct_linalg::{CsrMatrix, FixedPoint, Matrix, PMatrix};

/// Messages of the semiring machine program.
///
/// Operand pieces travel as **CSR row slices** — `(offset, value)` pairs
/// of the non-zero entries within the block — instead of dense row
/// segments, so a sparse operand's actual data movement is `O(nnz)`.
/// The *charged* bandwidth (the envelope's word count) stays the
/// analytic dense figure `hi − lo`: the paper's protocol ships whole
/// row segments, and the ledger bills the published algorithm, not this
/// simulator's encoding.
#[derive(Debug, Clone)]
enum SemiringMsg {
    /// Round-0 operand shipment: (tag A=0/B=1, source row, sparse row
    /// piece as (offset-within-block, value) pairs).
    Operand(u8, usize, Vec<(u32, f64)>),
    /// Round-1 partial result: (destination row, block column offset,
    /// partial row).
    Partial(usize, usize, Vec<f64>),
}

/// A borrowed operand in either representation, with sparse row-slice
/// extraction for the operand shipments.
#[derive(Clone, Copy)]
enum Rows<'a> {
    Dense(&'a Matrix),
    Sparse(&'a CsrMatrix),
}

impl Rows<'_> {
    fn shape(&self) -> (usize, usize) {
        match self {
            Rows::Dense(m) => m.shape(),
            Rows::Sparse(m) => m.shape(),
        }
    }

    /// The non-zero entries of `row[lo..hi]` as (offset, value) pairs.
    fn piece(&self, row: usize, lo: usize, hi: usize) -> Vec<(u32, f64)> {
        match self {
            Rows::Dense(m) => m.row(row)[lo..hi]
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x != 0.0)
                .map(|(off, &x)| (off as u32, x))
                .collect(),
            Rows::Sparse(m) => {
                let (cols, vals) = m.row(row);
                let start = cols.partition_point(|&c| (c as usize) < lo);
                let end = cols.partition_point(|&c| (c as usize) < hi);
                cols[start..end]
                    .iter()
                    .zip(&vals[start..end])
                    .map(|(&c, &x)| ((c as usize - lo) as u32, x))
                    .collect()
            }
        }
    }
}

/// A distributed square-matrix multiplication engine.
///
/// Implementations must (a) return the true product and (b) charge their
/// round cost to the clique's ledger under [`CostCategory::MatMul`].
pub trait MatMulEngine {
    /// Multiplies `a · b` on the clique, charging rounds.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the operands are not square `n × n`
    /// matrices matching the clique size.
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix;

    /// Representation-adaptive [`MatMulEngine::multiply`]: operands and
    /// result are [`PMatrix`], so sparse inputs multiply through the
    /// CSR kernels (and sparse products stay sparse until the fill-in
    /// tracker promotes them). The charged rounds and words are
    /// **identical** to the dense route — the ledger bills the paper's
    /// protocol, which is representation-agnostic — and so are the
    /// computed bits (the `cct-linalg` contract). The default densifies
    /// and delegates; the engines in this crate override it.
    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        let a_dense;
        let a_ref = match a.as_dense() {
            Some(m) => m,
            None => {
                a_dense = a.to_dense();
                &a_dense
            }
        };
        let b_dense;
        let b_ref = match b.as_dense() {
            Some(m) => m,
            None => {
                b_dense = b.to_dense();
                &b_dense
            }
        };
        PMatrix::Dense(self.multiply(clique, a_ref, b_ref))
    }

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;

    /// Rounds this engine charges for one `n × n` multiply, without
    /// performing one. Used to charge *analytic* costs for multiplies the
    /// simulation performs out-of-band (e.g. the `2n × 2n` absorbing-chain
    /// squarings of Corollary 2). The default runs a scratch multiply of
    /// identity matrices and reads the ledger, so measured and charged
    /// costs can never drift apart — but the answer is a pure function of
    /// the engine and `n`, so it is memoized per `(engine name, n)`
    /// process-wide: repeated ledger-cost queries (one per `sample()`
    /// call) stop paying an `O(n³)` multiply each. Engines whose charged
    /// cost depends on construction parameters (not just the name and
    /// `n`) must override this method, as [`FastOracleEngine`] does.
    fn rounds_for_multiply(&self, n: usize) -> u64 {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static MEMO: OnceLock<Mutex<HashMap<(&'static str, usize), u64>>> = OnceLock::new();
        let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(&rounds) = memo.lock().expect("memo poisoned").get(&(self.name(), n)) {
            return rounds;
        }
        let mut scratch = Clique::new(n);
        let id = Matrix::identity(n);
        let _ = self.multiply(&mut scratch, &id, &id);
        let rounds = scratch.ledger().total_rounds();
        memo.lock()
            .expect("memo poisoned")
            .insert((self.name(), n), rounds);
        rounds
    }
}

/// The classical `O(n^{1/3})`-round semiring algorithm with real data
/// movement.
///
/// Machines are arranged in a `c × c × c` cube, `c = ⌊n^{1/3}⌋`; machine
/// `(i, j, k)` receives block `A[i,k]` and block `B[k,j]` from the row
/// owners, multiplies them locally, and routes the partial `C[i,j]`
/// contribution back to the row owners of `C`, which accumulate.
#[derive(Debug, Clone)]
pub struct SemiringEngine {
    threads: usize,
}

impl SemiringEngine {
    /// Creates the engine; `threads` is the worker-pool width used to run
    /// the per-machine local steps concurrently (see [`ParallelClique`]).
    /// Output and ledger are identical at every thread count.
    pub fn new(threads: usize) -> Self {
        SemiringEngine {
            threads: threads.max(1),
        }
    }
}

/// One machine of the semiring algorithm, as a [`MachineProgram`]:
/// round 0 ships this row owner's operand pieces to the cube, round 1
/// multiplies the blocks this cube machine received and ships partial
/// rows back, round 2 (terminal) accumulates the partials of the owned
/// output row.
struct SemiringMachine<'m> {
    id: usize,
    n: usize,
    c: usize,
    s: usize,
    a: Rows<'m>,
    b: Rows<'m>,
    /// Row `id` of the product, filled by the terminal round.
    row: Vec<f64>,
}

impl SemiringMachine<'_> {
    fn blocks(&self, idx: usize) -> (usize, usize) {
        (idx * self.s, ((idx + 1) * self.s).min(self.n))
    }

    fn cube(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.c + j) * self.c + k
    }

    /// Round 0: row owner `id` ships its A-pieces to machines
    /// `(bi, *, k)` and its B-pieces to machines `(*, j, bk)`. Pieces
    /// travel as CSR row slices; the envelope's word count stays the
    /// analytic dense segment width `hi − lo` (see [`SemiringMsg`]).
    fn ship_operands(&self) -> Vec<Envelope<SemiringMsg>> {
        let (r, c, n) = (self.id, self.c, self.n);
        let bi = r / self.s;
        let mut outbox = Vec::new();
        for k in 0..c {
            let (lo, hi) = self.blocks(k);
            if lo >= n {
                continue;
            }
            let piece = self.a.piece(r, lo, hi);
            for j in 0..c {
                outbox.push(Envelope::new(
                    self.cube(bi, j, k),
                    hi - lo,
                    SemiringMsg::Operand(0, r, piece.clone()),
                ));
            }
        }
        let bk = r / self.s;
        for j in 0..c {
            let (lo, hi) = self.blocks(j);
            if lo >= n {
                continue;
            }
            let piece = self.b.piece(r, lo, hi);
            for i in 0..c {
                outbox.push(Envelope::new(
                    self.cube(i, j, bk),
                    hi - lo,
                    SemiringMsg::Operand(1, r, piece.clone()),
                ));
            }
        }
        outbox
    }

    /// Round 1: cube machine `(i, j, k)` reassembles its operand blocks,
    /// multiplies them, and ships each partial `C` row to its owner.
    fn multiply_blocks(&self, inbox: Vec<Envelope<SemiringMsg>>) -> Vec<Envelope<SemiringMsg>> {
        let (c, n) = (self.c, self.n);
        if self.id >= c * c * c {
            return Vec::new();
        }
        let (i, j, k) = (self.id / (c * c), (self.id / c) % c, self.id % c);
        let (ilo, ihi) = self.blocks(i);
        let (jlo, jhi) = self.blocks(j);
        let (klo, khi) = self.blocks(k);
        if ilo >= n || jlo >= n || klo >= n {
            return Vec::new();
        }
        let mut a_block = vec![vec![0.0f64; khi - klo]; ihi - ilo];
        let mut b_block = vec![vec![0.0f64; jhi - jlo]; khi - klo];
        for env in &inbox {
            if let SemiringMsg::Operand(which, r, ref piece) = env.payload {
                // Reassemble the dense block row from the sparse piece
                // (absent offsets stay zero — the same values the dense
                // shipment carried).
                if which == 0 {
                    if (ilo..ihi).contains(&r) {
                        for &(off, x) in piece {
                            a_block[r - ilo][off as usize] = x;
                        }
                    }
                } else if (klo..khi).contains(&r) {
                    for &(off, x) in piece {
                        b_block[r - klo][off as usize] = x;
                    }
                }
            }
        }
        let mut outbox = Vec::with_capacity(ihi - ilo);
        for (il, a_row) in a_block.iter().enumerate() {
            let mut acc = vec![0.0f64; jhi - jlo];
            for (kl, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (jl, o) in acc.iter_mut().enumerate() {
                    *o += av * b_block[kl][jl];
                }
            }
            outbox.push(Envelope::new(
                ilo + il,
                acc.len(),
                SemiringMsg::Partial(ilo + il, jlo, acc),
            ));
        }
        outbox
    }
}

impl MachineProgram for SemiringMachine<'_> {
    type Msg = SemiringMsg;

    fn round(
        &mut self,
        round: usize,
        inbox: Vec<Envelope<SemiringMsg>>,
    ) -> Vec<Envelope<SemiringMsg>> {
        match round {
            0 => self.ship_operands(),
            1 => self.multiply_blocks(inbox),
            _ => {
                // Terminal round: accumulate the owned output row. The
                // inbox order is route's deterministic (sender, send
                // order), matching the sequential accumulation exactly.
                for env in inbox {
                    if let SemiringMsg::Partial(r, jlo, piece) = env.payload {
                        debug_assert_eq!(r, self.id);
                        for (off, v) in piece.into_iter().enumerate() {
                            self.row[jlo + off] += v;
                        }
                    }
                }
                Vec::new()
            }
        }
    }
}

impl Default for SemiringEngine {
    fn default() -> Self {
        SemiringEngine::new(1)
    }
}

impl SemiringEngine {
    /// The shared three-round protocol over borrowed operands in either
    /// representation.
    fn run(&self, clique: &mut Clique, a: Rows<'_>, b: Rows<'_>) -> Matrix {
        let n = clique.n();
        assert_eq!(a.shape(), (n, n), "operand A must be n × n");
        assert_eq!(b.shape(), (n, n), "operand B must be n × n");
        let c = ((n as f64).cbrt().floor() as usize).max(1);
        let s = n.div_ceil(c); // block side (last blocks may be smaller)

        // Machine r owns row r of A, B, and C; machine (i, j, k) of the
        // c × c × c cube multiplies block A[i,k] · B[k,j]. The three
        // rounds (ship operands, multiply blocks, accumulate partials)
        // run through the parallel round engine: local steps concurrent,
        // exchange and ledger charges single-threaded.
        let mut machines: Vec<SemiringMachine> = (0..n)
            .map(|id| SemiringMachine {
                id,
                n,
                c,
                s,
                a,
                b,
                row: vec![0.0f64; n],
            })
            .collect();
        let mut driver = ParallelClique::new(clique, self.threads);
        let inboxes = driver.step(CostCategory::MatMul, &mut machines, 0, Vec::new());
        let inboxes = driver.step(CostCategory::MatMul, &mut machines, 1, inboxes);
        driver.finish(&mut machines, 2, inboxes);

        let mut out = Matrix::zeros(n, n);
        for (r, machine) in machines.into_iter().enumerate() {
            out.row_mut(r).copy_from_slice(&machine.row);
        }
        out
    }
}

impl MatMulEngine for SemiringEngine {
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix {
        self.run(clique, Rows::Dense(a), Rows::Dense(b))
    }

    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        fn rows(m: &PMatrix) -> Rows<'_> {
            match m {
                PMatrix::Dense(d) => Rows::Dense(d),
                PMatrix::Sparse(s) => Rows::Sparse(s),
            }
        }
        let out = self.run(clique, rows(a), rows(b));
        if a.is_sparse() && b.is_sparse() {
            // A sparse product may still be sparse; re-compress when
            // that is cheaper (values unchanged bit for bit).
            PMatrix::Dense(out).compacted()
        } else {
            PMatrix::Dense(out)
        }
    }

    fn name(&self) -> &'static str {
        "semiring-n^(1/3)"
    }
}

/// The fast algebraic algorithm \[17, 72\] as a cost oracle: local compute,
/// published round cost `⌈n^α⌉ · words_per_entry` (entries of `O(log 1/δ)`
/// bits occupy several machine words, Lemma 7).
#[derive(Debug, Clone)]
pub struct FastOracleEngine {
    alpha: f64,
    words_per_entry: usize,
    threads: usize,
}

/// The currently best matrix-multiplication exponent in the Congested
/// Clique: `α = 1 − 2/ω ≈ 0.157` \[72\].
pub const ALPHA: f64 = 0.157;

impl FastOracleEngine {
    /// Creates the oracle with exponent `alpha` (use [`ALPHA`] for the
    /// paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `\[0, 1\]` or `words_per_entry == 0`.
    pub fn new(alpha: f64, words_per_entry: usize, threads: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(words_per_entry >= 1, "entries occupy at least one word");
        FastOracleEngine {
            alpha,
            words_per_entry,
            threads: threads.max(1),
        }
    }

    /// Round cost charged per multiplication on an `n`-machine clique.
    pub fn rounds_per_multiply(&self, n: usize) -> u64 {
        ((n as f64).powf(self.alpha).ceil() as u64).max(1) * self.words_per_entry as u64
    }
}

impl Default for FastOracleEngine {
    fn default() -> Self {
        FastOracleEngine::new(ALPHA, 1, 1)
    }
}

impl MatMulEngine for FastOracleEngine {
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix {
        let n = clique.n();
        assert_eq!(a.shape(), (n, n), "operand A must be n × n");
        assert_eq!(b.shape(), (n, n), "operand B must be n × n");
        let rounds = self.rounds_per_multiply(n);
        clique.ledger_mut().charge(CostCategory::MatMul, rounds);
        // The algebraic algorithm moves Θ(n²) words in aggregate; record
        // the per-matrix volume for the bandwidth reports.
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n * self.words_per_entry) as u64);
        // Local compute, row-sharded: machine i owns output row i, so the
        // row-parallel kernel is exactly the per-machine concurrent step
        // (bit-identical to sequential at any thread count).
        a.matmul_parallel(b, self.threads)
    }

    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        let n = clique.n();
        assert_eq!(a.shape(), (n, n), "operand A must be n × n");
        assert_eq!(b.shape(), (n, n), "operand B must be n × n");
        // Identical analytic charges to the dense route: the oracle
        // bills the published algorithm, not this simulator's storage.
        let rounds = self.rounds_per_multiply(n);
        clique.ledger_mut().charge(CostCategory::MatMul, rounds);
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n * self.words_per_entry) as u64);
        a.matmul(b, self.threads)
    }

    fn name(&self) -> &'static str {
        "fast-oracle-n^alpha"
    }

    fn rounds_for_multiply(&self, n: usize) -> u64 {
        self.rounds_per_multiply(n)
    }
}

/// Unit-cost engine: local compute, one round per multiply. For tests that
/// exercise protocol logic without caring about matmul cost.
#[derive(Debug, Clone, Default)]
pub struct UnitCostEngine {
    /// Worker-pool width for the row-sharded local compute (machine i
    /// owns output row i); results are thread-count invariant.
    pub threads: usize,
}

impl MatMulEngine for UnitCostEngine {
    fn multiply(&self, clique: &mut Clique, a: &Matrix, b: &Matrix) -> Matrix {
        clique.ledger_mut().charge(CostCategory::MatMul, 1);
        a.matmul_parallel(b, self.threads.max(1))
    }

    fn multiply_p(&self, clique: &mut Clique, a: &PMatrix, b: &PMatrix) -> PMatrix {
        clique.ledger_mut().charge(CostCategory::MatMul, 1);
        a.matmul(b, self.threads.max(1))
    }

    fn name(&self) -> &'static str {
        "unit-cost"
    }

    fn rounds_for_multiply(&self, _n: usize) -> u64 {
        1
    }
}

/// Algorithm 1 (Initialization Step), steps 2–3: computes
/// `M, M², M⁴, …, M^{2^{levels−1}}` on the clique, optionally truncating
/// entries between squarings (Lemma 7), and charges the column-
/// redistribution cost (each machine sends entry `(i, j)` of every power
/// to machine `j` — `n` entries per machine per power, i.e.
/// `words_per_entry` rounds by Lenzen routing).
///
/// Returns the power table: index `k` holds `M^{2^k}`.
///
/// # Panics
///
/// Panics if `m` is not `n × n` for the clique's `n`, or `levels == 0`.
pub fn distributed_powers(
    clique: &mut Clique,
    engine: &dyn MatMulEngine,
    m: &Matrix,
    levels: usize,
    fp: Option<FixedPoint>,
) -> Vec<Matrix> {
    distributed_powers_impl(clique, m, levels, fp, |clique, last| {
        engine.multiply(clique, last, last)
    })
}

/// [`distributed_powers`] on the representation-adaptive backend: the
/// table holds [`PMatrix`] levels, so the early powers of a sparse
/// transition matrix stay CSR (this is where the sparse backend's
/// memory win lands — squaring promotes later levels to dense through
/// the fill-in tracker). Round and word charges are identical to the
/// dense route, and so are the computed bits.
///
/// # Panics
///
/// As [`distributed_powers`].
pub fn distributed_powers_p(
    clique: &mut Clique,
    engine: &dyn MatMulEngine,
    m: &PMatrix,
    levels: usize,
    fp: Option<FixedPoint>,
) -> Vec<PMatrix> {
    distributed_powers_impl(clique, m, levels, fp, |clique, last| {
        engine.multiply_p(clique, last, last)
    })
}

/// The shared Algorithm-1 skeleton behind both power-table builders.
trait PowerLevel: Clone {
    fn shape(&self) -> (usize, usize);
    fn truncate(&mut self, fp: FixedPoint);
}

impl PowerLevel for Matrix {
    fn shape(&self) -> (usize, usize) {
        Matrix::shape(self)
    }
    fn truncate(&mut self, fp: FixedPoint) {
        fp.truncate_matrix_inplace(self);
    }
}

impl PowerLevel for PMatrix {
    fn shape(&self) -> (usize, usize) {
        PMatrix::shape(self)
    }
    fn truncate(&mut self, fp: FixedPoint) {
        self.truncate_inplace(fp);
    }
}

fn distributed_powers_impl<M: PowerLevel>(
    clique: &mut Clique,
    m: &M,
    levels: usize,
    fp: Option<FixedPoint>,
    mut square: impl FnMut(&mut Clique, &M) -> M,
) -> Vec<M> {
    let n = clique.n();
    assert_eq!(m.shape(), (n, n), "matrix must match clique size");
    assert!(levels > 0, "need at least one level");
    let wpe = fp.map_or(1, |fp| fp.words_per_entry(n)) as u64;
    let mut table = Vec::with_capacity(levels);
    let mut first = m.clone();
    if let Some(fp) = fp {
        first.truncate(fp);
    }
    table.push(first);
    for _ in 1..levels {
        let last = table.last().expect("non-empty");
        // Truncate the engine's product in place: no clone-per-level.
        let mut sq = square(clique, last);
        if let Some(fp) = fp {
            sq.truncate(fp);
        }
        table.push(sq);
    }
    // Step 3 of Algorithm 1: column redistribution of every power.
    for _ in 0..levels {
        clique.ledger_mut().charge(CostCategory::MatMul, wpe);
        clique
            .ledger_mut()
            .add_words(CostCategory::MatMul, (n * n) as u64 * wpe);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_linalg::{is_row_stochastic, normalize_rows, powers_of_two};
    use rand::{Rng, SeedableRng};

    fn random_stochastic(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>());
        normalize_rows(&mut m);
        m
    }

    #[test]
    fn semiring_matches_local_product() {
        for n in [1usize, 2, 5, 8, 27, 30] {
            let a = random_stochastic(n, 1);
            let b = random_stochastic(n, 2);
            let mut clique = Clique::new(n);
            let engine = SemiringEngine::new(1);
            let dist = engine.multiply(&mut clique, &a, &b);
            let local = a.matmul(&b);
            assert!(
                dist.max_abs_diff(&local) < 1e-12,
                "n = {n}: diff {}",
                dist.max_abs_diff(&local)
            );
        }
    }

    #[test]
    fn semiring_cost_scales_sublinearly() {
        // Rounds should grow roughly like n^{1/3} · const, far below n.
        let mut rounds = Vec::new();
        for n in [27usize, 64, 125] {
            let a = random_stochastic(n, 3);
            let mut clique = Clique::new(n);
            SemiringEngine::new(1).multiply(&mut clique, &a, &a);
            rounds.push((n, clique.ledger().total_rounds()));
        }
        for &(n, r) in &rounds {
            assert!(r as usize <= 8 * n, "n = {n}: {r} rounds is too many");
            assert!(r >= 1);
        }
        // Cost grows slower than linear: r(125)/r(27) < 125/27.
        let (n0, r0) = rounds[0];
        let (n2, r2) = rounds[2];
        assert!(
            (r2 as f64) / (r0 as f64) < (n2 as f64) / (n0 as f64),
            "semiring cost not sublinear: {rounds:?}"
        );
    }

    #[test]
    fn semiring_is_bit_identical_at_every_thread_count() {
        for n in [5usize, 27, 30] {
            let a = random_stochastic(n, 20);
            let b = random_stochastic(n, 21);
            let mut base = Clique::new(n);
            let reference = SemiringEngine::new(1).multiply(&mut base, &a, &b);
            for threads in [2usize, 4, 8] {
                let mut clique = Clique::new(n);
                let prod = SemiringEngine::new(threads).multiply(&mut clique, &a, &b);
                assert_eq!(prod, reference, "n = {n}, threads = {threads}");
                assert_eq!(
                    clique.ledger(),
                    base.ledger(),
                    "n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn fast_oracle_matches_and_charges_formula() {
        let n = 32;
        let a = random_stochastic(n, 4);
        let b = random_stochastic(n, 5);
        let mut clique = Clique::new(n);
        let engine = FastOracleEngine::new(ALPHA, 2, 1);
        let prod = engine.multiply(&mut clique, &a, &b);
        assert!(prod.max_abs_diff(&a.matmul(&b)) < 1e-12);
        let expect = ((n as f64).powf(ALPHA).ceil() as u64) * 2;
        assert_eq!(clique.ledger().rounds(CostCategory::MatMul), expect);
    }

    #[test]
    fn engines_agree_with_each_other() {
        let n = 27;
        let a = random_stochastic(n, 6);
        let b = random_stochastic(n, 7);
        let mut c1 = Clique::new(n);
        let mut c2 = Clique::new(n);
        let r1 = SemiringEngine::new(1).multiply(&mut c1, &a, &b);
        let r2 = FastOracleEngine::default().multiply(&mut c2, &a, &b);
        assert!(r1.max_abs_diff(&r2) < 1e-12);
    }

    #[test]
    fn distributed_powers_match_sequential() {
        let n = 16;
        let p = random_stochastic(n, 8);
        let mut clique = Clique::new(n);
        let table = distributed_powers(&mut clique, &UnitCostEngine::default(), &p, 5, None);
        let expect = powers_of_two(&p, 5, 1);
        for (a, b) in table.iter().zip(&expect) {
            assert!(a.max_abs_diff(b) < 1e-12);
        }
        for m in &table {
            assert!(is_row_stochastic(m, 1e-9));
        }
    }

    #[test]
    fn distributed_powers_with_rounding_are_substochastic() {
        let n = 8;
        let p = random_stochastic(n, 9);
        let fp = FixedPoint::new(24);
        let mut clique = Clique::new(n);
        let table = distributed_powers(&mut clique, &UnitCostEngine::default(), &p, 4, Some(fp));
        for m in &table {
            assert!(cct_linalg::is_row_substochastic(m, 1e-12));
        }
        // Squaring count: 3 multiplies + 4 column redistributions.
        let wpe = fp.words_per_entry(n) as u64;
        assert_eq!(clique.ledger().rounds(CostCategory::MatMul), 3 + 4 * wpe);
    }

    #[test]
    fn multiply_p_matches_multiply_bits_and_ledger_in_every_representation() {
        // Banded operand: genuinely sparse, so the CSR kernels run.
        let n = 27;
        let dense_op = Matrix::from_fn(n, n, |i, j| {
            if i.abs_diff(j) <= 2 {
                ((i * 31 + j * 17) % 97) as f64 / 97.0 + 1e-9
            } else {
                0.0
            }
        });
        let engines: Vec<Box<dyn MatMulEngine>> = vec![
            Box::new(UnitCostEngine { threads: 1 }),
            Box::new(FastOracleEngine::new(ALPHA, 2, 1)),
            Box::new(SemiringEngine::new(1)),
        ];
        for engine in &engines {
            let mut reference_clique = Clique::new(n);
            let reference = engine.multiply(&mut reference_clique, &dense_op, &dense_op);
            let sparse_op = PMatrix::Sparse(CsrMatrix::from_dense(&dense_op));
            let dense_p = PMatrix::Dense(dense_op.clone());
            for (label, a, b) in [
                ("d*d", &dense_p, &dense_p),
                ("s*s", &sparse_op, &sparse_op),
                ("s*d", &sparse_op, &dense_p),
                ("d*s", &dense_p, &sparse_op),
            ] {
                let mut clique = Clique::new(n);
                let prod = engine.multiply_p(&mut clique, a, b);
                assert_eq!(
                    prod.to_dense(),
                    reference,
                    "{}: {label} bits diverged",
                    engine.name()
                );
                assert_eq!(
                    clique.ledger(),
                    reference_clique.ledger(),
                    "{}: {label} ledger diverged",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn distributed_powers_p_matches_dense_table_and_ledger() {
        let n = 16;
        let p = random_stochastic(n, 8);
        let mut dense_clique = Clique::new(n);
        let dense_table =
            distributed_powers(&mut dense_clique, &UnitCostEngine::default(), &p, 5, None);
        for (repr, pm) in [
            (cct_linalg::Repr::Dense, PMatrix::Dense(p.clone())),
            (
                cct_linalg::Repr::Sparse,
                PMatrix::Sparse(CsrMatrix::from_dense(&p)),
            ),
        ] {
            let mut clique = Clique::new(n);
            let table = distributed_powers_p(&mut clique, &UnitCostEngine::default(), &pm, 5, None);
            assert_eq!(table.len(), dense_table.len());
            for (a, b) in table.iter().zip(&dense_table) {
                assert_eq!(&a.to_dense(), b, "{repr:?}");
            }
            assert_eq!(clique.ledger(), dense_clique.ledger(), "{repr:?}");
        }
        // A genuinely sparse chain keeps its early levels sparse: powers
        // of a cycle's transition matrix stay banded.
        let cyc = Matrix::from_fn(32, 32, |i, j| {
            if (i + 1) % 32 == j || (j + 1) % 32 == i {
                0.5
            } else {
                0.0
            }
        });
        let mut clique = Clique::new(32);
        let table = distributed_powers_p(
            &mut clique,
            &UnitCostEngine::default(),
            &PMatrix::Sparse(CsrMatrix::from_dense(&cyc)),
            4,
            None,
        );
        assert!(table[0].is_sparse() && table[1].is_sparse());
    }

    #[test]
    fn default_rounds_for_multiply_is_memoized_and_correct() {
        // The semiring engine uses the trait default: the memoized answer
        // must equal a fresh measured multiply, across repeated queries
        // and engine instances, and the second query must not run the
        // scratch multiply (observable as a large speedup; here we settle
        // for value equality plus agreement across instances).
        let n = 30;
        let first = SemiringEngine::new(1).rounds_for_multiply(n);
        let mut clique = Clique::new(n);
        let a = random_stochastic(n, 99);
        SemiringEngine::new(1).multiply(&mut clique, &a, &a);
        assert_eq!(first, clique.ledger().total_rounds());
        assert_eq!(SemiringEngine::new(4).rounds_for_multiply(n), first);
        assert_eq!(SemiringEngine::new(1).rounds_for_multiply(n), first);
    }

    #[test]
    fn oracle_rounds_per_multiply_monotone_in_n() {
        let e = FastOracleEngine::default();
        assert!(e.rounds_per_multiply(64) <= e.rounds_per_multiply(256));
        assert!(e.rounds_per_multiply(2) >= 1);
    }
}
