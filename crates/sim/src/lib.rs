//! # cct-sim
//!
//! A simulator for the **Congested Clique** model of distributed
//! computing (§1.6 of Pemmaraju–Roy–Sobel, PODC 2025).
//!
//! The model: `n` machines, one per vertex of the input graph; synchronous
//! rounds; each round every machine may exchange `O(log n)`-bit messages
//! with every other machine, and by Lenzen's routing theorem \[56\] a
//! machine can send and receive `O(n)` words per round regardless of the
//! destination pattern.
//!
//! The simulator runs all machines in one process. Machine-local state
//! lives in the protocol code; *all* cross-machine data movement goes
//! through [`Clique::route`] (or wrappers built on it), which both
//! delivers the payloads and charges the measured round cost — the
//! quantity every experiment reports — to a categorized [`RoundLedger`].
//!
//! Distributed matrix multiplication, the dominant per-phase cost of the
//! paper's algorithm, is provided by pluggable [`MatMulEngine`]s: a real
//! `O(n^{1/3})`-round [`SemiringEngine`] and the `O(n^α)` cost-model
//! [`FastOracleEngine`] (see DESIGN.md on this substitution).
//!
//! Local computation can run *concurrently* across machines — matching
//! the model, where rounds are synchronous but machines compute in
//! parallel — via the [`MachineProgram`] / [`ParallelClique`] round
//! engine: per-machine steps are sharded over a scoped worker pool, and
//! the exchange (plus every ledger charge) stays single-threaded, so
//! round costs and outputs are identical at any thread count.
//!
//! # Examples
//!
//! ```
//! use cct_sim::{Clique, CostCategory, Envelope};
//!
//! let mut clique = Clique::new(8);
//! // All-to-one: everyone reports a word to the leader.
//! let batches: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64]).collect();
//! let received = clique.gather(CostCategory::Gather, clique.leader(), batches, 1);
//! assert_eq!(received.len(), 8);
//! assert_eq!(clique.ledger().total_rounds(), 1); // 8 words ≤ n per round
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
mod ledger;
mod matmul;
mod mst;
mod parallel;

pub use clique::{Clique, Envelope};
pub use ledger::{CostCategory, RoundLedger};
pub use matmul::{
    distributed_powers, distributed_powers_deferred, distributed_powers_p, DeferredPowers,
    FastOracleEngine, MatMulEngine, SemiringEngine, UnitCostEngine, ALPHA,
};
pub use mst::{boruvka_mst, MstError, MstMsg, MstOutcome, MstProgram};
pub use parallel::{machine_seed, par_map, MachineProgram, ParallelClique, Workers};
