//! The parallel round engine: concurrent per-machine local computation
//! with a single-threaded exchange barrier.
//!
//! The Congested Clique model (§1.6) has all `n` machines compute
//! *concurrently* within a round; only the message exchange synchronizes
//! them. The sequential simulator in [`Clique`] preserves the model's
//! round counts but serializes the local computation, so wall-clock time
//! scales with `n ×` per-machine work instead of `max` per-machine work.
//!
//! This module restores the model's concurrency without touching its
//! accounting:
//!
//! * [`MachineProgram`] — a machine's state plus its per-round step
//!   `inbox → outbox`.
//! * [`ParallelClique`] — a driver that shards the machines of a
//!   [`Clique`] across a `std::thread::scope` worker pool
//!   (`min(workers, n)` shards), runs every machine's local step
//!   concurrently, and then performs the exchange **single-threaded**
//!   through [`Clique::route`] — so every [`crate::RoundLedger`] charge
//!   is byte-for-byte what the sequential simulator produces.
//! * [`Workers`] — the worker-pool policy (`CCT_WORKERS` overrides
//!   [`Workers::Auto`]).
//! * [`machine_seed`] — the determinism contract for randomized
//!   programs: per-machine RNG streams are derived as
//!   `hash(master_seed, machine_id)`, never dealt out of a shared
//!   stream, so results are identical at every thread count.
//!
//! # Determinism contract
//!
//! For a fixed master seed, a program driven by [`ParallelClique`]
//! produces the same messages, the same ledger, and the same final
//! machine states regardless of the worker count: shard boundaries only
//! decide *which thread* runs a machine, never *what* the machine
//! computes, and outboxes are reassembled in machine order before the
//! exchange.

use crate::{Clique, CostCategory, Envelope};

/// Worker-pool policy for the parallel round engine.
///
/// # Examples
///
/// ```
/// use cct_sim::Workers;
///
/// assert_eq!(Workers::Sequential.resolve(64), 1);
/// assert_eq!(Workers::Fixed(4).resolve(64), 4);
/// // Never more shards than machines.
/// assert_eq!(Workers::Fixed(16).resolve(3), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workers {
    /// One shard: every machine's local step runs on the caller's thread.
    #[default]
    Sequential,
    /// `CCT_WORKERS` if set, else `std::thread::available_parallelism()`.
    Auto,
    /// Exactly this many workers (floored at 1).
    Fixed(usize),
}

impl Workers {
    /// Resolves the policy to a concrete worker count for an `n`-machine
    /// clique. The result is capped at `n`: extra shards would be empty.
    pub fn resolve(self, n: usize) -> usize {
        let raw = match self {
            Workers::Sequential => 1,
            Workers::Fixed(k) => k.max(1),
            Workers::Auto => std::env::var("CCT_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&k| k >= 1)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get())),
        };
        raw.min(n.max(1)).max(1)
    }
}

/// Derives machine `machine`'s RNG seed from a master seed.
///
/// This is the determinism contract for every randomized parallel
/// program in the workspace: instead of dealing draws out of one shared
/// stream (whose consumption order would depend on scheduling), each
/// machine seeds its own generator with `machine_seed(master, id)`. The
/// mix is SplitMix64's finalizer over the pair, so nearby ids get
/// decorrelated streams.
///
/// # Examples
///
/// ```
/// use cct_sim::machine_seed;
///
/// // Deterministic, and distinct across machines and masters.
/// assert_eq!(machine_seed(7, 3), machine_seed(7, 3));
/// assert_ne!(machine_seed(7, 3), machine_seed(7, 4));
/// assert_ne!(machine_seed(7, 3), machine_seed(8, 3));
/// ```
pub fn machine_seed(master: u64, machine: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(machine.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A per-machine program: local state plus one synchronous-round step.
///
/// One value of the implementing type exists per machine; the driver
/// owns the slice and hands each machine its inbox every round. The
/// step must be a pure function of the machine's state and inbox (plus
/// any shared read-only data captured at construction) — that is what
/// makes the sharding thread-count-invariant.
///
/// # Examples
///
/// A one-round "token passing" program where machine `i` forwards a
/// token to machine `(i + 1) % n`:
///
/// ```
/// use cct_sim::{CostCategory, Clique, Envelope, MachineProgram, ParallelClique};
///
/// struct PassRight { id: usize, n: usize, received: Option<u64> }
///
/// impl MachineProgram for PassRight {
///     type Msg = u64;
///     fn round(&mut self, round: usize, inbox: Vec<Envelope<u64>>) -> Vec<Envelope<u64>> {
///         match round {
///             0 => vec![Envelope::new((self.id + 1) % self.n, 1, self.id as u64)],
///             _ => {
///                 self.received = inbox.into_iter().next().map(|e| e.payload);
///                 Vec::new()
///             }
///         }
///     }
/// }
///
/// let mut clique = Clique::new(4);
/// let mut machines: Vec<PassRight> =
///     (0..4).map(|id| PassRight { id, n: 4, received: None }).collect();
/// let mut driver = ParallelClique::new(&mut clique, 2);
/// let inboxes = driver.step(CostCategory::Routing, &mut machines, 0, Vec::new());
/// for (i, (m, inbox)) in machines.iter_mut().zip(inboxes).enumerate() {
///     m.round(1, inbox);
///     assert_eq!(m.received, Some(((i + 3) % 4) as u64));
/// }
/// assert_eq!(clique.ledger().total_rounds(), 1);
/// ```
pub trait MachineProgram: Send {
    /// The message type this program exchanges.
    type Msg: Send;

    /// One local step of this machine: consume the round's inbox,
    /// produce the round's outbox. `round` counts the driver-run rounds
    /// from 0.
    fn round(&mut self, round: usize, inbox: Vec<Envelope<Self::Msg>>) -> Vec<Envelope<Self::Msg>>;
}

/// The parallel round driver: concurrent local steps, sequential
/// exchange/charge barrier.
///
/// Borrows a [`Clique`] so any code holding `&mut Clique` (engines,
/// phase orchestration) can run a parallel section and hand the clique
/// back with its ledger charged exactly as the sequential simulator
/// would have.
///
/// # Examples
///
/// ```
/// use cct_sim::{Clique, CostCategory, Envelope, ParallelClique};
///
/// let mut clique = Clique::new(8);
/// let mut driver = ParallelClique::new(&mut clique, 4);
/// // All-to-leader, computed concurrently, charged sequentially.
/// let inboxes = driver.map_route(CostCategory::Gather, |machine| {
///     vec![Envelope::new(0, 1, machine as u64)]
/// });
/// assert_eq!(inboxes[0].len(), 8);
/// assert_eq!(clique.ledger().total_rounds(), 1);
/// ```
#[derive(Debug)]
pub struct ParallelClique<'c> {
    clique: &'c mut Clique,
    workers: usize,
}

impl<'c> ParallelClique<'c> {
    /// Wraps `clique` with a worker pool of `workers` threads (capped at
    /// the machine count; 0 and 1 both mean sequential).
    pub fn new(clique: &'c mut Clique, workers: usize) -> Self {
        let workers = resolve_shards(clique.n(), workers);
        ParallelClique { clique, workers }
    }

    /// Number of machines.
    pub fn n(&self) -> usize {
        self.clique.n()
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Read access to the wrapped clique.
    pub fn clique(&self) -> &Clique {
        self.clique
    }

    /// Mutable access to the wrapped clique (for sequential sections).
    pub fn clique_mut(&mut self) -> &mut Clique {
        self.clique
    }

    /// Runs one synchronous round of `programs`: every machine's
    /// [`MachineProgram::round`] runs concurrently on the worker pool,
    /// then the produced outboxes are exchanged — and the round cost
    /// charged — through the single-threaded [`Clique::route`] barrier.
    ///
    /// `inboxes` is the previous round's delivery (pass `Vec::new()` for
    /// the first round). Returns the new inboxes.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != n`, or if `inboxes` is non-empty but
    /// not of length `n`, or if a worker thread panics.
    pub fn step<P: MachineProgram>(
        &mut self,
        category: CostCategory,
        programs: &mut [P],
        round: usize,
        mut inboxes: Vec<Vec<Envelope<P::Msg>>>,
    ) -> Vec<Vec<Envelope<P::Msg>>> {
        let n = self.clique.n();
        assert_eq!(programs.len(), n, "need one program per machine");
        if inboxes.is_empty() {
            inboxes = (0..n).map(|_| Vec::new()).collect();
        }
        assert_eq!(inboxes.len(), n, "need one inbox per machine");
        let outboxes = shard_round(self.workers, programs, round, inboxes);
        self.clique.route(category, outboxes)
    }

    /// Runs `rounds` consecutive rounds of `programs` starting from
    /// empty inboxes, returning the final round's deliveries.
    pub fn run<P: MachineProgram>(
        &mut self,
        category: CostCategory,
        programs: &mut [P],
        rounds: usize,
    ) -> Vec<Vec<Envelope<P::Msg>>> {
        let mut inboxes = Vec::new();
        for round in 0..rounds {
            inboxes = self.step(category, programs, round, inboxes);
        }
        inboxes
    }

    /// Runs one final local round with **no** exchange: every machine
    /// consumes its inbox concurrently (accumulation/teardown rounds).
    ///
    /// # Panics
    ///
    /// Panics if `programs`/`inboxes` are not of length `n`, or if any
    /// machine produces envelopes — a terminal round must not need to
    /// communicate, and dropping its messages would also skip their
    /// ledger charge.
    pub fn finish<P: MachineProgram>(
        &mut self,
        programs: &mut [P],
        round: usize,
        inboxes: Vec<Vec<Envelope<P::Msg>>>,
    ) {
        let n = self.clique.n();
        assert_eq!(programs.len(), n, "need one program per machine");
        assert_eq!(inboxes.len(), n, "need one inbox per machine");
        let outboxes = shard_round(self.workers, programs, round, inboxes);
        // Unconditional: silently dropping messages here would lose data
        // AND skip the ledger charge, which equivalence tests could miss.
        assert!(
            outboxes.iter().all(|o| o.is_empty()),
            "terminal round tried to send"
        );
    }

    /// Stateless one-round helper: computes machine `i`'s outbox as
    /// `f(i)` concurrently, then exchanges through [`Clique::route`].
    pub fn map_route<T, F>(&mut self, category: CostCategory, f: F) -> Vec<Vec<Envelope<T>>>
    where
        T: Send,
        F: Fn(usize) -> Vec<Envelope<T>> + Sync,
    {
        let outboxes = par_map(self.clique.n(), self.workers, f);
        self.clique.route(category, outboxes)
    }
}

/// Applies `f` to `0..n` on `min(workers, n)` scoped threads, returning
/// the results in index order (identical to a sequential map for any
/// worker count). The workhorse behind every parallel local step.
///
/// # Examples
///
/// ```
/// use cct_sim::par_map;
///
/// let seq = par_map(10, 1, |i| i * i);
/// let par = par_map(10, 4, |i| i * i);
/// assert_eq!(seq, par);
/// ```
pub fn par_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let shards = resolve_shards(n, workers);
    if shards <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(shards);
    let f = &f;
    let mut out: Vec<T> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(n);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// The one shard-count policy: at least 1, never more shards than work
/// items (extra shards would be empty), and `n <= 1` degenerates to
/// sequential. Every parallel section resolves through here so the
/// policy can't drift between helpers.
fn resolve_shards(n: usize, workers: usize) -> usize {
    if n <= 1 {
        1
    } else {
        workers.clamp(1, n)
    }
}

/// Runs one round of every program concurrently, reassembling outboxes
/// in machine order so the subsequent exchange is shard-invariant.
///
/// Threads are spawned per call via `std::thread::scope` — the
/// no-`unsafe`, no-dependency choice. Spawn cost is ~tens of µs per
/// worker, measured at ≤4% of a full n = 512 sample (E17); a persistent
/// pool would shave that at the price of channel plumbing, and can be
/// swapped in here without touching the determinism contract.
fn shard_round<P: MachineProgram>(
    workers: usize,
    programs: &mut [P],
    round: usize,
    inboxes: Vec<Vec<Envelope<P::Msg>>>,
) -> Vec<Vec<Envelope<P::Msg>>> {
    let n = programs.len();
    let shards = resolve_shards(n, workers);
    if shards <= 1 {
        return programs
            .iter_mut()
            .zip(inboxes)
            .map(|(p, inbox)| p.round(round, inbox))
            .collect();
    }
    let chunk = n.div_ceil(shards);
    let mut out: Vec<Vec<Envelope<P::Msg>>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        let mut rest = programs;
        let mut inbox_iter = inboxes.into_iter();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let shard_inboxes: Vec<_> = inbox_iter.by_ref().take(take).collect();
            handles.push(scope.spawn(move || {
                head.iter_mut()
                    .zip(shard_inboxes)
                    .map(|(p, inbox)| p.round(round, inbox))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn workers_resolution() {
        assert_eq!(Workers::Sequential.resolve(100), 1);
        assert_eq!(Workers::Fixed(0).resolve(100), 1);
        assert_eq!(Workers::Fixed(7).resolve(100), 7);
        assert_eq!(Workers::Fixed(7).resolve(3), 3);
        assert!(Workers::Auto.resolve(1024) >= 1);
        assert_eq!(Workers::default(), Workers::Sequential);
    }

    #[test]
    fn machine_seed_streams_are_decorrelated() {
        // Distinct machines must get distinct streams, and the first
        // draws should not be obviously correlated with the id.
        let mut firsts = std::collections::HashSet::new();
        for id in 0..256u64 {
            let mut r = rand::rngs::StdRng::seed_from_u64(machine_seed(42, id));
            firsts.insert(r.gen::<u64>());
        }
        assert_eq!(firsts.len(), 256);
    }

    #[test]
    fn par_map_matches_sequential_at_every_worker_count() {
        for n in [0usize, 1, 2, 7, 64, 100] {
            let seq: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
            for workers in [1usize, 2, 3, 8, 200] {
                assert_eq!(par_map(n, workers, |i| i * 3 + 1), seq, "n={n} w={workers}");
            }
        }
    }

    /// Every machine floods every other machine with its id.
    struct Flood {
        id: usize,
        n: usize,
        heard: Vec<usize>,
    }

    impl MachineProgram for Flood {
        type Msg = usize;
        fn round(&mut self, round: usize, inbox: Vec<Envelope<usize>>) -> Vec<Envelope<usize>> {
            if round == 0 {
                (0..self.n)
                    .map(|to| Envelope::new(to, 1, self.id))
                    .collect()
            } else {
                self.heard = inbox.iter().map(|e| e.payload).collect();
                Vec::new()
            }
        }
    }

    #[test]
    fn step_is_thread_count_invariant() {
        let run = |workers: usize| -> (Vec<Vec<usize>>, crate::RoundLedger) {
            let n = 9;
            let mut clique = Clique::new(n);
            let mut machines: Vec<Flood> = (0..n)
                .map(|id| Flood {
                    id,
                    n,
                    heard: Vec::new(),
                })
                .collect();
            let mut driver = ParallelClique::new(&mut clique, workers);
            let inboxes = driver.run(CostCategory::Routing, &mut machines, 2);
            assert!(inboxes.iter().all(|i| i.is_empty()));
            (
                machines.into_iter().map(|m| m.heard).collect(),
                clique.ledger().clone(),
            )
        };
        let (heard1, ledger1) = run(1);
        for workers in [2usize, 4, 8] {
            let (heard, ledger) = run(workers);
            assert_eq!(heard, heard1, "workers = {workers}");
            assert_eq!(ledger, ledger1, "workers = {workers}");
        }
        // All-to-all with n words per machine each way: 1 round; plus the
        // empty second round.
        assert_eq!(ledger1.total_rounds(), 2);
    }

    #[test]
    fn map_route_charges_like_sequential_route() {
        let n = 6;
        let build = |machine: usize| vec![Envelope::new(0, 3, machine)];
        let mut seq = Clique::new(n);
        let out: Vec<Vec<Envelope<usize>>> = (0..n).map(build).collect();
        seq.route(CostCategory::Gather, out);

        let mut par = Clique::new(n);
        ParallelClique::new(&mut par, 4).map_route(CostCategory::Gather, build);
        assert_eq!(par.ledger(), seq.ledger());
        // 6 machines × 3 words at one receiver = 18 words → ⌈18/6⌉ = 3.
        assert_eq!(par.ledger().total_rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "one program per machine")]
    fn step_rejects_wrong_program_count() {
        let mut clique = Clique::new(4);
        let mut machines: Vec<Flood> = Vec::new();
        ParallelClique::new(&mut clique, 2).step(CostCategory::Misc, &mut machines, 0, Vec::new());
    }
}
