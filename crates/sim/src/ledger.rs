//! Round and bandwidth accounting for the simulated Congested Clique.
//!
//! The time complexity of a Congested Clique algorithm is its number of
//! synchronous rounds (§1.6). Every communication primitive in this crate
//! charges rounds to a [`RoundLedger`] under a labeled [`CostCategory`],
//! so experiments can report not just totals but *where* the rounds go
//! (matrix multiplication vs. binary search vs. routing, matching the
//! per-component analysis of Lemmas 5 and 11).

use std::collections::BTreeMap;
use std::fmt;

/// What a batch of rounds was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum CostCategory {
    /// Distributed matrix multiplication (Algorithm 1 / §2.4).
    MatMul,
    /// General point-to-point routing (Lenzen \[56\]).
    Routing,
    /// One-to-all broadcasts.
    Broadcast,
    /// Many-to-one gathers at the leader.
    Gather,
    /// The distributed binary search for the truncation point (Alg. 3).
    BinarySearch,
    /// Midpoint request/generation traffic (Alg. 2).
    Midpoints,
    /// Multiset collection + submatrix shipping for matching placement.
    Matching,
    /// First-visit edge sampling (Alg. 4).
    FirstVisit,
    /// Doubling-walk merging traffic (§3).
    Doubling,
    /// Anything else (setup, bookkeeping).
    Misc,
}

impl CostCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [CostCategory; 10] = [
        CostCategory::MatMul,
        CostCategory::Routing,
        CostCategory::Broadcast,
        CostCategory::Gather,
        CostCategory::BinarySearch,
        CostCategory::Midpoints,
        CostCategory::Matching,
        CostCategory::FirstVisit,
        CostCategory::Doubling,
        CostCategory::Misc,
    ];
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CostCategory::MatMul => "matmul",
            CostCategory::Routing => "routing",
            CostCategory::Broadcast => "broadcast",
            CostCategory::Gather => "gather",
            CostCategory::BinarySearch => "binary-search",
            CostCategory::Midpoints => "midpoints",
            CostCategory::Matching => "matching",
            CostCategory::FirstVisit => "first-visit",
            CostCategory::Doubling => "doubling",
            CostCategory::Misc => "misc",
        };
        f.write_str(name)
    }
}

/// Accumulated rounds and words, split by [`CostCategory`].
///
/// # Examples
///
/// ```
/// use cct_sim::{CostCategory, RoundLedger};
///
/// let mut ledger = RoundLedger::new();
/// ledger.charge(CostCategory::MatMul, 5);
/// ledger.charge(CostCategory::Routing, 2);
/// ledger.add_words(CostCategory::Routing, 1000);
/// assert_eq!(ledger.total_rounds(), 7);
/// assert_eq!(ledger.rounds(CostCategory::MatMul), 5);
/// assert_eq!(ledger.total_words(), 1000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundLedger {
    rounds: BTreeMap<CostCategory, u64>,
    words: BTreeMap<CostCategory, u64>,
    saturated: bool,
}

/// Saturating accumulate into a counter slot, reporting whether the
/// addition wrapped. Accumulation is overflow-checked everywhere so
/// adversarial `words` declarations can't silently wrap a release-build
/// ledger back toward zero — they pin at `u64::MAX` and raise the
/// [`RoundLedger::saturated`] flag instead.
fn accumulate(slot: &mut u64, amount: u64) -> bool {
    match slot.checked_add(amount) {
        Some(v) => {
            *slot = v;
            false
        }
        None => {
            *slot = u64::MAX;
            true
        }
    }
}

impl RoundLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Charges `rounds` rounds under `category`. Saturates at `u64::MAX`
    /// (setting [`RoundLedger::saturated`]) instead of wrapping.
    pub fn charge(&mut self, category: CostCategory, rounds: u64) {
        self.saturated |= accumulate(self.rounds.entry(category).or_insert(0), rounds);
    }

    /// Records `words` machine-words of traffic under `category` (does not
    /// by itself advance time). Saturates at `u64::MAX` (setting
    /// [`RoundLedger::saturated`]) instead of wrapping.
    pub fn add_words(&mut self, category: CostCategory, words: u64) {
        self.saturated |= accumulate(self.words.entry(category).or_insert(0), words);
    }

    /// `true` if any accumulation overflowed and pinned at `u64::MAX` —
    /// the totals are then lower bounds, not exact counts.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Rounds charged under one category.
    pub fn rounds(&self, category: CostCategory) -> u64 {
        self.rounds.get(&category).copied().unwrap_or(0)
    }

    /// Words recorded under one category.
    pub fn words(&self, category: CostCategory) -> u64 {
        self.words.get(&category).copied().unwrap_or(0)
    }

    /// `true` if `other` records the same totals: per-category rounds
    /// and words plus the saturation flag. Unlike `==`, this ignores
    /// *how* the totals are stored — a category charged an explicit
    /// zero and a category never touched compare equal, so ledgers
    /// rebuilt from serialized totals (e.g. a cache snapshot) compare
    /// correctly against originals.
    pub fn same_totals(&self, other: &RoundLedger) -> bool {
        self.saturated == other.saturated
            && CostCategory::ALL
                .iter()
                .all(|&c| self.rounds(c) == other.rounds(c) && self.words(c) == other.words(c))
    }

    /// Total rounds across all categories (saturating, like the
    /// per-category accumulation).
    pub fn total_rounds(&self) -> u64 {
        self.rounds.values().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Total words across all categories (saturating, like the
    /// per-category accumulation).
    pub fn total_words(&self) -> u64 {
        self.words.values().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Non-zero `(category, rounds)` entries, sorted by category.
    pub fn breakdown(&self) -> Vec<(CostCategory, u64)> {
        self.rounds
            .iter()
            .filter(|(_, &r)| r > 0)
            .map(|(&c, &r)| (c, r))
            .collect()
    }

    /// Adds every charge from `other` into `self` (propagating the
    /// saturation flag).
    pub fn merge(&mut self, other: &RoundLedger) {
        for (&c, &r) in &other.rounds {
            self.charge(c, r);
        }
        for (&c, &w) in &other.words {
            self.add_words(c, w);
        }
        self.saturated |= other.saturated;
    }

    /// Resets the ledger to empty and returns the previous contents.
    pub fn take(&mut self) -> RoundLedger {
        std::mem::take(self)
    }

    /// Estimated heap bytes this ledger occupies — the "cached ledger
    /// delta" term of a prepared sampler's resident-byte accounting.
    /// Each `BTreeMap` entry is costed at its key/value payload plus
    /// node overhead (a constant 32 bytes, deliberately coarse: the
    /// ledger is metadata, orders of magnitude below the matrices it
    /// rides along with).
    pub fn memory_bytes(&self) -> usize {
        (self.rounds.len() + self.words.len()) * (std::mem::size_of::<(CostCategory, u64)>() + 32)
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rounds (", self.total_rounds())?;
        for (i, (c, r)) in self.breakdown().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {r}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let l = RoundLedger::new();
        assert_eq!(l.total_rounds(), 0);
        assert_eq!(l.total_words(), 0);
        assert!(l.breakdown().is_empty());
        assert_eq!(l.rounds(CostCategory::MatMul), 0);
    }

    #[test]
    fn charges_accumulate_per_category() {
        let mut l = RoundLedger::new();
        l.charge(CostCategory::MatMul, 3);
        l.charge(CostCategory::MatMul, 4);
        l.charge(CostCategory::Gather, 1);
        assert_eq!(l.rounds(CostCategory::MatMul), 7);
        assert_eq!(l.total_rounds(), 8);
        assert_eq!(l.breakdown().len(), 2);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = RoundLedger::new();
        a.charge(CostCategory::Routing, 2);
        a.add_words(CostCategory::Routing, 10);
        let mut b = RoundLedger::new();
        b.charge(CostCategory::Routing, 3);
        b.charge(CostCategory::Broadcast, 1);
        b.add_words(CostCategory::Broadcast, 5);
        a.merge(&b);
        assert_eq!(a.rounds(CostCategory::Routing), 5);
        assert_eq!(a.rounds(CostCategory::Broadcast), 1);
        assert_eq!(a.total_words(), 15);
    }

    #[test]
    fn take_resets() {
        let mut l = RoundLedger::new();
        l.charge(CostCategory::Misc, 9);
        let taken = l.take();
        assert_eq!(taken.total_rounds(), 9);
        assert_eq!(l.total_rounds(), 0);
    }

    #[test]
    fn charge_saturates_instead_of_wrapping() {
        let mut l = RoundLedger::new();
        l.charge(CostCategory::Routing, u64::MAX - 1);
        assert!(!l.saturated());
        l.charge(CostCategory::Routing, 5);
        assert!(l.saturated());
        assert_eq!(l.rounds(CostCategory::Routing), u64::MAX);
        // Totals never wrap either, even with several pinned categories.
        l.charge(CostCategory::MatMul, u64::MAX);
        assert_eq!(l.total_rounds(), u64::MAX);
    }

    #[test]
    fn add_words_saturates_instead_of_wrapping() {
        let mut l = RoundLedger::new();
        l.add_words(CostCategory::Gather, u64::MAX);
        l.add_words(CostCategory::Gather, u64::MAX);
        assert!(l.saturated());
        assert_eq!(l.words(CostCategory::Gather), u64::MAX);
        assert_eq!(l.total_words(), u64::MAX);
    }

    #[test]
    fn merge_propagates_saturation() {
        let mut poisoned = RoundLedger::new();
        poisoned.charge(CostCategory::Misc, u64::MAX);
        poisoned.charge(CostCategory::Misc, 1);
        assert!(poisoned.saturated());
        let mut clean = RoundLedger::new();
        clean.charge(CostCategory::Misc, 2);
        clean.merge(&poisoned);
        assert!(clean.saturated());
        assert_eq!(clean.rounds(CostCategory::Misc), u64::MAX);
        // take() carries the flag out and resets it.
        let taken = clean.take();
        assert!(taken.saturated());
        assert!(!clean.saturated());
    }

    #[test]
    fn display_mentions_categories() {
        let mut l = RoundLedger::new();
        l.charge(CostCategory::BinarySearch, 2);
        let s = format!("{l}");
        assert!(s.contains("binary-search"));
        assert!(s.contains('2'));
    }
}
