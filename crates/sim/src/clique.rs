//! The Congested Clique network simulator (§1.6 of the paper).
//!
//! `n` machines, synchronous rounds, `O(log n)`-bit messages. Following
//! Lenzen's routing theorem \[56\] (and the paper's own convention), a
//! machine may send and receive a total of `O(n)` *words* per round
//! regardless of destinations, so the cost of any communication pattern is
//! `⌈L/n⌉` rounds where `L` is the maximum number of words any single
//! machine sends or receives.
//!
//! All data movement in the workspace goes through [`Clique::route`] (or
//! the convenience wrappers built on it), which actually delivers the
//! payloads *and* charges the measured cost to the [`RoundLedger`] — round
//! counts are derived from real traffic, never asserted.

use crate::{CostCategory, RoundLedger};

/// A message in flight: destination, source, and a payload with a declared
/// size in machine words (one word = `O(log n)` bits ≈ one vertex id or
/// one count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Destination machine.
    pub to: usize,
    /// Source machine (filled in by [`Clique::route`]).
    pub from: usize,
    /// Size in machine words, for bandwidth accounting.
    pub words: usize,
    /// The payload.
    pub payload: T,
}

impl<T> Envelope<T> {
    /// Creates an envelope addressed to `to`; `from` is stamped during
    /// routing.
    pub fn new(to: usize, words: usize, payload: T) -> Self {
        Envelope {
            to,
            from: usize::MAX,
            words,
            payload,
        }
    }
}

/// The simulated `n`-machine Congested Clique.
///
/// # Examples
///
/// ```
/// use cct_sim::{Clique, CostCategory, Envelope};
///
/// let mut clique = Clique::new(4);
/// // Machine 1 sends one word to machine 2.
/// let mut outboxes = vec![Vec::new(); 4];
/// outboxes[1].push(Envelope::new(2, 1, 42u64));
/// let inboxes = clique.route(CostCategory::Routing, outboxes);
/// assert_eq!(inboxes[2][0].payload, 42);
/// assert_eq!(inboxes[2][0].from, 1);
/// assert_eq!(clique.ledger().total_rounds(), 1);
/// ```
#[derive(Debug)]
pub struct Clique {
    n: usize,
    ledger: RoundLedger,
}

impl Clique {
    /// Creates a clique of `n` machines.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a clique needs at least one machine");
        Clique {
            n,
            ledger: RoundLedger::new(),
        }
    }

    /// Number of machines (= number of vertices of the input graph).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The leader machine (machine 0, hosting the walk under
    /// construction).
    pub fn leader(&self) -> usize {
        0
    }

    /// Read access to the accumulated ledger.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (for engines that charge analytic
    /// costs, e.g. the fast-matmul oracle).
    pub fn ledger_mut(&mut self) -> &mut RoundLedger {
        &mut self.ledger
    }

    /// Resets and returns the ledger (start of a measured region).
    pub fn take_ledger(&mut self) -> RoundLedger {
        self.ledger.take()
    }

    /// Delivers an arbitrary point-to-point message pattern and charges
    /// its measured cost.
    ///
    /// `outboxes[i]` holds machine `i`'s outgoing envelopes. Returns
    /// `inboxes[j]`: the envelopes delivered to machine `j`, with `from`
    /// stamped, in deterministic order (by sender, then send order).
    ///
    /// Cost: `max(1, ⌈max_send/n⌉, ⌈max_recv/n⌉)` rounds, where `max_send`
    /// (`max_recv`) is the largest total word count any machine sends
    /// (receives) — Lenzen routing \[56\].
    ///
    /// # Panics
    ///
    /// Panics if `outboxes.len() != n` or any destination is out of range.
    pub fn route<T>(
        &mut self,
        category: CostCategory,
        outboxes: Vec<Vec<Envelope<T>>>,
    ) -> Vec<Vec<Envelope<T>>> {
        assert_eq!(outboxes.len(), self.n, "need one outbox per machine");
        let mut send_load = vec![0u64; self.n];
        let mut recv_load = vec![0u64; self.n];
        let mut inboxes: Vec<Vec<Envelope<T>>> = (0..self.n).map(|_| Vec::new()).collect();
        let mut total_words = 0u64;
        for (src, outbox) in outboxes.into_iter().enumerate() {
            for mut env in outbox {
                assert!(env.to < self.n, "destination {} out of range", env.to);
                env.from = src;
                send_load[src] += env.words as u64;
                recv_load[env.to] += env.words as u64;
                total_words += env.words as u64;
                inboxes[env.to].push(env);
            }
        }
        let max_send = send_load.iter().copied().max().unwrap_or(0);
        let max_recv = recv_load.iter().copied().max().unwrap_or(0);
        let rounds = Self::rounds_for_load(self.n, max_send.max(max_recv));
        self.ledger.charge(category, rounds);
        self.ledger.add_words(category, total_words);
        inboxes
    }

    /// Rounds needed to move `load` words in/out of one machine:
    /// `max(1, ⌈load/n⌉)`.
    pub fn rounds_for_load(n: usize, load: u64) -> u64 {
        load.div_ceil(n as u64).max(1)
    }

    /// Broadcasts `items` from machine `from` to every machine.
    ///
    /// Implemented as the standard two-step pattern: `from` distributes
    /// the items round-robin across helper machines, then every helper
    /// re-sends its share to everyone. Both steps go through
    /// [`Clique::route`], so the cost is measured, not asserted. Returns
    /// the broadcast items (identical copy at every machine).
    ///
    /// # Panics
    ///
    /// Panics if `from >= n`.
    pub fn broadcast<T: Clone>(
        &mut self,
        category: CostCategory,
        from: usize,
        items: Vec<T>,
        words_per_item: usize,
    ) -> Vec<T> {
        assert!(from < self.n, "broadcast source out of range");
        if items.is_empty() {
            return items;
        }
        // Step 1: round-robin distribution to helpers.
        let mut outboxes: Vec<Vec<Envelope<(usize, T)>>> =
            (0..self.n).map(|_| Vec::new()).collect();
        for (idx, item) in items.iter().enumerate() {
            let helper = idx % self.n;
            outboxes[from].push(Envelope::new(helper, words_per_item, (idx, item.clone())));
        }
        let inboxes = self.route(category, outboxes);
        // Step 2: each helper sends its share to all machines.
        let mut outboxes: Vec<Vec<Envelope<(usize, T)>>> =
            (0..self.n).map(|_| Vec::new()).collect();
        for (helper, inbox) in inboxes.into_iter().enumerate() {
            for env in inbox {
                for dest in 0..self.n {
                    outboxes[helper].push(Envelope::new(dest, words_per_item, env.payload.clone()));
                }
            }
        }
        let inboxes = self.route(category, outboxes);
        // Every machine now holds all items; reconstruct in index order
        // from machine 0's copy.
        let mut received: Vec<(usize, T)> = inboxes
            .into_iter()
            .next()
            .expect("n >= 1")
            .into_iter()
            .map(|e| e.payload)
            .collect();
        received.sort_by_key(|(idx, _)| *idx);
        debug_assert_eq!(received.len(), items.len());
        received.into_iter().map(|(_, item)| item).collect()
    }

    /// Gathers one batch of items from every machine at `to`.
    ///
    /// `per_machine[i]` is machine `i`'s contribution. Returns
    /// `(source, item)` pairs in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if `to >= n` or `per_machine.len() != n`.
    pub fn gather<T>(
        &mut self,
        category: CostCategory,
        to: usize,
        per_machine: Vec<Vec<T>>,
        words_per_item: usize,
    ) -> Vec<(usize, T)> {
        assert!(to < self.n, "gather destination out of range");
        assert_eq!(per_machine.len(), self.n, "need one batch per machine");
        let outboxes: Vec<Vec<Envelope<T>>> = per_machine
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|item| Envelope::new(to, words_per_item, item))
                    .collect()
            })
            .collect();
        let mut inboxes = self.route(category, outboxes);
        inboxes
            .swap_remove(to)
            .into_iter()
            .map(|e| (e.from, e.payload))
            .collect()
    }

    /// One machine sends distinct payloads to many machines
    /// (`assignments[k] = (dest, payload)`), e.g. the leader distributing
    /// midpoint requests. Returns the inboxes.
    ///
    /// # Panics
    ///
    /// Panics if `from >= n` or any destination is out of range.
    pub fn scatter<T>(
        &mut self,
        category: CostCategory,
        from: usize,
        assignments: Vec<(usize, T)>,
        words_per_item: usize,
    ) -> Vec<Vec<Envelope<T>>> {
        assert!(from < self.n, "scatter source out of range");
        let mut outboxes: Vec<Vec<Envelope<T>>> = (0..self.n).map(|_| Vec::new()).collect();
        for (dest, payload) in assignments {
            outboxes[from].push(Envelope::new(dest, words_per_item, payload));
        }
        self.route(category, outboxes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_delivers_and_stamps_sources() {
        let mut c = Clique::new(3);
        let mut out: Vec<Vec<Envelope<&str>>> = vec![Vec::new(); 3];
        out[0].push(Envelope::new(2, 1, "a"));
        out[1].push(Envelope::new(2, 1, "b"));
        out[2].push(Envelope::new(0, 1, "c"));
        let inboxes = c.route(CostCategory::Routing, out);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[0][0].from, 2);
        assert_eq!(inboxes[2].len(), 2);
        assert_eq!(inboxes[2][0].payload, "a");
        assert_eq!(inboxes[2][1].payload, "b");
        assert_eq!(inboxes[1].len(), 0);
    }

    #[test]
    fn route_cost_is_ceil_max_load_over_n() {
        let n = 4;
        let mut c = Clique::new(n);
        // Machine 0 sends 9 words to machine 1: ceil(9/4) = 3 rounds.
        let mut out: Vec<Vec<Envelope<u8>>> = vec![Vec::new(); n];
        out[0].push(Envelope::new(1, 9, 0));
        c.route(CostCategory::Routing, out);
        assert_eq!(c.ledger().total_rounds(), 3);
        assert_eq!(c.ledger().total_words(), 9);
    }

    #[test]
    fn route_cost_counts_receive_side() {
        let n = 4;
        let mut c = Clique::new(n);
        // Every machine sends 2 words to machine 0: recv load 8 → 2 rounds.
        let out: Vec<Vec<Envelope<u8>>> = (0..n).map(|_| vec![Envelope::new(0, 2, 0)]).collect();
        c.route(CostCategory::Routing, out);
        assert_eq!(c.ledger().total_rounds(), 2);
    }

    #[test]
    fn empty_route_still_costs_a_round() {
        // A round happens even if nobody speaks (synchronous model).
        let mut c = Clique::new(2);
        let out: Vec<Vec<Envelope<u8>>> = vec![Vec::new(); 2];
        c.route(CostCategory::Misc, out);
        assert_eq!(c.ledger().total_rounds(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_rejects_bad_destination() {
        let mut c = Clique::new(2);
        let mut out: Vec<Vec<Envelope<u8>>> = vec![Vec::new(); 2];
        out[0].push(Envelope::new(5, 1, 0));
        c.route(CostCategory::Routing, out);
    }

    #[test]
    fn broadcast_reaches_everyone_in_order() {
        let mut c = Clique::new(5);
        let items: Vec<u32> = (0..12).collect();
        let got = c.broadcast(CostCategory::Broadcast, 3, items.clone(), 1);
        assert_eq!(got, items);
        // Small broadcast: both steps cost ~1 round each... sender sends 12
        // words (1 round at n=5 is ceil(12/5)=3); helpers send 3*5=15 recv
        // 12 each → a handful of rounds, definitely < 10.
        assert!(c.ledger().total_rounds() <= 10);
    }

    #[test]
    fn broadcast_cost_scales_with_items() {
        let n = 8;
        let mut small = Clique::new(n);
        small.broadcast(CostCategory::Broadcast, 0, vec![0u8; n], 1);
        let small_rounds = small.ledger().total_rounds();
        let mut big = Clique::new(n);
        big.broadcast(CostCategory::Broadcast, 0, vec![0u8; n * 20], 1);
        let big_rounds = big.ledger().total_rounds();
        assert!(big_rounds > small_rounds);
        // n*20 items: step 2 has each helper holding 20 items sending to
        // all n machines → 20n words sent, 20n received → 20 rounds + step1.
        assert!(big_rounds >= 20);
    }

    #[test]
    fn gather_collects_all_sources() {
        let mut c = Clique::new(4);
        let batches: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64 * 10]).collect();
        let got = c.gather(CostCategory::Gather, 2, batches, 1);
        assert_eq!(got.len(), 4);
        for (src, val) in got {
            assert_eq!(val, src as u64 * 10);
        }
    }

    #[test]
    fn gather_cost_reflects_leader_bottleneck() {
        let n = 4;
        let mut c = Clique::new(n);
        // Every machine sends n items of 1 word → leader receives n² = 16
        // words → 4 rounds.
        let batches: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; n]).collect();
        c.gather(CostCategory::Gather, 0, batches, 1);
        assert_eq!(c.ledger().total_rounds(), 4);
    }

    #[test]
    fn scatter_routes_from_single_source() {
        let mut c = Clique::new(3);
        let inboxes = c.scatter(
            CostCategory::Routing,
            0,
            vec![(1, "x"), (2, "y"), (1, "z")],
            1,
        );
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[2].len(), 1);
        assert!(inboxes[0].is_empty());
        assert_eq!(inboxes[1][0].from, 0);
    }

    #[test]
    fn leader_is_machine_zero() {
        assert_eq!(Clique::new(7).leader(), 0);
    }

    #[test]
    fn rounds_for_load_formula() {
        assert_eq!(Clique::rounds_for_load(4, 0), 1);
        assert_eq!(Clique::rounds_for_load(4, 4), 1);
        assert_eq!(Clique::rounds_for_load(4, 5), 2);
        assert_eq!(Clique::rounds_for_load(4, 17), 5);
    }
}
