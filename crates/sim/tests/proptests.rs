//! Property-based tests for the Congested Clique simulator: routing never
//! loses, duplicates, or misdelivers messages, and costs follow the
//! Lenzen load formula exactly.

use cct_sim::{Clique, CostCategory, Envelope, FastOracleEngine, MatMulEngine, SemiringEngine};
use proptest::prelude::*;

/// Strategy: a random message pattern on an n-machine clique.
fn message_pattern() -> impl Strategy<Value = (usize, Vec<(usize, usize, usize)>)> {
    (2usize..=12).prop_flat_map(|n| {
        let msgs = proptest::collection::vec((0..n, 0..n, 1usize..=5), 0..60);
        (Just(n), msgs)
    })
}

proptest! {
    #[test]
    fn route_delivers_everything_exactly_once((n, msgs) in message_pattern()) {
        let mut clique = Clique::new(n);
        let mut outboxes: Vec<Vec<Envelope<usize>>> = (0..n).map(|_| Vec::new()).collect();
        for (id, &(src, dst, words)) in msgs.iter().enumerate() {
            outboxes[src].push(Envelope::new(dst, words, id));
        }
        let inboxes = clique.route(CostCategory::Routing, outboxes);
        // Every message arrives exactly once, at the right machine, with
        // the right source.
        let mut seen = vec![false; msgs.len()];
        for (machine, inbox) in inboxes.iter().enumerate() {
            for env in inbox {
                let (src, dst, words) = msgs[env.payload];
                prop_assert_eq!(machine, dst);
                prop_assert_eq!(env.from, src);
                prop_assert_eq!(env.words, words);
                prop_assert!(!seen[env.payload], "duplicate delivery");
                seen[env.payload] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn route_cost_matches_load_formula((n, msgs) in message_pattern()) {
        let mut clique = Clique::new(n);
        let mut outboxes: Vec<Vec<Envelope<usize>>> = (0..n).map(|_| Vec::new()).collect();
        let mut send = vec![0u64; n];
        let mut recv = vec![0u64; n];
        for (id, &(src, dst, words)) in msgs.iter().enumerate() {
            outboxes[src].push(Envelope::new(dst, words, id));
            send[src] += words as u64;
            recv[dst] += words as u64;
        }
        clique.route(CostCategory::Routing, outboxes);
        let max_load = send.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        let expect = Clique::rounds_for_load(n, max_load);
        prop_assert_eq!(clique.ledger().total_rounds(), expect);
        let total_words: u64 = msgs.iter().map(|&(_, _, w)| w as u64).sum();
        prop_assert_eq!(clique.ledger().total_words(), total_words);
    }

    #[test]
    fn broadcast_reaches_all_in_order(n in 2usize..=10, items in proptest::collection::vec(any::<u32>(), 1..40)) {
        let mut clique = Clique::new(n);
        let got = clique.broadcast(CostCategory::Broadcast, n - 1, items.clone(), 1);
        prop_assert_eq!(got, items);
    }

    #[test]
    fn engines_agree((n, seed) in (2usize..=20, any::<u64>())) {
        use cct_linalg::{normalize_rows, Matrix};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>());
        let mut b = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>());
        normalize_rows(&mut a);
        normalize_rows(&mut b);
        let mut c1 = Clique::new(n);
        let mut c2 = Clique::new(n);
        let p1 = SemiringEngine::new(1).multiply(&mut c1, &a, &b);
        let p2 = FastOracleEngine::default().multiply(&mut c2, &a, &b);
        prop_assert!(p1.max_abs_diff(&p2) < 1e-12);
        prop_assert!(p1.max_abs_diff(&a.matmul(&b)) < 1e-12);
    }

    #[test]
    fn rounds_for_multiply_matches_measured(n in 2usize..=30) {
        // The analytic charge used for out-of-band multiplies must agree
        // with what a real multiply through the engine would cost.
        use cct_linalg::Matrix;
        let engine = SemiringEngine::new(1);
        let claimed = engine.rounds_for_multiply(n);
        let mut clique = Clique::new(n);
        let id = Matrix::identity(n);
        engine.multiply(&mut clique, &id, &id);
        prop_assert_eq!(claimed, clique.ledger().total_rounds());
    }
}
