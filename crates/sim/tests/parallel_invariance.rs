//! Ledger-invariance regression tests for the parallel round engine:
//! the Lenzen routing charge `⌈L/n⌉` for skewed traffic patterns must
//! not depend on how machines are sharded across worker threads, and is
//! pinned here with exact expected round counts.

use cct_sim::{Clique, CostCategory, Envelope, ParallelClique};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Every machine sends `words` words to the single hot receiver `hot`;
/// returns the resulting ledger.
fn hot_receiver_ledger(n: usize, hot: usize, words: usize, workers: usize) -> cct_sim::RoundLedger {
    let mut clique = Clique::new(n);
    let inboxes = ParallelClique::new(&mut clique, workers).map_route(CostCategory::Routing, |m| {
        vec![Envelope::new(hot, words, m as u64)]
    });
    assert_eq!(inboxes[hot].len(), n, "hot receiver must get every message");
    clique.ledger().clone()
}

#[test]
fn skewed_hot_receiver_costs_ceil_l_over_n_at_any_shard_count() {
    // n = 8 machines each sending 13 words to machine 5: the receive
    // load is L = 8 · 13 = 104 words, so Lenzen routing charges exactly
    // ⌈104/8⌉ = 13 rounds — no matter how the senders were sharded.
    let reference = hot_receiver_ledger(8, 5, 13, 1);
    assert_eq!(reference.total_rounds(), 13);
    assert_eq!(reference.total_words(), 104);
    for workers in WORKER_SWEEP {
        let ledger = hot_receiver_ledger(8, 5, 13, workers);
        assert_eq!(ledger, reference, "workers = {workers}");
    }
}

#[test]
fn hot_receiver_cost_is_exact_across_loads() {
    // Pinned (load → rounds) pairs on a 6-machine clique: each of the 6
    // senders ships `w` words to machine 0, so L = 6w and the charge is
    // ⌈6w/6⌉ = w — exactly, at every worker count.
    for (w, expect) in [(1usize, 1u64), (2, 2), (7, 7), (100, 100)] {
        for workers in WORKER_SWEEP {
            let ledger = hot_receiver_ledger(6, 0, w, workers);
            assert_eq!(
                ledger.rounds(CostCategory::Routing),
                expect,
                "w = {w}, workers = {workers}"
            );
        }
    }
}

#[test]
fn one_hot_sender_matches_send_side_bound() {
    // Inverse skew: machine 3 sends 9 words to everyone on a 4-machine
    // clique. Send load L = 4 · 9 = 36 → ⌈36/4⌉ = 9 rounds.
    for workers in WORKER_SWEEP {
        let mut clique = Clique::new(4);
        ParallelClique::new(&mut clique, workers).map_route(CostCategory::Routing, |m| {
            if m == 3 {
                (0..4).map(|to| Envelope::new(to, 9, 0u8)).collect()
            } else {
                Vec::new()
            }
        });
        assert_eq!(clique.ledger().total_rounds(), 9, "workers = {workers}");
    }
}
