//! Wilson's algorithm \[73\]: uniform spanning trees via loop-erased random
//! walks, in expected mean-hitting-time steps.
//!
//! The baseline sampler the paper cites as the fastest classical
//! walk-based algorithm; used as an independent reference implementation
//! in the uniformity experiments (if Aldous–Broder, Wilson and the
//! distributed sampler all agree with the Matrix–Tree distribution, a
//! shared bias is very unlikely).

use crate::walk::random_step;
use crate::SampleError;
use cct_graph::{Graph, SpanningTree};
use rand::Rng;

/// Samples a weighted-uniform spanning tree by Wilson's loop-erased
/// random-walk algorithm, rooted at `root`.
///
/// # Errors
///
/// Returns [`SampleError::Disconnected`] for disconnected graphs.
///
/// # Panics
///
/// Panics if `n == 0` or `root >= n`.
///
/// # Examples
///
/// ```
/// use cct_graph::generators;
/// use cct_walks::wilson;
/// use rand::SeedableRng;
///
/// let g = generators::cycle(5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let tree = wilson(&g, 0, &mut rng)?;
/// assert_eq!(tree.edges().len(), 4);
/// # Ok::<(), cct_walks::SampleError>(())
/// ```
pub fn wilson<R: Rng + ?Sized>(
    g: &Graph,
    root: usize,
    rng: &mut R,
) -> Result<SpanningTree, SampleError> {
    let n = g.n();
    assert!(n > 0, "graph must be non-empty");
    assert!(root < n, "root out of range");
    if !g.is_connected() {
        return Err(SampleError::Disconnected);
    }
    if n == 1 {
        return Ok(SpanningTree::new(1, Vec::new()).expect("trivial"));
    }
    let mut in_tree = vec![false; n];
    in_tree[root] = true;
    // next[u]: the successor of u in the current (loop-erased) walk.
    let mut next = vec![usize::MAX; n];
    let mut edges = Vec::with_capacity(n - 1);
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        // Random walk from `start` until it hits the tree; cycles are
        // erased implicitly because next[u] is overwritten on revisits.
        let mut u = start;
        while !in_tree[u] {
            next[u] = random_step(g, u, rng);
            u = next[u];
        }
        // Retrace the loop-erased path and attach it.
        let mut u = start;
        while !in_tree[u] {
            in_tree[u] = true;
            edges.push((u, next[u]));
            u = next[u];
        }
    }
    Ok(SpanningTree::new(n, edges).expect("loop-erased paths span"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use cct_graph::{generators, spanning_tree_distribution};
    use rand::SeedableRng;

    #[test]
    fn produces_valid_trees_everywhere() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for g in [
            generators::complete(7),
            generators::grid(3, 4),
            generators::lollipop(5, 4),
            generators::k_dense_irregular(9),
        ] {
            let t = wilson(&g, 0, &mut rng).unwrap();
            assert_eq!(t.n(), g.n());
            for &(u, v) in t.edges() {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn disconnected_rejected() {
        let g = cct_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        assert_eq!(
            wilson(&g, 0, &mut rng).unwrap_err(),
            SampleError::Disconnected
        );
    }

    #[test]
    fn uniform_on_cycle5() {
        // C5 has exactly 5 spanning trees (drop any edge).
        let g = generators::cycle(5);
        let dist = spanning_tree_distribution(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let trials = 15_000;
        let counts = stats::empirical_counts((0..trials).map(|_| wilson(&g, 0, &mut rng).unwrap()));
        let (stat, crit) = stats::goodness_of_fit(&counts, &dist, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn root_choice_does_not_bias() {
        // Wilson's output distribution is root-independent; compare
        // empirical TVs from two different roots on K4.
        let g = generators::complete(4);
        let dist = spanning_tree_distribution(&g);
        let trials = 16_000;
        for root in [0usize, 3] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(24 + root as u64);
            let counts =
                stats::empirical_counts((0..trials).map(|_| wilson(&g, root, &mut rng).unwrap()));
            let (stat, crit) = stats::goodness_of_fit(&counts, &dist, trials);
            assert!(stat < crit, "root {root}: chi² = {stat:.1} ≥ {crit:.1}");
        }
    }

    #[test]
    fn weighted_wilson_matches_weighted_distribution() {
        let g = cct_graph::Graph::from_weighted_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 0, 3.0),
                (0, 2, 1.0),
            ],
        )
        .unwrap();
        let dist = spanning_tree_distribution(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(25);
        let trials = 24_000;
        let counts = stats::empirical_counts((0..trials).map(|_| wilson(&g, 1, &mut rng).unwrap()));
        let (stat, crit) = stats::goodness_of_fit(&counts, &dist, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }
}
