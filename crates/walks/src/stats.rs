//! Statistical machinery for the uniformity experiments: chi-square
//! goodness-of-fit with conservative critical values, and empirical
//! total-variation distance.
//!
//! Every sampler test in the workspace uses fixed RNG seeds and a
//! `p ≈ 10⁻⁶` critical value, so a correct sampler fails with negligible
//! probability while a biased one (e.g. the random-weight MST strawman of
//! §1.4) fails decisively.

use std::collections::HashMap;
use std::hash::Hash;

/// Pearson's chi-square statistic `Σ (observed − expected)² / expected`
/// over `(observed_count, expected_probability)` cells given `total`
/// samples.
///
/// # Panics
///
/// Panics if any expected probability is non-positive or `total == 0`.
///
/// # Examples
///
/// ```
/// use cct_walks::stats::chi_square_stat;
///
/// // A perfect 50/50 split has statistic 0.
/// assert_eq!(chi_square_stat(&[(50, 0.5), (50, 0.5)], 100), 0.0);
/// ```
pub fn chi_square_stat(cells: &[(usize, f64)], total: usize) -> f64 {
    assert!(total > 0, "need at least one sample");
    cells
        .iter()
        .map(|&(obs, p)| {
            assert!(p > 0.0, "expected probability must be positive");
            let expect = p * total as f64;
            let d = obs as f64 - expect;
            d * d / expect
        })
        .sum()
}

/// A conservative chi-square critical value at `p ≲ 10⁻⁶` for `df`
/// degrees of freedom, via the Wilson–Hilferty cube approximation
/// `χ² ≈ df · (1 − 2/(9df) + z·√(2/(9df)))³`.
///
/// `z = 5.2` over-covers the `10⁻⁶` normal quantile (≈ 4.75) to absorb
/// the approximation's anti-conservative bias at small `df`; the returned
/// value upper-bounds the true `10⁻⁶` quantile for all `df ≥ 1`.
///
/// # Panics
///
/// Panics if `df == 0`.
pub fn chi_square_critical(df: usize) -> f64 {
    assert!(df > 0, "need at least one degree of freedom");
    let df = df as f64;
    let z = 5.2;
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3)
}

/// Builds an empirical count map from samples.
pub fn empirical_counts<K: Eq + Hash, I: IntoIterator<Item = K>>(samples: I) -> HashMap<K, usize> {
    let mut counts = HashMap::new();
    for s in samples {
        *counts.entry(s).or_insert(0usize) += 1;
    }
    counts
}

/// Chi-square test of empirical counts against an exact finite
/// distribution. Returns `(statistic, critical_value)`; the test passes
/// when `statistic < critical_value`.
///
/// Cells missing from `counts` contribute their full expectation.
///
/// # Panics
///
/// Panics if `exact` is empty, `total == 0`, or a probability is
/// non-positive.
pub fn goodness_of_fit<K: Eq + Hash>(
    counts: &HashMap<K, usize>,
    exact: &[(K, f64)],
    total: usize,
) -> (f64, f64) {
    assert!(!exact.is_empty(), "need a non-empty support");
    let cells: Vec<(usize, f64)> = exact
        .iter()
        .map(|(k, p)| (counts.get(k).copied().unwrap_or(0), *p))
        .collect();
    (
        chi_square_stat(&cells, total),
        chi_square_critical(exact.len().saturating_sub(1).max(1)),
    )
}

/// Empirical total-variation distance between observed counts and an
/// exact distribution: `½ Σ |obs/total − p|`, including mass observed
/// outside the exact support.
///
/// # Panics
///
/// Panics if `total == 0`.
pub fn empirical_tv<K: Eq + Hash + Clone>(
    counts: &HashMap<K, usize>,
    exact: &[(K, f64)],
    total: usize,
) -> f64 {
    assert!(total > 0, "need at least one sample");
    let support: HashMap<&K, f64> = exact.iter().map(|(k, p)| (k, *p)).collect();
    let mut tv = 0.0;
    let mut seen_mass = 0.0;
    for (k, p) in exact {
        let obs = counts.get(k).copied().unwrap_or(0) as f64 / total as f64;
        tv += (obs - p).abs();
        seen_mass += obs;
    }
    // Observed keys outside the exact support count fully.
    for (k, &c) in counts {
        if !support.contains_key(k) {
            tv += c as f64 / total as f64;
            seen_mass += 0.0;
        }
    }
    let _ = seen_mass;
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_is_zero() {
        assert_eq!(chi_square_stat(&[(25, 0.25), (75, 0.75)], 100), 0.0);
    }

    #[test]
    fn bad_fit_is_large() {
        // All mass on a cell expected to get half.
        let stat = chi_square_stat(&[(100, 0.5), (0, 0.5)], 100);
        assert!(stat > chi_square_critical(1));
    }

    #[test]
    fn critical_values_are_sane() {
        // True χ² p=1e-6 quantiles: df=1 ≈ 23.9, df=10 ≈ 52.4, df=100 ≈ 182.
        // Our gate must upper-bound them without being absurdly loose.
        let true_q = [(1usize, 23.9f64), (10, 52.4), (100, 182.0)];
        for (df, q) in true_q {
            let crit = chi_square_critical(df);
            assert!(crit >= q, "df={df}: {crit} below true quantile {q}");
            assert!(crit <= 1.6 * q, "df={df}: {crit} too loose vs {q}");
        }
        // Monotone in df.
        assert!(chi_square_critical(2) > chi_square_critical(1));
    }

    #[test]
    fn counts_builder() {
        let c = empirical_counts(vec!["a", "b", "a", "a"]);
        assert_eq!(c["a"], 3);
        assert_eq!(c["b"], 1);
    }

    #[test]
    fn goodness_of_fit_accepts_fair_die() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let total = 12_000;
        let counts = empirical_counts((0..total).map(|_| rng.gen_range(0..6u8)));
        let exact: Vec<(u8, f64)> = (0..6).map(|k| (k, 1.0 / 6.0)).collect();
        let (stat, crit) = goodness_of_fit(&counts, &exact, total);
        assert!(stat < crit, "{stat} ≥ {crit}");
    }

    #[test]
    fn goodness_of_fit_rejects_loaded_die() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let total = 12_000;
        // Face 0 twice as likely as it should be.
        let counts = empirical_counts((0..total).map(|_| {
            let x = rng.gen_range(0..7u8);
            if x == 6 {
                0
            } else {
                x
            }
        }));
        let exact: Vec<(u8, f64)> = (0..6).map(|k| (k, 1.0 / 6.0)).collect();
        let (stat, crit) = goodness_of_fit(&counts, &exact, total);
        assert!(stat > crit, "loaded die passed: {stat} < {crit}");
    }

    #[test]
    fn tv_detects_off_support_mass() {
        let mut counts = HashMap::new();
        counts.insert("x", 50usize);
        counts.insert("rogue", 50usize);
        let exact = vec![("x", 1.0)];
        let tv = empirical_tv(&counts, &exact, 100);
        assert!((tv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tv_zero_for_exact_match() {
        let mut counts = HashMap::new();
        counts.insert(0u8, 30usize);
        counts.insert(1u8, 70usize);
        let exact = vec![(0u8, 0.3), (1u8, 0.7)];
        assert!(empirical_tv(&counts, &exact, 100) < 1e-12);
    }
}
