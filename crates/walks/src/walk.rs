//! Elementary random-walk operations on weighted graphs (§1.1).
//!
//! A random walk leaves vertex `a` along edge `{a, b}` with probability
//! `w(a,b) / deg(a)`; for unweighted graphs this is the uniform neighbor.

use cct_graph::Graph;
use cct_linalg::sample_index;
use rand::Rng;
use std::collections::HashSet;

/// Takes one random-walk step from `u`.
///
/// # Panics
///
/// Panics if `u` has no neighbors (the walk cannot move).
///
/// # Examples
///
/// ```
/// use cct_graph::generators;
/// use cct_walks::random_step;
/// use rand::SeedableRng;
///
/// let g = generators::path(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(random_step(&g, 0, &mut rng), 1); // endpoint must go inward
/// ```
pub fn random_step<R: Rng + ?Sized>(g: &Graph, u: usize, rng: &mut R) -> usize {
    let nbrs = g.neighbors(u);
    assert!(
        !nbrs.is_empty(),
        "vertex {u} is isolated; the walk is stuck"
    );
    if nbrs.len() == 1 {
        return nbrs[0].0;
    }
    let weights: Vec<f64> = nbrs.iter().map(|&(_, w)| w).collect();
    let idx = sample_index(rng, &weights).expect("positive weights");
    nbrs[idx].0
}

/// Takes a `len`-step random walk from `start`; returns the `len + 1`
/// visited vertices (including `start`).
///
/// # Panics
///
/// Panics if the walk reaches an isolated vertex.
pub fn random_walk<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    len: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    let mut cur = start;
    for _ in 0..len {
        cur = random_step(g, cur, rng);
        walk.push(cur);
    }
    walk
}

/// Returns `true` if consecutive vertices of `walk` are adjacent in `g`
/// (a walk of length 0 or an empty sequence is trivially valid).
pub fn is_valid_walk(g: &Graph, walk: &[usize]) -> bool {
    walk.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// The first-visit edges of a walk: for every vertex other than
/// `walk\[0\]`, the edge used the first time the walk arrives there — the
/// Aldous–Broder tree-edge rule \[1, 12\].
///
/// Returns `(vertex, (previous, vertex))` pairs in first-visit order.
pub fn first_visit_edges(walk: &[usize]) -> Vec<(usize, (usize, usize))> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    if let Some(&s) = walk.first() {
        seen.insert(s);
    }
    for w in walk.windows(2) {
        let (prev, cur) = (w[0], w[1]);
        if seen.insert(cur) {
            out.push((cur, (prev, cur)));
        }
    }
    out
}

/// Walks from `start` until `k` distinct vertices have been visited
/// (counting `start`), up to `cap` steps.
///
/// Returns `Some(t)` where `t` is the step index of the first visit to the
/// `k`-th distinct vertex, or `None` if `cap` steps did not suffice. This
/// is the stopping time `T` of §2.1 specialized to `ρ = k`.
///
/// # Panics
///
/// Panics if `k == 0` or the walk reaches an isolated vertex.
pub fn time_to_visit_k_distinct<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    k: usize,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    assert!(k >= 1, "k must be positive");
    let mut seen = HashSet::new();
    seen.insert(start);
    if seen.len() >= k {
        return Some(0);
    }
    let mut cur = start;
    for t in 1..=cap {
        cur = random_step(g, cur, rng);
        seen.insert(cur);
        if seen.len() >= k {
            return Some(t);
        }
    }
    None
}

/// Number of distinct vertices visited by a `len`-step walk from `start`
/// — the Barnes–Feige quantity of §1.4 Direction 4 (experiment E11).
pub fn distinct_vertices_in_walk<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    len: usize,
    rng: &mut R,
) -> usize {
    let mut seen = HashSet::new();
    seen.insert(start);
    let mut cur = start;
    for _ in 0..len {
        cur = random_step(g, cur, rng);
        seen.insert(cur);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn walk_has_requested_length_and_is_valid() {
        let g = generators::petersen();
        let mut r = rng();
        let w = random_walk(&g, 3, 50, &mut r);
        assert_eq!(w.len(), 51);
        assert_eq!(w[0], 3);
        assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn invalid_walk_detected() {
        let g = generators::path(4);
        assert!(is_valid_walk(&g, &[0, 1, 2, 3, 2]));
        assert!(!is_valid_walk(&g, &[0, 2]));
        assert!(is_valid_walk(&g, &[1]));
        assert!(is_valid_walk(&g, &[]));
    }

    #[test]
    fn weighted_steps_respect_weights() {
        // Vertex 0 has edges to 1 (weight 9) and 2 (weight 1).
        let g = cct_graph::Graph::from_weighted_edges(3, &[(0, 1, 9.0), (0, 2, 1.0), (1, 2, 1.0)])
            .unwrap();
        let mut r = rng();
        let trials = 20_000;
        let to_1 = (0..trials)
            .filter(|_| random_step(&g, 0, &mut r) == 1)
            .count();
        let expect = 0.9 * trials as f64;
        assert!(
            (to_1 as f64 - expect).abs() < 4.0 * (trials as f64 * 0.09).sqrt(),
            "got {to_1}, expected ≈ {expect}"
        );
    }

    #[test]
    fn first_visit_edges_form_tree_on_cover() {
        let g = generators::complete(6);
        let mut r = rng();
        // A long walk covers K6 with overwhelming probability.
        let w = random_walk(&g, 0, 500, &mut r);
        let edges = first_visit_edges(&w);
        assert_eq!(edges.len(), 5);
        let tree_edges: Vec<(usize, usize)> = edges.iter().map(|&(_, e)| e).collect();
        assert!(cct_graph::SpanningTree::new_in(&g, tree_edges).is_ok());
    }

    #[test]
    fn first_visit_edges_ignore_revisits() {
        // Walk 0→1→0→2 on the triangle: first-visit edges (0,1), (0,2).
        let edges = first_visit_edges(&[0, 1, 0, 2]);
        assert_eq!(edges, vec![(1, (0, 1)), (2, (0, 2))]);
    }

    #[test]
    fn time_to_k_distinct_on_path() {
        let g = generators::path(10);
        let mut r = rng();
        // k = 1 is immediate; k = 2 takes exactly one step.
        assert_eq!(time_to_visit_k_distinct(&g, 0, 1, 10, &mut r), Some(0));
        assert_eq!(time_to_visit_k_distinct(&g, 0, 2, 10, &mut r), Some(1));
        // Covering all 10 vertices of a path from one end takes ≥ 9 steps.
        let t = time_to_visit_k_distinct(&g, 0, 10, 100_000, &mut r).unwrap();
        assert!(t >= 9);
    }

    #[test]
    fn time_to_k_distinct_cap_respected() {
        let g = generators::path(50);
        let mut r = rng();
        assert_eq!(time_to_visit_k_distinct(&g, 0, 50, 10, &mut r), None);
    }

    #[test]
    fn distinct_count_bounds() {
        let g = generators::cycle(8);
        let mut r = rng();
        let d = distinct_vertices_in_walk(&g, 0, 20, &mut r);
        assert!((2..=8).contains(&d));
        assert_eq!(distinct_vertices_in_walk(&g, 0, 0, &mut r), 1);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_vertex_panics() {
        let g = cct_graph::Graph::from_edges(2, &[]).unwrap();
        let mut r = rng();
        let _ = random_step(&g, 0, &mut r);
    }
}
