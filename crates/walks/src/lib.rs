//! # cct-walks
//!
//! Random-walk primitives and the sequential spanning-tree samplers for
//! the `cct` workspace (Pemmaraju–Roy–Sobel, PODC 2025).
//!
//! * [`random_walk`] / [`first_visit_edges`] — elementary walk operations
//!   on weighted graphs (§1.1);
//! * [`aldous_broder`] — the classical sampler \[1, 12\] the paper
//!   distributes; [`wilson`] — the loop-erased baseline \[73\];
//! * [`top_down_walk`] — Outline 1, the recursive midpoint-filling walk
//!   sampler; [`truncated_top_down_walk`] — §2.1.2, its `ρ`-distinct-
//!   vertex truncated form, the sequential specification the distributed
//!   algorithm of `cct-core` reproduces (Lemma 4);
//! * [`estimate_cover_time`] — cover-time measurement (experiments E5,
//!   E11);
//! * [`stats`] — chi-square / TV machinery shared by every uniformity
//!   experiment.
//!
//! # Examples
//!
//! ```
//! use cct_graph::generators;
//! use cct_walks::{aldous_broder, wilson};
//! use rand::SeedableRng;
//!
//! let g = generators::petersen();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let t1 = aldous_broder(&g, 0, &mut rng)?;
//! let t2 = wilson(&g, 0, &mut rng)?;
//! assert_eq!(t1.edges().len(), 9);
//! assert_eq!(t2.edges().len(), 9);
//! # Ok::<(), cct_walks::SampleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aldous_broder;
mod cover;
pub mod stats;
mod strawman;
mod topdown;
mod walk;
mod wilson;

pub use aldous_broder::{aldous_broder, aldous_broder_capped, SampleError};
pub use cover::{cover_time_once, estimate_cover_time, CoverTimeStats};
pub use strawman::{kruskal_by_keys, kruskal_mst, random_mst_distribution, random_weight_mst};
pub use topdown::{
    direct_truncated_walk, sample_midpoint, top_down_walk, truncated_top_down_walk, TruncatedWalk,
};
pub use walk::{
    distinct_vertices_in_walk, first_visit_edges, is_valid_walk, random_step, random_walk,
    time_to_visit_k_distinct,
};
pub use wilson::wilson;
