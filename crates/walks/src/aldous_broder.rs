//! The Aldous–Broder algorithm \[1, 12\]: the first-visit edges of a
//! covering random walk form a uniformly distributed spanning tree.
//!
//! This is the sequential reference sampler that the paper's distributed
//! algorithm implements; every uniformity experiment compares against it.

use crate::walk::random_step;
use cct_graph::{Graph, SpanningTree};
use rand::Rng;

/// Error returned when tree sampling cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// The graph is disconnected (no spanning tree exists).
    Disconnected,
    /// The step cap was exhausted before the walk covered the graph.
    StepCapExhausted {
        /// The cap that was hit.
        cap: u64,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::Disconnected => write!(f, "graph is disconnected"),
            SampleError::StepCapExhausted { cap } => {
                write!(f, "walk did not cover the graph within {cap} steps")
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// Samples a uniform (weighted-uniform for weighted graphs) spanning tree
/// by running a random walk from `start` until it covers the graph and
/// keeping each vertex's first-visit edge.
///
/// # Errors
///
/// Returns [`SampleError::Disconnected`] for disconnected graphs.
///
/// # Panics
///
/// Panics if `n == 0` or `start >= n`.
///
/// # Examples
///
/// ```
/// use cct_graph::generators;
/// use cct_walks::aldous_broder;
/// use rand::SeedableRng;
///
/// let g = generators::complete(5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let tree = aldous_broder(&g, 0, &mut rng)?;
/// assert_eq!(tree.edges().len(), 4);
/// # Ok::<(), cct_walks::SampleError>(())
/// ```
pub fn aldous_broder<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    rng: &mut R,
) -> Result<SpanningTree, SampleError> {
    aldous_broder_capped(g, start, u64::MAX, rng)
}

/// [`aldous_broder`] with an explicit step cap (useful in tests on graphs
/// with large cover time).
///
/// # Errors
///
/// Returns [`SampleError::Disconnected`] or
/// [`SampleError::StepCapExhausted`].
///
/// # Panics
///
/// Panics if `n == 0` or `start >= n`.
pub fn aldous_broder_capped<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    cap: u64,
    rng: &mut R,
) -> Result<SpanningTree, SampleError> {
    let n = g.n();
    assert!(n > 0, "graph must be non-empty");
    assert!(start < n, "start vertex out of range");
    if !g.is_connected() {
        return Err(SampleError::Disconnected);
    }
    if n == 1 {
        return Ok(SpanningTree::new(1, Vec::new()).expect("trivial"));
    }
    let mut visited = vec![false; n];
    visited[start] = true;
    let mut remaining = n - 1;
    let mut edges = Vec::with_capacity(n - 1);
    let mut cur = start;
    let mut steps = 0u64;
    while remaining > 0 {
        if steps >= cap {
            return Err(SampleError::StepCapExhausted { cap });
        }
        let next = random_step(g, cur, rng);
        if !visited[next] {
            visited[next] = true;
            remaining -= 1;
            edges.push((cur, next));
        }
        cur = next;
        steps += 1;
    }
    Ok(SpanningTree::new(n, edges).expect("first-visit edges span"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::{generators, spanning_tree_distribution};
    use rand::SeedableRng;

    #[test]
    fn produces_valid_trees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for g in [
            generators::complete(6),
            generators::cycle(7),
            generators::petersen(),
            generators::grid(3, 3),
            generators::lollipop(4, 3),
        ] {
            for start in [0, g.n() - 1] {
                let t = aldous_broder(&g, start, &mut rng).unwrap();
                assert_eq!(t.n(), g.n());
                for &(u, v) in t.edges() {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn disconnected_rejected() {
        let g = cct_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(
            aldous_broder(&g, 0, &mut rng).unwrap_err(),
            SampleError::Disconnected
        );
    }

    #[test]
    fn cap_respected() {
        let g = generators::lollipop(6, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // A cap of 1 step can never cover 12 vertices.
        assert!(matches!(
            aldous_broder_capped(&g, 0, 1, &mut rng),
            Err(SampleError::StepCapExhausted { cap: 1 })
        ));
    }

    #[test]
    fn single_vertex_tree() {
        let g = cct_graph::Graph::from_edges(1, &[]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let t = aldous_broder(&g, 0, &mut rng).unwrap();
        assert!(t.edges().is_empty());
    }

    #[test]
    fn uniform_on_k4_chi_square() {
        // K4 has 16 spanning trees; Aldous-Broder must hit each with
        // probability 1/16. Conservative chi-square gate (p ≈ 1e-6).
        let g = generators::complete(4);
        let dist = spanning_tree_distribution(&g);
        assert_eq!(dist.len(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let trials = 16_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let t = aldous_broder(&g, 0, &mut rng).unwrap();
            *counts.entry(t).or_insert(0usize) += 1;
        }
        let stat = crate::stats::chi_square_stat(
            &dist
                .iter()
                .map(|(t, p)| (counts.get(t).copied().unwrap_or(0), *p))
                .collect::<Vec<_>>(),
            trials,
        );
        let threshold = crate::stats::chi_square_critical(dist.len() - 1);
        assert!(stat < threshold, "chi² = {stat:.1} ≥ {threshold:.1}");
    }

    #[test]
    fn weighted_triangle_distribution() {
        // Weights 1,2,3 → tree probabilities 2/11, 3/11, 6/11.
        let g = cct_graph::Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
            .unwrap();
        let dist = spanning_tree_distribution(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(777);
        let trials = 22_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let t = aldous_broder(&g, 0, &mut rng).unwrap();
            *counts.entry(t).or_insert(0usize) += 1;
        }
        let stat = crate::stats::chi_square_stat(
            &dist
                .iter()
                .map(|(t, p)| (counts.get(t).copied().unwrap_or(0), *p))
                .collect::<Vec<_>>(),
            trials,
        );
        assert!(stat < crate::stats::chi_square_critical(2));
    }
}
