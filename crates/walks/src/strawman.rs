//! The §1.4 strawman: "assign random weights and take the MST".
//!
//! The paper warns that, although an MST can be built in `O(1)` rounds
//! in the Congested Clique, sampling a spanning tree by assigning
//! uniform random weights to the edges and returning the minimum
//! spanning tree does **not** produce the uniform distribution \[39\].
//! This module implements the strawman (plus the Kruskal substrate it
//! needs) so the experiment suite can demonstrate the bias — a negative
//! control proving the statistical gates can tell these distributions
//! apart.

use crate::SampleError;
use cct_graph::{DisjointSet, Graph, SpanningTree};
use rand::Rng;

/// Kruskal's algorithm: the spanning tree greedily built by scanning
/// edges in the order given by `keys` (ascending).
///
/// # Errors
///
/// Returns [`SampleError::Disconnected`] if the edges do not span.
///
/// # Panics
///
/// Panics if `keys.len() != g.m()`.
pub fn kruskal_by_keys(g: &Graph, keys: &[f64]) -> Result<SpanningTree, SampleError> {
    assert_eq!(keys.len(), g.m(), "need one key per edge");
    let n = g.n();
    let mut order: Vec<usize> = (0..g.m()).collect();
    order.sort_by(|&a, &b| {
        keys[a]
            .partial_cmp(&keys[b])
            .expect("keys must be comparable")
    });
    let mut dsu = DisjointSet::new(n);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for idx in order {
        let (u, v, _) = g.edges()[idx];
        if dsu.union(u, v) {
            edges.push((u, v));
            if edges.len() + 1 == n {
                break;
            }
        }
    }
    SpanningTree::new(n, edges).map_err(|_| SampleError::Disconnected)
}

/// The sequential minimum-spanning-tree reference: Kruskal over the
/// graph's *own* edge weights.
///
/// Ties are deterministic: `sort_by` is stable and [`Graph::edges`] is
/// sorted lexicographically by `(u, v)`, so the effective total order is
/// `(w, u, v)` — under which all weights are distinct and the MST is
/// *unique*. The distributed Borůvka engine selects minima under the
/// same order, which is what makes edge-set-for-edge-set cross-validation
/// between the two meaningful even on graphs with tied weights.
///
/// # Errors
///
/// Returns [`SampleError::Disconnected`] if the graph does not span.
pub fn kruskal_mst(g: &Graph) -> Result<SpanningTree, SampleError> {
    let keys: Vec<f64> = g.edges().iter().map(|&(_, _, w)| w).collect();
    kruskal_by_keys(g, &keys)
}

/// The strawman sampler: i.i.d. uniform `\[0, 1\]` edge weights, then the
/// MST. Fast — and *biased* (see [`random_mst_distribution`] and
/// experiment E15).
///
/// # Errors
///
/// Returns [`SampleError::Disconnected`] for disconnected graphs.
pub fn random_weight_mst<R: Rng + ?Sized>(
    g: &Graph,
    rng: &mut R,
) -> Result<SpanningTree, SampleError> {
    let keys: Vec<f64> = (0..g.m()).map(|_| rng.gen::<f64>()).collect();
    kruskal_by_keys(g, &keys)
}

/// The *exact* distribution of [`random_weight_mst`] for a small graph,
/// by enumerating all `m!` edge orderings (i.i.d. continuous weights
/// induce a uniformly random ordering).
///
/// # Panics
///
/// Panics if `m > 9` (9! = 362 880 orderings is the sane limit) or the
/// graph is disconnected.
pub fn random_mst_distribution(g: &Graph) -> Vec<(SpanningTree, f64)> {
    let m = g.m();
    assert!(m <= 9, "enumerating {m}! orderings is unreasonable");
    assert!(g.is_connected(), "no spanning tree exists");
    let mut counts: std::collections::HashMap<SpanningTree, usize> =
        std::collections::HashMap::new();
    let mut perm: Vec<usize> = (0..m).collect();
    let mut total = 0usize;
    permute(&mut perm, 0, &mut |order| {
        let mut keys = vec![0.0f64; m];
        for (rank, &edge) in order.iter().enumerate() {
            keys[edge] = rank as f64;
        }
        let tree = kruskal_by_keys(g, &keys).expect("connected");
        *counts.entry(tree).or_insert(0) += 1;
        total += 1;
    });
    counts
        .into_iter()
        .map(|(t, c)| (t, c as f64 / total as f64))
        .collect()
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use cct_graph::{generators, spanning_tree_distribution};
    use cct_linalg::total_variation;
    use rand::SeedableRng;

    #[test]
    fn kruskal_produces_valid_trees() {
        let g = generators::petersen();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = random_weight_mst(&g, &mut rng).unwrap();
            assert_eq!(t.edges().len(), 9);
            for &(u, v) in t.edges() {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn kruskal_respects_keys() {
        // Path keys force a specific tree on the triangle.
        let g = generators::cycle(3);
        // Edges sorted: (0,1), (0,2), (1,2); give (0,2) the largest key.
        let t = kruskal_by_keys(&g, &[0.1, 0.9, 0.2]).unwrap();
        assert!(t.contains_edge(0, 1));
        assert!(t.contains_edge(1, 2));
        assert!(!t.contains_edge(0, 2));
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(
            random_weight_mst(&g, &mut rng).unwrap_err(),
            SampleError::Disconnected
        );
    }

    #[test]
    fn empirical_matches_exact_ordering_law() {
        // The sampler must match its own enumerated law (sanity).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let exact = random_mst_distribution(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let trials = 20_000;
        let counts =
            stats::empirical_counts((0..trials).map(|_| random_weight_mst(&g, &mut rng).unwrap()));
        let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn strawman_is_provably_biased() {
        // §1.4: the random-weight MST law differs from uniform. On the
        // diamond (C4 + chord) the exact laws are comparably far apart.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let mst_law = random_mst_distribution(&g);
        let uniform = spanning_tree_distribution(&g);
        assert_eq!(mst_law.len(), uniform.len(), "same support");
        // Align the two distributions by tree.
        let map: std::collections::HashMap<_, _> = mst_law.into_iter().collect();
        let p: Vec<f64> = uniform.iter().map(|(t, _)| map[t]).collect();
        let q: Vec<f64> = uniform.iter().map(|(_, pu)| *pu).collect();
        let tv = total_variation(&p, &q);
        assert!(
            tv > 0.02,
            "random-MST law is TV = {tv:.4} from uniform — expected a visible gap"
        );
    }

    #[test]
    fn chi_square_gate_rejects_the_strawman() {
        // The same gate that passes the real samplers must fail this one
        // — the negative control for the whole uniformity methodology.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let uniform = spanning_tree_distribution(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let trials = 40_000;
        let counts =
            stats::empirical_counts((0..trials).map(|_| random_weight_mst(&g, &mut rng).unwrap()));
        let (stat, crit) = stats::goodness_of_fit(&counts, &uniform, trials);
        assert!(
            stat > crit,
            "strawman passed the uniformity gate (chi² = {stat:.1} < {crit:.1})"
        );
    }
}
