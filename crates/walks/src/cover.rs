//! Cover-time estimation.
//!
//! The paper's parameter choices hinge on cover-time facts: every
//! unweighted graph has cover time `O(mn) ⊆ O(n³)` \[2\], expanders and
//! `G(n, p ≥ log n/n)` have `O(n log n)` \[12, 13, 18\], and
//! `Schur(G, S)`'s cover time never exceeds `G`'s. These estimators feed
//! experiments E5 and E11 and Corollary 1's `Õ(τ/n)` round bound.

use crate::walk::random_step;
use cct_graph::Graph;
use rand::Rng;

/// One sampled cover time: steps until a walk from `start` has visited
/// every vertex, capped at `cap`.
///
/// Returns `None` if the cap was reached first.
///
/// # Panics
///
/// Panics if the graph is empty or the walk reaches an isolated vertex.
pub fn cover_time_once<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    let n = g.n();
    assert!(n > 0, "graph must be non-empty");
    let mut unvisited = n - 1;
    let mut visited = vec![false; n];
    visited[start] = true;
    let mut cur = start;
    for t in 1..=cap {
        if unvisited == 0 {
            return Some(t - 1);
        }
        cur = random_step(g, cur, rng);
        if !visited[cur] {
            visited[cur] = true;
            unvisited -= 1;
        }
    }
    if unvisited == 0 {
        Some(cap)
    } else {
        None
    }
}

/// Summary statistics of sampled cover times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverTimeStats {
    /// Mean over completed trials.
    pub mean: f64,
    /// Maximum over completed trials.
    pub max: u64,
    /// Number of trials that hit the cap before covering.
    pub capped: usize,
    /// Number of trials run.
    pub trials: usize,
}

/// Estimates the cover time from `start` over `trials` independent walks.
///
/// # Panics
///
/// Panics if `trials == 0`, the graph is disconnected (cover time is
/// infinite), or the graph is empty.
///
/// # Examples
///
/// ```
/// use cct_graph::generators;
/// use cct_walks::estimate_cover_time;
/// use rand::SeedableRng;
///
/// let g = generators::complete(8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let stats = estimate_cover_time(&g, 0, 50, 100_000, &mut rng);
/// assert_eq!(stats.capped, 0);
/// // Coupon collector: roughly n·H_n ≈ 22 steps; allow generous slack.
/// assert!(stats.mean > 5.0 && stats.mean < 100.0);
/// ```
pub fn estimate_cover_time<R: Rng + ?Sized>(
    g: &Graph,
    start: usize,
    trials: usize,
    cap: u64,
    rng: &mut R,
) -> CoverTimeStats {
    assert!(trials > 0, "need at least one trial");
    assert!(
        g.is_connected(),
        "cover time is infinite on disconnected graphs"
    );
    let mut sum = 0.0;
    let mut max = 0u64;
    let mut capped = 0usize;
    let mut completed = 0usize;
    for _ in 0..trials {
        match cover_time_once(g, start, cap, rng) {
            Some(t) => {
                sum += t as f64;
                max = max.max(t);
                completed += 1;
            }
            None => capped += 1,
        }
    }
    CoverTimeStats {
        mean: if completed > 0 {
            sum / completed as f64
        } else {
            f64::INFINITY
        },
        max,
        capped,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn single_vertex_covers_instantly() {
        let g = cct_graph::Graph::from_edges(1, &[]).unwrap();
        let mut r = rng(1);
        assert_eq!(cover_time_once(&g, 0, 10, &mut r), Some(0));
    }

    #[test]
    fn two_path_covers_in_one_step() {
        let g = generators::path(2);
        let mut r = rng(2);
        assert_eq!(cover_time_once(&g, 0, 10, &mut r), Some(1));
    }

    #[test]
    fn cap_triggers_none() {
        let g = generators::path(30);
        let mut r = rng(3);
        assert_eq!(cover_time_once(&g, 0, 5, &mut r), None);
    }

    #[test]
    fn complete_graph_is_coupon_collector() {
        // E[cover(K_n)] = (n-1)·H_{n-1} ≈ 29.3 for n = 12.
        let g = generators::complete(12);
        let mut r = rng(4);
        let stats = estimate_cover_time(&g, 0, 400, 10_000, &mut r);
        assert_eq!(stats.capped, 0);
        let expect = 11.0 * (1..=11).map(|k| 1.0 / k as f64).sum::<f64>();
        assert!(
            (stats.mean - expect).abs() < 0.25 * expect,
            "mean {} vs expected {expect}",
            stats.mean
        );
    }

    #[test]
    fn path_cover_time_is_quadratic_ish() {
        // Cover time of P_n from an end is ~ n² / something; must exceed
        // the coupon-collector bound of a clique of equal size by a lot.
        let n = 16;
        let mut r = rng(5);
        let path_stats = estimate_cover_time(&generators::path(n), 0, 200, 1_000_000, &mut r);
        let clique_stats = estimate_cover_time(&generators::complete(n), 0, 200, 1_000_000, &mut r);
        assert!(path_stats.mean > 3.0 * clique_stats.mean);
        // (n-1)^2 is the exact expected cover time of a path from one end.
        let expect = ((n - 1) * (n - 1)) as f64;
        assert!((path_stats.mean - expect).abs() < 0.25 * expect);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_panics() {
        let g = cct_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut r = rng(6);
        let _ = estimate_cover_time(&g, 0, 2, 100, &mut r);
    }
}
