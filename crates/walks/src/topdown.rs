//! The sequential top-down walk-filling algorithms: Outline 1 (§1.3) and
//! the truncated variant of §2.1.2.
//!
//! These are the *specifications* that the distributed sampler in
//! `cct-core` must match (Lemma 4 proves the distributed algorithm agrees
//! with the sequential truncated algorithm). Keeping faithful sequential
//! implementations lets the test suite check distributional equivalence.

use cct_linalg::{sample_index, Matrix};
use rand::Rng;
use std::collections::HashSet;

/// Samples a midpoint between `p` and `q` for a gap of length `2·half`
/// using Formula 1: `Pr[m = j] ∝ P^half[p, j] · P^half[j, q]`.
///
/// `half_power` must be `P^half`. Returns `None` if the conditional
/// distribution has no support (cannot happen for a genuine random-walk
/// pair at the right distance).
pub fn sample_midpoint<R: Rng + ?Sized>(
    half_power: &Matrix,
    p: usize,
    q: usize,
    rng: &mut R,
) -> Option<usize> {
    let n = half_power.rows();
    let weights: Vec<f64> = (0..n)
        .map(|j| half_power[(p, j)] * half_power[(j, q)])
        .collect();
    sample_index(rng, &weights)
}

/// Outline 1: samples a complete random walk of length `ell` (a power of
/// two) starting at `start`, by sampling the endpoint from `P^ell[start,·]`
/// and recursively filling midpoints level by level.
///
/// `table[k]` must hold `P^{2^k}` for `k = 0 ..= log₂ ell`
/// (see [`cct_linalg::powers_of_two`]).
///
/// # Panics
///
/// Panics if `ell` is not a positive power of two, the table is too
/// short, or a midpoint distribution degenerates (which indicates an
/// inconsistent table).
///
/// # Examples
///
/// ```
/// use cct_graph::generators;
/// use cct_linalg::powers_of_two;
/// use cct_walks::{is_valid_walk, top_down_walk};
/// use rand::SeedableRng;
///
/// let g = generators::complete(4);
/// let table = powers_of_two(&g.transition_matrix(), 4, 1); // up to P^8
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let walk = top_down_walk(&table, 0, 8, &mut rng);
/// assert_eq!(walk.len(), 9);
/// assert!(is_valid_walk(&g, &walk));
/// ```
pub fn top_down_walk<R: Rng + ?Sized>(
    table: &[Matrix],
    start: usize,
    ell: u64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        ell >= 1 && ell.is_power_of_two(),
        "ell must be a positive power of two"
    );
    let levels = ell.trailing_zeros() as usize;
    assert!(
        table.len() > levels,
        "power table has {} entries, need {}",
        table.len(),
        levels + 1
    );
    let n = table[0].rows();
    assert!(start < n, "start vertex out of range");
    let mut w = vec![usize::MAX; (ell + 1) as usize];
    w[0] = start;
    w[ell as usize] =
        sample_index(rng, table[levels].row(start)).expect("P^ell row must have support");
    for i in 1..=levels {
        let gap = (ell >> (i - 1)) as usize;
        let half = gap / 2;
        let half_power = &table[levels - i];
        let mut pos = 0usize;
        while pos < ell as usize {
            let (p, q) = (w[pos], w[pos + gap]);
            let m = sample_midpoint(half_power, p, q, rng)
                .expect("midpoint distribution must have support");
            w[pos + half] = m;
            pos += gap;
        }
    }
    w
}

/// A truncated top-down walk (§2.1.2): the walk ends at the stopping time
/// `τ = min(ell, first visit to the ρ-th distinct vertex)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedWalk {
    /// The contiguous walk `W[0..=τ]`.
    pub vertices: Vec<usize>,
    /// Whether the ρ-distinct-vertex budget was reached (`false` means the
    /// full `ell`-length walk had fewer than ρ distinct vertices — the
    /// low-probability failure event of Theorem 1's Monte Carlo variant).
    pub reached_budget: bool,
}

impl TruncatedWalk {
    /// The stopping time `τ` (number of steps).
    pub fn tau(&self) -> u64 {
        (self.vertices.len() - 1) as u64
    }

    /// Distinct vertices in the walk.
    pub fn distinct(&self) -> usize {
        self.vertices.iter().collect::<HashSet<_>>().len()
    }
}

/// §2.1.2: the sequential truncated top-down filling algorithm.
///
/// Level by level, midpoints are filled **chronologically**; as soon as
/// the partial walk's prefix contains `rho` distinct vertices, it is
/// truncated at the first occurrence of the `rho`-th distinct vertex.
/// Because every prefix of a partial walk is a contiguous grid at
/// granularity `ell/2^i`, the partial walk is represented densely.
///
/// `table[k] = P^{2^k}` as in [`top_down_walk`].
///
/// # Panics
///
/// Panics if `ell` is not a positive power of two, `rho < 2`, the table
/// is too short, or a midpoint distribution degenerates.
pub fn truncated_top_down_walk<R: Rng + ?Sized>(
    table: &[Matrix],
    start: usize,
    ell: u64,
    rho: usize,
    rng: &mut R,
) -> TruncatedWalk {
    assert!(
        ell >= 1 && ell.is_power_of_two(),
        "ell must be a positive power of two"
    );
    assert!(rho >= 2, "rho must be at least 2");
    let levels = ell.trailing_zeros() as usize;
    assert!(
        table.len() > levels,
        "power table has {} entries, need {}",
        table.len(),
        levels + 1
    );
    let n = table[0].rows();
    assert!(start < n, "start vertex out of range");

    // grid[j] is the vertex at walk index j · (ell / 2^i) after level i.
    let endpoint =
        sample_index(rng, table[levels].row(start)).expect("P^ell row must have support");
    let mut grid: Vec<usize> = vec![start, endpoint];
    // Truncate the initial partial walk W1 = (s, e) if it already reaches
    // the budget (only possible when rho == 2 and e != s).
    let mut reached = false;
    if rho == 2 && endpoint != start {
        // The 2nd distinct vertex first occurs at the endpoint; truncation
        // cannot shorten anything yet (no interior points exist), but the
        // budget is known to be reachable. Filling continues; interior
        // midpoints may move the first occurrence earlier, handled below.
    }

    for i in 1..=levels {
        let half_power = &table[levels - i];
        let mut new_grid: Vec<usize> = Vec::with_capacity(grid.len() * 2);
        let mut seen: HashSet<usize> = HashSet::new();
        let mut truncated = false;
        for j in 0..grid.len() {
            // Old entry.
            new_grid.push(grid[j]);
            if seen.insert(grid[j]) && seen.len() == rho {
                truncated = true;
                break;
            }
            // Midpoint between old entries j and j+1.
            if j + 1 < grid.len() {
                let m = sample_midpoint(half_power, grid[j], grid[j + 1], rng)
                    .expect("midpoint distribution must have support");
                new_grid.push(m);
                if seen.insert(m) && seen.len() == rho {
                    truncated = true;
                    break;
                }
            }
        }
        reached = truncated || reached;
        if truncated {
            // After a truncation the grid granularity is ell / 2^i and the
            // walk ends exactly at the rho-th distinct vertex.
            grid = new_grid;
            // Later levels only refine *within* the truncated prefix: the
            // loop continues with the shorter grid.
            // (reached stays true; further truncations may shorten more.)
            continue;
        }
        grid = new_grid;
    }
    // Re-derive `reached` from the final contiguous walk (handles the
    // rho == 2 initial case and keeps the flag authoritative).
    let distinct = grid.iter().collect::<HashSet<_>>().len();
    TruncatedWalk {
        vertices: grid,
        reached_budget: distinct >= rho,
    }
}

/// Reference implementation by direct simulation: walk step by step for at
/// most `ell` steps, stopping at the first visit to the `rho`-th distinct
/// vertex. Used to validate [`truncated_top_down_walk`] distributionally.
///
/// # Panics
///
/// Panics if `rho < 2` or the walk reaches an isolated vertex.
pub fn direct_truncated_walk<R: Rng + ?Sized>(
    g: &cct_graph::Graph,
    start: usize,
    ell: u64,
    rho: usize,
    rng: &mut R,
) -> TruncatedWalk {
    assert!(rho >= 2, "rho must be at least 2");
    let mut vertices = vec![start];
    let mut seen = HashSet::new();
    seen.insert(start);
    let mut cur = start;
    let mut reached = seen.len() >= rho;
    for _ in 0..ell {
        if reached {
            break;
        }
        cur = crate::walk::random_step(g, cur, rng);
        vertices.push(cur);
        if seen.insert(cur) && seen.len() >= rho {
            reached = true;
        }
    }
    TruncatedWalk {
        vertices,
        reached_budget: reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use crate::walk::is_valid_walk;
    use cct_graph::{generators, Graph};
    use cct_linalg::powers_of_two;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn top_down_walks_are_valid() {
        for g in [
            generators::complete(5),
            generators::petersen(),
            generators::grid(2, 3),
        ] {
            let table = powers_of_two(&g.transition_matrix(), 6, 1);
            let mut r = rng(31);
            for _ in 0..20 {
                let w = top_down_walk(&table, 0, 32, &mut r);
                assert_eq!(w.len(), 33);
                assert!(is_valid_walk(&g, &w), "invalid walk on n={}", g.n());
            }
        }
    }

    #[test]
    fn top_down_length_one() {
        let g = generators::path(3);
        let table = powers_of_two(&g.transition_matrix(), 1, 1);
        let mut r = rng(32);
        let w = top_down_walk(&table, 1, 1, &mut r);
        assert_eq!(w.len(), 2);
        assert!(g.has_edge(w[0], w[1]));
    }

    /// Exact distribution over complete length-`ell` walks by enumeration.
    fn exact_walk_distribution(g: &Graph, start: usize, ell: usize) -> Vec<(Vec<usize>, f64)> {
        let p = g.transition_matrix();
        let mut out: Vec<(Vec<usize>, f64)> = Vec::new();
        fn rec(
            p: &cct_linalg::Matrix,
            walk: &mut Vec<usize>,
            prob: f64,
            remaining: usize,
            out: &mut Vec<(Vec<usize>, f64)>,
        ) {
            if remaining == 0 {
                out.push((walk.clone(), prob));
                return;
            }
            let u = *walk.last().unwrap();
            for v in 0..p.rows() {
                let pv = p[(u, v)];
                if pv > 0.0 {
                    walk.push(v);
                    rec(p, walk, prob * pv, remaining - 1, out);
                    walk.pop();
                }
            }
        }
        rec(&p, &mut vec![start], 1.0, ell, &mut out);
        out
    }

    #[test]
    fn top_down_matches_exact_walk_distribution() {
        // Triangle plus pendant, ell = 4: small enough to enumerate.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let exact = exact_walk_distribution(&g, 0, 4);
        let table = powers_of_two(&g.transition_matrix(), 3, 1);
        let mut r = rng(33);
        let trials = 40_000;
        let counts =
            stats::empirical_counts((0..trials).map(|_| top_down_walk(&table, 0, 4, &mut r)));
        let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    /// Exact distribution over truncated walks, by enumerating full walks
    /// and applying the truncation rule.
    fn exact_truncated_distribution(
        g: &Graph,
        start: usize,
        ell: usize,
        rho: usize,
    ) -> Vec<(Vec<usize>, f64)> {
        let full = exact_walk_distribution(g, start, ell);
        let mut agg: HashMap<Vec<usize>, f64> = HashMap::new();
        for (walk, prob) in full {
            let mut seen = std::collections::HashSet::new();
            let mut cut = walk.len();
            for (t, &v) in walk.iter().enumerate() {
                seen.insert(v);
                if seen.len() >= rho {
                    cut = t + 1;
                    break;
                }
            }
            *agg.entry(walk[..cut].to_vec()).or_insert(0.0) += prob;
        }
        agg.into_iter().collect()
    }

    #[test]
    fn truncated_matches_exact_distribution_on_triangle() {
        let g = generators::complete(3);
        let (ell, rho) = (8u64, 3usize);
        let exact = exact_truncated_distribution(&g, 0, ell as usize, rho);
        let table = powers_of_two(&g.transition_matrix(), 4, 1);
        let mut r = rng(34);
        let trials = 40_000;
        let counts = stats::empirical_counts(
            (0..trials).map(|_| truncated_top_down_walk(&table, 0, ell, rho, &mut r).vertices),
        );
        let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn truncated_matches_direct_simulation_on_path() {
        // Bipartite path P4 — exercises parity consistency.
        let g = generators::path(4);
        let (ell, rho) = (8u64, 3usize);
        let exact = exact_truncated_distribution(&g, 0, ell as usize, rho);
        let table = powers_of_two(&g.transition_matrix(), 4, 1);
        let trials = 30_000;
        let mut r = rng(35);
        let top_counts = stats::empirical_counts(
            (0..trials).map(|_| truncated_top_down_walk(&table, 0, ell, rho, &mut r).vertices),
        );
        let (stat, crit) = stats::goodness_of_fit(&top_counts, &exact, trials);
        assert!(stat < crit, "top-down: chi² = {stat:.1} ≥ {crit:.1}");
        // The direct simulator must match the same exact distribution.
        let mut r = rng(36);
        let dir_counts = stats::empirical_counts(
            (0..trials).map(|_| direct_truncated_walk(&g, 0, ell, rho, &mut r).vertices),
        );
        let (stat, crit) = stats::goodness_of_fit(&dir_counts, &exact, trials);
        assert!(stat < crit, "direct: chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn truncated_walk_ends_at_rho_th_distinct() {
        let g = generators::complete(6);
        let table = powers_of_two(&g.transition_matrix(), 6, 1);
        let mut r = rng(37);
        for _ in 0..50 {
            let tw = truncated_top_down_walk(&table, 0, 32, 4, &mut r);
            assert!(tw.reached_budget);
            assert_eq!(tw.distinct(), 4);
            assert!(is_valid_walk(&g, &tw.vertices));
            // The final vertex appears exactly once (it is the 4th
            // distinct vertex's first occurrence).
            let last = *tw.vertices.last().unwrap();
            assert_eq!(tw.vertices.iter().filter(|&&v| v == last).count(), 1);
            // Every proper prefix has < 4 distinct vertices.
            let prefix: std::collections::HashSet<_> =
                tw.vertices[..tw.vertices.len() - 1].iter().collect();
            assert_eq!(prefix.len(), 3);
        }
    }

    #[test]
    fn truncated_walk_budget_failure_flagged() {
        // A 2-path can never visit 3 distinct vertices... it can (0,1,2).
        // Use rho larger than n instead: budget is unreachable.
        let g = generators::path(3);
        let table = powers_of_two(&g.transition_matrix(), 3, 1);
        let mut r = rng(38);
        let tw = truncated_top_down_walk(&table, 0, 4, 4, &mut r);
        assert!(!tw.reached_budget);
        assert_eq!(tw.tau(), 4); // full length
    }

    #[test]
    fn tau_statistics_match_direct() {
        // Mean stopping time of the top-down truncated walk must match the
        // direct simulation (cheap consistency check on a non-trivial
        // graph).
        let g = generators::lollipop(4, 2);
        let table = powers_of_two(&g.transition_matrix(), 7, 1);
        let (ell, rho) = (64u64, 4usize);
        let trials = 4000;
        let mut r = rng(39);
        let mean_top: f64 = (0..trials)
            .map(|_| truncated_top_down_walk(&table, 0, ell, rho, &mut r).tau() as f64)
            .sum::<f64>()
            / trials as f64;
        let mean_dir: f64 = (0..trials)
            .map(|_| direct_truncated_walk(&g, 0, ell, rho, &mut r).tau() as f64)
            .sum::<f64>()
            / trials as f64;
        let tol = 6.0 * (mean_top.max(mean_dir) / (trials as f64).sqrt()).max(0.2);
        assert!(
            (mean_top - mean_dir).abs() < tol,
            "mean τ: top-down {mean_top:.2} vs direct {mean_dir:.2} (tol {tol:.2})"
        );
    }
}
