//! Property-based tests for walk primitives and the top-down samplers.

use cct_graph::generators;
use cct_linalg::powers_of_two;
use cct_walks::{
    aldous_broder, first_visit_edges, is_valid_walk, random_walk, top_down_walk,
    truncated_top_down_walk, wilson,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_walks_are_valid(n in 3usize..=20, len in 0usize..=80, seed in any::<u64>()) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.5, &mut gr);
        let w = random_walk(&g, seed as usize % n, len, &mut gr);
        prop_assert_eq!(w.len(), len + 1);
        prop_assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn first_visit_edges_never_repeat_vertices(n in 3usize..=15, seed in any::<u64>()) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.5, &mut gr);
        let w = random_walk(&g, 0, 200, &mut gr);
        let fv = first_visit_edges(&w);
        let mut seen = std::collections::HashSet::new();
        seen.insert(0usize);
        for (v, (prev, v2)) in fv {
            prop_assert_eq!(v, v2);
            prop_assert!(seen.contains(&prev), "predecessor must already be visited");
            prop_assert!(seen.insert(v), "vertex {} visited twice", v);
        }
    }

    #[test]
    fn ab_and_wilson_trees_valid(n in 2usize..=16, seed in any::<u64>()) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.6, &mut gr);
        let t1 = aldous_broder(&g, 0, &mut gr).unwrap();
        let t2 = wilson(&g, n - 1, &mut gr).unwrap();
        for t in [t1, t2] {
            prop_assert_eq!(t.edges().len(), n - 1);
            for &(u, v) in t.edges() {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn top_down_walks_valid_any_length(
        n in 3usize..=12,
        log_ell in 0u32..=8,
        seed in any::<u64>(),
    ) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.6, &mut gr);
        let ell = 1u64 << log_ell;
        let table = powers_of_two(&g.transition_matrix(), log_ell as usize + 1, 1);
        let w = top_down_walk(&table, 0, ell, &mut gr);
        prop_assert_eq!(w.len() as u64, ell + 1);
        prop_assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn truncated_walk_invariants(
        n in 4usize..=12,
        rho in 2usize..=5,
        seed in any::<u64>(),
    ) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.6, &mut gr);
        let ell = 256u64;
        let table = powers_of_two(&g.transition_matrix(), 9, 1);
        let tw = truncated_top_down_walk(&table, 0, ell, rho, &mut gr);
        prop_assert!(is_valid_walk(&g, &tw.vertices));
        prop_assert!(tw.tau() <= ell);
        if tw.reached_budget {
            prop_assert_eq!(tw.distinct(), rho);
            // The last vertex is the ρ-th distinct vertex's first (and
            // only) occurrence.
            let last = *tw.vertices.last().unwrap();
            prop_assert_eq!(tw.vertices.iter().filter(|&&v| v == last).count(), 1);
        } else {
            prop_assert_eq!(tw.tau(), ell);
            prop_assert!(tw.distinct() < rho);
        }
    }
}
