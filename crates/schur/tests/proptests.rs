//! Property-based tests for the derivative graphs: identities between
//! the Laplacian-elimination route and the shortcut-matrix route, and
//! probabilistic invariants of `Q` and `S`.

use cct_graph::generators;
use cct_linalg::is_row_stochastic;
use cct_schur::{
    entry_matrix, schur_laplacian, schur_transition_exact, schur_transition_from_shortcut,
    shortcut_by_squaring, shortcut_by_squaring_dense, shortcut_exact, VertexSubset,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a connected graph with a proper subset S of ≥ 2 vertices.
fn graph_and_subset() -> impl Strategy<Value = (cct_graph::Graph, VertexSubset)> {
    (4usize..=12, any::<u64>(), 2usize..=5).prop_map(|(n, seed, s_size)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.5, &mut rng);
        let s_size = s_size.min(n - 1).max(2);
        let vertices: Vec<usize> = (0..s_size).map(|i| (i * 7 + seed as usize) % n).collect();
        let mut s = VertexSubset::new(n, &vertices);
        if s.len() < 2 {
            s = VertexSubset::new(n, &[0, n - 1]);
        }
        (g, s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn schur_laplacian_is_a_laplacian((g, s) in graph_and_subset()) {
        let l = schur_laplacian(&g, &s);
        for i in 0..s.len() {
            prop_assert!(l.row(i).iter().sum::<f64>().abs() < 1e-8, "row {i} sum");
            for j in 0..s.len() {
                prop_assert!((l[(i, j)] - l[(j, i)]).abs() < 1e-8);
                if i != j {
                    prop_assert!(l[(i, j)] <= 1e-8, "positive off-diagonal");
                }
            }
        }
    }

    #[test]
    fn schur_transition_is_stochastic_no_self_loops((g, s) in graph_and_subset()) {
        let t = schur_transition_exact(&g, &s);
        prop_assert!(is_row_stochastic(&t, 1e-8));
        for i in 0..s.len() {
            prop_assert_eq!(t[(i, i)], 0.0);
        }
    }

    #[test]
    fn corollary3_equals_laplacian_route((g, s) in graph_and_subset()) {
        let exact = schur_transition_exact(&g, &s);
        let q = shortcut_exact(&g, &s);
        let via_q = schur_transition_from_shortcut(&g, &s, &q);
        prop_assert!(exact.max_abs_diff(&via_q) < 1e-8);
    }

    #[test]
    fn shortcut_rows_are_distributions((g, s) in graph_and_subset()) {
        let q = shortcut_exact(&g, &s);
        for u in 0..g.n() {
            let sum: f64 = (0..g.n()).map(|v| q[(u, v)]).sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "row {u} sums to {sum}");
            prop_assert!((0..g.n()).all(|v| q[(u, v)] >= -1e-10));
        }
    }

    #[test]
    fn squaring_under_approximates_exact((g, s) in graph_and_subset()) {
        let exact = shortcut_exact(&g, &s);
        let (approx, _) = shortcut_by_squaring(&g, &s, 1e-10, 64);
        for u in 0..g.n() {
            for v in 0..g.n() {
                prop_assert!(approx[(u, v)] <= exact[(u, v)] + 1e-9);
            }
        }
        prop_assert!(exact.max_abs_diff(&approx) < 1e-7);
    }

    #[test]
    fn block_squaring_agrees_with_dense_2n((g, s) in graph_and_subset()) {
        // The block update (Q, R) → (Q², QR + R) must reproduce the
        // generic dense 2n × 2n squaring of the absorbing chain on random
        // graphs/subsets, at both a loose (fixed-point-scale) and a tight
        // tolerance, with the same squaring count. (The implementation is
        // in fact bit-identical — asserted exactly in the unit suite —
        // but the property pins the contract at the 1e-12 tolerance the
        // sampler's fixed-point pipeline relies on.)
        for tol in [1e-4, 1e-12] {
            let (block, used_b) = shortcut_by_squaring(&g, &s, tol, 64);
            let (dense, used_d) = shortcut_by_squaring_dense(&g, &s, tol, 64);
            prop_assert_eq!(used_b, used_d, "squaring counts diverged at tol {}", tol);
            prop_assert!(
                block.max_abs_diff(&dense) <= 1e-12,
                "tol {}: diff {}",
                tol,
                block.max_abs_diff(&dense)
            );
        }
    }

    #[test]
    fn entry_matrix_rows_stochastic((g, s) in graph_and_subset()) {
        let r = entry_matrix(&g, &s);
        for u in 0..g.n() {
            let sum: f64 = (0..g.n()).map(|v| r[(u, v)]).sum();
            prop_assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn schur_of_schur_composes((n, seed) in (6usize..=10, any::<u64>())) {
        // Schur(Schur(G, S1), S2) = Schur(G, S2) for S2 ⊆ S1 — the
        // transitivity that lets phases shrink S incrementally.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.6, &mut rng);
        let s1_list: Vec<usize> = (0..n).filter(|v| v % 2 == 0 || *v < 4).collect();
        let s1 = VertexSubset::new(n, &s1_list);
        let h = cct_schur::schur_graph(&g, &s1).unwrap();
        // S2: the first three vertices of S1 (local ids 0, 1, 2).
        let s2_local = VertexSubset::new(h.n(), &[0, 1, 2]);
        let s2_global = VertexSubset::new(n, &[s1.global(0), s1.global(1), s1.global(2)]);
        let via_h = schur_transition_exact(&h, &s2_local);
        let direct = schur_transition_exact(&g, &s2_global);
        prop_assert!(via_h.max_abs_diff(&direct) < 1e-7);
    }
}
