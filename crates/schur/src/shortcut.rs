//! The shortcut graph `ShortCut(G, S)` — Definition 3, Corollary 2.
//!
//! `Q[u, v]` is the probability that a walk started at `u` in `G` sits at
//! `v` immediately before its first arrival (at time > 0) in `S`. The
//! sampler uses `Q` to recover *first-visit edges in `G`* from a walk
//! taken on the Schur complement (Algorithm 4).
//!
//! Two constructions are provided:
//! * [`shortcut_exact`] — the fundamental-matrix solve
//!   `Q = (I − T)^{-1} · A` (reference);
//! * [`shortcut_by_squaring`] — the paper's distributed route
//!   (Corollary 2): iterated squaring of the `2n × 2n` absorbing chain
//!   `R`, which converges to `R^∞` with `Q[u,v] = R^∞[u', v'']`. Returns
//!   the number of multiplications so the caller (`cct-core`) can charge
//!   matrix-multiplication rounds.

use crate::VertexSubset;
use cct_graph::Graph;
use cct_linalg::{CsrMatrix, Lu, Matrix, PMatrix, Repr};

/// Exact shortcut transition matrix via the fundamental matrix:
/// `Q = (I − T)^{-1} A`, where `T[u,v] = P[u,v]·[v ∉ S]` and
/// `A = diag(Σ_{v∈S} P[u,v])`.
///
/// # Panics
///
/// Panics if `s` is empty, its universe differs from `g.n()`, or the
/// system is singular (impossible for non-empty `S` in a connected `G`).
pub fn shortcut_exact(g: &Graph, s: &VertexSubset) -> Matrix {
    let n = g.n();
    assert_eq!(s.universe(), n, "subset universe must match graph");
    assert!(!s.is_empty(), "S must be non-empty");
    let p = g.transition_matrix();
    // T: transitions that stay outside S; a[u]: one-step absorption mass.
    let mut i_minus_t = Matrix::identity(n);
    let mut a = vec![0.0f64; n];
    for u in 0..n {
        for v in 0..n {
            if p[(u, v)] == 0.0 {
                continue;
            }
            if s.contains(v) {
                a[u] += p[(u, v)];
            } else {
                i_minus_t[(u, v)] -= p[(u, v)];
            }
        }
    }
    let lu = Lu::new(&i_minus_t).expect("I - T is invertible when S is reachable");
    let inv = lu.inverse();
    Matrix::from_fn(n, n, |u, v| inv[(u, v)] * a[v])
}

/// The auxiliary absorbing chain of Corollary 2 on `L ∪ R` (two copies of
/// `V`): `R[u', v'] = P[u,v]` for `v ∉ S`, `R[u', u''] = Σ_{v∈S} P[u,v]`,
/// `R[u'', u''] = 1`. Indices: `u' = u`, `u'' = n + u`.
pub fn absorbing_chain(g: &Graph, s: &VertexSubset) -> Matrix {
    let n = g.n();
    assert_eq!(s.universe(), n, "subset universe must match graph");
    let p = g.transition_matrix();
    let mut r = Matrix::zeros(2 * n, 2 * n);
    for u in 0..n {
        r[(n + u, n + u)] = 1.0;
        for v in 0..n {
            if p[(u, v)] == 0.0 {
                continue;
            }
            if s.contains(v) {
                r[(u, n + u)] += p[(u, v)];
            } else {
                r[(u, v)] += p[(u, v)];
            }
        }
    }
    r
}

/// The two live blocks of the Corollary-2 absorbing chain: the transient
/// block `T = R[L, L]` (walk stays outside `S`) and the absorption block
/// `A = R[L, R]` (mass that has arrived in `S`, indexed by the pre-entry
/// vertex). The bottom half `[0, I]` is constant under squaring and never
/// materialized.
pub fn absorbing_chain_blocks(g: &Graph, s: &VertexSubset) -> (Matrix, Matrix) {
    let n = g.n();
    assert_eq!(s.universe(), n, "subset universe must match graph");
    let p = g.transition_matrix();
    let mut t = Matrix::zeros(n, n);
    let mut a = Matrix::zeros(n, n);
    for u in 0..n {
        for v in 0..n {
            if p[(u, v)] == 0.0 {
                continue;
            }
            if s.contains(v) {
                a[(u, u)] += p[(u, v)];
            } else {
                t[(u, v)] += p[(u, v)];
            }
        }
    }
    (t, a)
}

/// Corollary 2: computes `Q` by iterated squaring of the absorbing chain
/// until the transient mass drops below `tol` (or `max_squarings` is
/// reached). Returns `(Q, squarings_used)` — the caller charges
/// `squarings_used` matrix multiplications of a `2n × 2n` matrix (the
/// *analytic* figure of the distributed protocol, 4× an `n × n` multiply;
/// see `cct-core`'s ledger charges).
///
/// The chain `R = [[T, A], [0, I]]` is block triangular with a constant
/// bottom half, so `R² = [[T², TA + A], [0, I]]`: each squaring is two
/// `n × n` products — `(T, A) ← (T², TA + A)` — written into reused
/// scratch buffers, instead of the eight-`n × n`-multiply-equivalent
/// dense `2n × 2n` square. The result is bit-identical to the dense route
/// ([`shortcut_by_squaring_dense`], kept as the reference): every entry
/// accumulates the same products in the same order.
///
/// The result under-approximates the true `Q` by at most the residual
/// transient mass (a subtractive error, as §2.4 requires).
///
/// # Panics
///
/// Panics if `s` is empty or the universe mismatches.
pub fn shortcut_by_squaring(
    g: &Graph,
    s: &VertexSubset,
    tol: f64,
    max_squarings: usize,
) -> (Matrix, usize) {
    let n = g.n();
    assert!(!s.is_empty(), "S must be non-empty");
    let (mut t, mut a) = absorbing_chain_blocks(g, s);
    let mut t_next = Matrix::zeros(n, n);
    let mut a_next = Matrix::zeros(n, n);
    let mut used = 0;
    while used < max_squarings {
        // Largest remaining transient mass: max over rows of `T`'s total.
        let worst: f64 = (0..n)
            .map(|u| t.row(u).iter().sum::<f64>())
            .fold(0.0, f64::max);
        if worst <= tol {
            break;
        }
        // (T, A) ← (T², T·A + A). The dense 2n × 2n kernel accumulates
        // the `T·A` inner products first (inner index < n) and the lone
        // `A·I` term last — matched here by `matmul_into` then
        // `add_in_place`, so the blocks stay bit-identical to it.
        t.square_into(&mut t_next);
        t.matmul_into(&a, &mut a_next);
        a_next.add_in_place(&a);
        std::mem::swap(&mut t, &mut t_next);
        std::mem::swap(&mut a, &mut a_next);
        used += 1;
    }
    (a, used)
}

/// The Corollary-2 live blocks in the requested representation: the
/// sparse route builds `T` (one CSR entry per edge leaving `S`) and the
/// diagonal `A` directly from the adjacency lists, without the dense
/// `n × n` buffers. Entry values use the same `w/deg` arithmetic and
/// per-row accumulation order as [`absorbing_chain_blocks`], so the two
/// representations hold bit-identical probabilities.
///
/// # Panics
///
/// Panics if the subset universe mismatches the graph.
pub fn absorbing_chain_blocks_p(g: &Graph, s: &VertexSubset, repr: Repr) -> (PMatrix, PMatrix) {
    let n = g.n();
    assert_eq!(s.universe(), n, "subset universe must match graph");
    match repr {
        Repr::Dense => {
            let (t, a) = absorbing_chain_blocks(g, s);
            (PMatrix::Dense(t), PMatrix::Dense(a))
        }
        Repr::Sparse => {
            let mut tb = CsrMatrix::builder(n, n);
            let mut ab = CsrMatrix::builder(n, n);
            for u in 0..n {
                let d = g.degree(u);
                let mut absorb = 0.0f64;
                for &(v, w) in g.neighbors(u) {
                    // Same accumulation order as the dense route: the
                    // adjacency list is sorted by v, matching its
                    // `for v in 0..n` sweep.
                    let p_uv = w / d;
                    if s.contains(v) {
                        absorb += p_uv;
                    } else {
                        tb.push(v, p_uv);
                    }
                }
                tb.finish_row();
                ab.push(u, absorb);
                ab.finish_row();
            }
            (PMatrix::Sparse(tb.build()), PMatrix::Sparse(ab.build()))
        }
    }
}

/// [`shortcut_by_squaring`] on the representation-adaptive backend:
/// starts in `repr` (the sparse route squares CSR blocks, promoting to
/// dense automatically as fill-in crosses the [`PMatrix`] tracker's
/// break-even) and returns `Q` in whatever representation it ended in.
///
/// The result is **bit-identical** to [`shortcut_by_squaring`] (and so
/// to [`shortcut_by_squaring_dense`]) for every representation: each
/// squaring performs `(T, A) ← (T², T·A + A)` with the same per-entry
/// accumulation order in both kernels, and the convergence check reads
/// the same row sums. Unit- and property-tested at exact equality.
///
/// # Panics
///
/// Panics if `s` is empty or the universe mismatches.
pub fn shortcut_by_squaring_pmatrix(
    g: &Graph,
    s: &VertexSubset,
    tol: f64,
    max_squarings: usize,
    repr: Repr,
) -> (PMatrix, usize) {
    if repr == Repr::Dense {
        let (q, used) = shortcut_by_squaring(g, s, tol, max_squarings);
        return (PMatrix::Dense(q), used);
    }
    let n = g.n();
    assert!(!s.is_empty(), "S must be non-empty");
    let (mut t, mut a) = absorbing_chain_blocks_p(g, s, Repr::Sparse);
    let mut used = 0;
    while used < max_squarings {
        let worst: f64 = (0..n).map(|u| t.row_sum(u)).fold(0.0, f64::max);
        if worst <= tol {
            break;
        }
        // (T, A) ← (T², T·A + A), exactly as the dense block route —
        // the sparse kernels consume the inner index in the same
        // strictly increasing order, and the `+ A` term lands last.
        let t_next = t.square(1);
        let mut a_next = t.matmul(&a, 1);
        a_next.add_in_place(&a);
        t = t_next;
        a = a_next;
        used += 1;
    }
    (a, used)
}

/// The pre-block-decomposition reference: dense iterated squaring of the
/// full `2n × 2n` absorbing chain. Kept for the equivalence test suite
/// and the `e18` benchmark; [`shortcut_by_squaring`] returns bit-identical
/// results at a quarter of the flops.
pub fn shortcut_by_squaring_dense(
    g: &Graph,
    s: &VertexSubset,
    tol: f64,
    max_squarings: usize,
) -> (Matrix, usize) {
    let n = g.n();
    let mut r = absorbing_chain(g, s);
    let mut scratch = Matrix::zeros(2 * n, 2 * n);
    let mut used = 0;
    while used < max_squarings {
        // Largest remaining transient mass: max over L-rows of the total
        // probability still on L-columns.
        let worst: f64 = (0..n)
            .map(|u| r.row(u)[..n].iter().sum::<f64>())
            .fold(0.0, f64::max);
        if worst <= tol {
            break;
        }
        r.square_into(&mut scratch);
        std::mem::swap(&mut r, &mut scratch);
        used += 1;
    }
    let q = Matrix::from_fn(n, n, |u, v| r[(u, n + v)]);
    (q, used)
}

/// Samples the first-visit edge `(u, v)` for a vertex `v ∈ S`, given that
/// the walk's previous Schur-visit was `prev ∈ S` — Algorithm 4.
///
/// By Bayes' rule the predecessor `u` is drawn over `N_G(v)` with weight
/// `Q[prev, u] · w(u,v) / wdeg_S(u)`, where `wdeg_S(u)` is `u`'s weighted
/// degree into `S` (for unweighted graphs, `1/deg_S(u)` as in the paper).
///
/// Returns `None` only if the distribution degenerates (inconsistent
/// inputs).
///
/// # Panics
///
/// Panics if `v` has no neighbors.
pub fn sample_first_visit_edge<R: rand::Rng + ?Sized>(
    g: &Graph,
    s: &VertexSubset,
    q: &Matrix,
    prev: usize,
    v: usize,
    rng: &mut R,
) -> Option<(usize, usize)> {
    sample_first_visit_edge_with(g, s, |u0, u| q[(u0, u)], prev, v, rng)
}

/// [`sample_first_visit_edge`] with the shortcut matrix supplied as a
/// lookup `q(u0, u) = Q[u0, u]` instead of a materialized [`Matrix`].
///
/// This lets phase 1 of the sampler (where `S = V` and `Q` is the
/// identity — a walk's pre-`S` vertex *is* its previous vertex) pass
/// `|u0, u| f64::from(u0 == u)` instead of allocating a dense `n × n`
/// identity it reads `O(deg)` entries of.
///
/// # Panics
///
/// Panics if `v` has no neighbors.
pub fn sample_first_visit_edge_with<R: rand::Rng + ?Sized>(
    g: &Graph,
    s: &VertexSubset,
    q: impl Fn(usize, usize) -> f64,
    prev: usize,
    v: usize,
    rng: &mut R,
) -> Option<(usize, usize)> {
    let nbrs = g.neighbors(v);
    assert!(!nbrs.is_empty(), "vertex {v} has no neighbors");
    let weights: Vec<f64> = nbrs
        .iter()
        .map(|&(u, w_uv)| {
            let wdeg_s: f64 = g
                .neighbors(u)
                .iter()
                .filter(|&&(x, _)| s.contains(x))
                .map(|&(_, w)| w)
                .sum();
            if wdeg_s > 0.0 {
                q(prev, u) * w_uv / wdeg_s
            } else {
                0.0
            }
        })
        .collect();
    cct_linalg::sample_index(rng, &weights).map(|idx| (nbrs[idx].0, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use cct_walks::random_step;
    use rand::SeedableRng;

    /// The paper's Figure 2 graph: a star with centre C and leaves
    /// A, B, D. Vertex ids: A=0, B=1, C=2, D=3; S = {A, B, D}.
    fn figure2() -> (Graph, VertexSubset) {
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (3, 2)]).unwrap();
        let s = VertexSubset::new(4, &[0, 1, 3]);
        (g, s)
    }

    #[test]
    fn figure2_shortcut_always_points_to_c() {
        let (g, s) = figure2();
        let q = shortcut_exact(&g, &s);
        // "In the shortcut graph every vertex always transitions to C."
        for u in 0..4 {
            assert!((q[(u, 2)] - 1.0).abs() < 1e-12, "Q[{u}, C] = {}", q[(u, 2)]);
            for v in [0usize, 1, 3] {
                assert!(q[(u, v)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn squaring_matches_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for g in [
            generators::complete(6),
            generators::lollipop(4, 3),
            generators::grid(2, 4),
            generators::erdos_renyi_connected(9, 0.45, &mut rng),
        ] {
            let s = VertexSubset::new(g.n(), &[0, 1, 2]);
            let exact = shortcut_exact(&g, &s);
            let (approx, used) = shortcut_by_squaring(&g, &s, 1e-12, 64);
            assert!(used > 0);
            assert!(
                exact.max_abs_diff(&approx) < 1e-9,
                "n = {}: diff {}",
                g.n(),
                exact.max_abs_diff(&approx)
            );
            // Subtractive: the squared chain never overshoots.
            for u in 0..g.n() {
                for v in 0..g.n() {
                    assert!(approx[(u, v)] <= exact[(u, v)] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn block_squaring_is_bit_identical_to_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for g in [
            generators::complete(6),
            generators::lollipop(4, 3),
            generators::grid(2, 4),
            generators::petersen(),
            generators::erdos_renyi_connected(12, 0.4, &mut rng),
        ] {
            let s = VertexSubset::new(g.n(), &[0, 1, 2]);
            for tol in [1e-3, 1e-12] {
                let (block, used_b) = shortcut_by_squaring(&g, &s, tol, 64);
                let (dense, used_d) = shortcut_by_squaring_dense(&g, &s, tol, 64);
                assert_eq!(used_b, used_d, "n = {}, tol = {tol}", g.n());
                // Same products, same accumulation order: exactly equal,
                // not merely close.
                assert_eq!(block, dense, "n = {}, tol = {tol}", g.n());
            }
        }
    }

    #[test]
    fn pmatrix_squaring_is_bit_identical_in_both_representations() {
        // The adaptive route must reproduce the dense block route
        // exactly — same Q bits, same squaring count — whether it starts
        // sparse (promoting as fill-in grows) or dense.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for g in [
            generators::cycle(24),
            generators::grid(3, 5),
            generators::petersen(),
            generators::erdos_renyi_connected(14, 0.3, &mut rng),
        ] {
            let s = VertexSubset::new(g.n(), &[0, 1, 2]);
            for tol in [1e-3, 1e-12] {
                let (reference, used_ref) = shortcut_by_squaring(&g, &s, tol, 64);
                for repr in [Repr::Dense, Repr::Sparse] {
                    let (q, used) = shortcut_by_squaring_pmatrix(&g, &s, tol, 64, repr);
                    assert_eq!(used, used_ref, "n = {}, tol = {tol}, {repr:?}", g.n());
                    assert_eq!(
                        q.to_dense(),
                        reference,
                        "n = {}, tol = {tol}, {repr:?}",
                        g.n()
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_absorbing_blocks_match_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for g in [
            generators::lollipop(4, 3),
            generators::erdos_renyi_connected(11, 0.4, &mut rng),
        ] {
            let s = VertexSubset::new(g.n(), &[0, 2, 4]);
            let (td, ad) = absorbing_chain_blocks(&g, &s);
            let (ts, asp) = absorbing_chain_blocks_p(&g, &s, Repr::Sparse);
            assert!(ts.is_sparse() && asp.is_sparse());
            assert_eq!(ts.to_dense(), td);
            assert_eq!(asp.to_dense(), ad);
        }
    }

    #[test]
    fn absorbing_chain_blocks_match_full_chain() {
        let (g, s) = figure2();
        let full = absorbing_chain(&g, &s);
        let (t, a) = absorbing_chain_blocks(&g, &s);
        let n = g.n();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(t[(u, v)], full[(u, v)]);
                assert_eq!(a[(u, v)], full[(u, n + v)]);
                assert_eq!(full[(n + u, v)], 0.0);
                assert_eq!(full[(n + u, n + v)], f64::from(u == v));
            }
        }
    }

    #[test]
    fn first_visit_edge_with_identity_matches_matrix() {
        // With S = V, Q = I: the closure form must consume the same rng
        // stream and return the same edges as the materialized identity.
        let g = generators::petersen();
        let s = VertexSubset::full(10);
        let id = Matrix::identity(10);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(21);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(21);
        for prev in 0..10 {
            for &(v, _) in g.neighbors(prev) {
                let a = sample_first_visit_edge(&g, &s, &id, prev, v, &mut r1);
                let b = sample_first_visit_edge_with(
                    &g,
                    &s,
                    |u0, u| f64::from(u0 == u),
                    prev,
                    v,
                    &mut r2,
                );
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn q_rows_are_distributions() {
        let g = generators::petersen();
        let s = VertexSubset::new(10, &[0, 4, 7]);
        let q = shortcut_exact(&g, &s);
        for u in 0..10 {
            let sum: f64 = (0..10).map(|v| q[(u, v)]).sum();
            assert!((sum - 1.0).abs() < 1e-10, "row {u} sums to {sum}");
            assert!((0..10).all(|v| q[(u, v)] >= -1e-12));
        }
    }

    #[test]
    fn q_matches_monte_carlo() {
        // Empirically estimate Pr[x_{j-1} = v] and compare with Q.
        let g = generators::lollipop(4, 2); // vertices 0..5
        let s = VertexSubset::new(6, &[0, 5]);
        let q = shortcut_exact(&g, &s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let start = 2usize;
        let trials = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..trials {
            let mut prev;
            let mut cur = start;
            loop {
                let next = random_step(&g, cur, &mut rng);
                prev = cur;
                cur = next;
                if s.contains(cur) {
                    break;
                }
            }
            counts[prev] += 1;
        }
        for v in 0..6 {
            let emp = counts[v] as f64 / trials as f64;
            let sigma = (q[(start, v)].max(1e-9) * (1.0 - q[(start, v)]) / trials as f64).sqrt();
            assert!(
                (emp - q[(start, v)]).abs() < 5.0 * sigma + 0.005,
                "v = {v}: empirical {emp} vs Q {}",
                q[(start, v)]
            );
        }
    }

    #[test]
    fn s_equals_v_makes_q_identity_like() {
        // With S = V, the first S-visit is the first step, so Q[u, v] is 1
        // iff v = u (the walk is at u just before its first step).
        let g = generators::complete(5);
        let s = VertexSubset::full(5);
        let q = shortcut_exact(&g, &s);
        assert!(q.max_abs_diff(&Matrix::identity(5)) < 1e-12);
    }

    #[test]
    fn first_visit_edge_sampling_figure2() {
        // On the star, every first-visit edge must be (C, v).
        let (g, s) = figure2();
        let q = shortcut_exact(&g, &s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let e = sample_first_visit_edge(&g, &s, &q, 0, 1, &mut rng).unwrap();
            assert_eq!(e, (2, 1));
        }
    }

    #[test]
    fn first_visit_edge_weights_match_bayes_on_clique() {
        // On K4 with S = V, prev = v's predecessor directly: Q = I, so the
        // only positive-weight neighbor of v is prev itself.
        let g = generators::complete(4);
        let s = VertexSubset::full(4);
        let q = shortcut_exact(&g, &s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let e = sample_first_visit_edge(&g, &s, &q, 3, 1, &mut rng).unwrap();
            assert_eq!(e, (3, 1));
        }
    }
}
