//! Vertex subsets with O(1) membership and index lookup.
//!
//! The phase machinery constantly works with `S = {unvisited} ∪ {v_f}`
//! (§2.2) and needs to hop between a vertex's global id in `G` and its
//! row index in the `|S| × |S|` Schur transition matrix.

/// A subset of `0..n` with constant-time membership tests and
/// global↔local index maps.
///
/// # Examples
///
/// ```
/// use cct_schur::VertexSubset;
///
/// let s = VertexSubset::new(5, &[4, 1, 3]);
/// assert_eq!(s.list(), &[1, 3, 4]); // sorted
/// assert!(s.contains(3));
/// assert!(!s.contains(0));
/// assert_eq!(s.local_index(3), Some(1));
/// assert_eq!(s.global(2), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexSubset {
    n: usize,
    list: Vec<usize>,
    member: Vec<bool>,
    local: Vec<usize>,
}

impl VertexSubset {
    /// Builds a subset of `0..n` from (unsorted, possibly duplicated)
    /// vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is `>= n`.
    pub fn new(n: usize, vertices: &[usize]) -> Self {
        let mut member = vec![false; n];
        for &v in vertices {
            assert!(v < n, "vertex {v} out of range for n = {n}");
            member[v] = true;
        }
        let list: Vec<usize> = (0..n).filter(|&v| member[v]).collect();
        let mut local = vec![usize::MAX; n];
        for (i, &v) in list.iter().enumerate() {
            local[v] = i;
        }
        VertexSubset {
            n,
            list,
            member,
            local,
        }
    }

    /// The full set `0..n`.
    pub fn full(n: usize) -> Self {
        let all: Vec<usize> = (0..n).collect();
        VertexSubset::new(n, &all)
    }

    /// The complement within `0..n`.
    pub fn complement(&self) -> VertexSubset {
        let rest: Vec<usize> = (0..self.n).filter(|&v| !self.member[v]).collect();
        VertexSubset::new(self.n, &rest)
    }

    /// Ground-set size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Sorted member list.
    pub fn list(&self) -> &[usize] {
        &self.list
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// `true` if the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        v < self.n && self.member[v]
    }

    /// The local (row) index of member `v`, or `None` if absent.
    pub fn local_index(&self, v: usize) -> Option<usize> {
        if self.contains(v) {
            Some(self.local[v])
        } else {
            None
        }
    }

    /// The global vertex id of local index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn global(&self, i: usize) -> usize {
        self.list[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        let s = VertexSubset::new(6, &[5, 0, 2]);
        for (i, &v) in s.list().iter().enumerate() {
            assert_eq!(s.local_index(v), Some(i));
            assert_eq!(s.global(i), v);
        }
        assert_eq!(s.local_index(1), None);
    }

    #[test]
    fn duplicates_collapse() {
        let s = VertexSubset::new(4, &[1, 1, 1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.list(), &[1]);
    }

    #[test]
    fn complement_partitions() {
        let s = VertexSubset::new(5, &[0, 2]);
        let c = s.complement();
        assert_eq!(c.list(), &[1, 3, 4]);
        assert_eq!(s.len() + c.len(), 5);
        for v in 0..5 {
            assert!(s.contains(v) ^ c.contains(v));
        }
    }

    #[test]
    fn full_set() {
        let s = VertexSubset::full(3);
        assert_eq!(s.len(), 3);
        assert!(s.complement().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = VertexSubset::new(2, &[2]);
    }
}
