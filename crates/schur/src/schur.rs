//! The Schur complement graph `Schur(G, S)` — Definitions 1–2,
//! Corollary 3.
//!
//! Walking on `Schur(G, S)` is the same as walking on `G` and watching
//! only the visits to `S` (Theorem 2.4 of Schild \[69\]); the sampler uses
//! it to skip vertices visited in earlier phases. Two constructions:
//!
//! * [`schur_laplacian`] / [`schur_transition_exact`] — Gaussian
//!   elimination on the Laplacian (Definition 1), the sequential
//!   reference;
//! * [`schur_transition_from_shortcut`] — the paper's distributed route
//!   (Corollary 3): `S[u,v] ∝ (Q·R)[u,v]` with per-row normalization
//!   `M_u = 1/(1 − (QR)[u,u])`, built from the shortcut matrix `Q`.

use crate::VertexSubset;
use cct_graph::{Graph, GraphError};
use cct_linalg::{Lu, Matrix, PMatrix};

/// The Schur complement of the Laplacian onto `S` (Definition 1):
/// `L_SS − L_{S,S̄} · L_{S̄,S̄}^{-1} · L_{S̄,S}`, a `|S| × |S|` Laplacian in
/// the local index order of `s.list()`.
///
/// # Panics
///
/// Panics if `s` is empty, its universe differs from `g.n()`, or
/// `L_{S̄,S̄}` is singular (happens only if some component of `G` avoids
/// `S`; connected inputs are safe).
pub fn schur_laplacian(g: &Graph, s: &VertexSubset) -> Matrix {
    let n = g.n();
    assert_eq!(s.universe(), n, "subset universe must match graph");
    assert!(!s.is_empty(), "S must be non-empty");
    let l = g.laplacian();
    let s_idx = s.list().to_vec();
    let c_idx = s.complement().list().to_vec();
    let l_ss = l.submatrix(&s_idx, &s_idx);
    if c_idx.is_empty() {
        return l_ss;
    }
    let l_sc = l.submatrix(&s_idx, &c_idx);
    let l_cc = l.submatrix(&c_idx, &c_idx);
    let l_cs = l.submatrix(&c_idx, &s_idx);
    let lu = Lu::new(&l_cc).expect("L_{S̄,S̄} invertible for connected G");
    let solved = lu.solve_matrix(&l_cs); // L_cc^{-1} L_cs
    &l_ss - &l_sc.matmul(&solved)
}

/// The Schur complement as a weighted [`Graph`] on `|S|` local vertices
/// (Fact 2.3.6 of \[55\]: the Schur complement of a Laplacian is a
/// Laplacian). Near-zero weights (below `1e-12`) are dropped.
///
/// # Errors
///
/// Propagates [`GraphError`] (cannot occur for a valid Laplacian).
///
/// # Panics
///
/// As [`schur_laplacian`].
pub fn schur_graph(g: &Graph, s: &VertexSubset) -> Result<Graph, GraphError> {
    let l = schur_laplacian(g, s);
    let k = s.len();
    let mut edges = Vec::new();
    for i in 0..k {
        for j in i + 1..k {
            let w = -l[(i, j)];
            if w > 1e-12 {
                edges.push((i, j, w));
            }
        }
    }
    Graph::from_weighted_edges(k, &edges)
}

/// The Schur transition matrix of Definition 2 — `S[u,v]` is the
/// probability that `v` is the first vertex of `S∖{u}` a `G`-walk from
/// `u` visits — computed exactly from the Laplacian Schur complement.
///
/// Indices are local (`s.list()` order); the diagonal is zero.
///
/// # Panics
///
/// As [`schur_laplacian`]; also if `|S| < 2` (no transitions exist).
pub fn schur_transition_exact(g: &Graph, s: &VertexSubset) -> Matrix {
    assert!(s.len() >= 2, "need at least two vertices in S");
    let l = schur_laplacian(g, s);
    let k = s.len();
    Matrix::from_fn(k, k, |i, j| {
        if i == j {
            0.0
        } else {
            let deg = l[(i, i)];
            debug_assert!(deg > 0.0, "vertex {i} has zero Schur degree");
            (-l[(i, j)]).max(0.0) / deg
        }
    })
}

/// The one-step "entry" matrix `R` of Corollary 3:
/// `R[u,v] = w(u,v)/wdeg_S(u)` for `{u,v} ∈ E, v ∈ S`; `R[u,u] = 1` when
/// `u` has no neighbor in `S`.
pub fn entry_matrix(g: &Graph, s: &VertexSubset) -> Matrix {
    let n = g.n();
    let mut r = Matrix::zeros(n, n);
    for u in 0..n {
        let wdeg_s: f64 = g
            .neighbors(u)
            .iter()
            .filter(|&&(v, _)| s.contains(v))
            .map(|&(_, w)| w)
            .sum();
        if wdeg_s == 0.0 {
            r[(u, u)] = 1.0;
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            if s.contains(v) {
                r[(u, v)] = w / wdeg_s;
            }
        }
    }
    r
}

/// Corollary 3: the Schur transition matrix from the shortcut matrix
/// `q` (as produced by [`crate::shortcut_exact`] or
/// [`crate::shortcut_by_squaring`]): rows of `Q·R` restricted to `S`,
/// diagonal dropped, renormalized by `M_u = 1/(1 − (QR)[u,u])`.
///
/// # Panics
///
/// Panics if `|S| < 2` or a row's self-return mass reaches 1 (impossible
/// when `S∖{u}` is reachable from `u`).
pub fn schur_transition_from_shortcut(g: &Graph, s: &VertexSubset, q: &Matrix) -> Matrix {
    assert!(s.len() >= 2, "need at least two vertices in S");
    let qr = q.matmul(&entry_matrix(g, s));
    schur_transition_from_qr(s, &qr)
}

/// [`schur_transition_from_shortcut`] with the shortcut matrix in either
/// representation ([`PMatrix`]): a sparse `Q` multiplies the entry
/// matrix through the CSR kernel (bit-identical to the dense product)
/// without densifying `Q` first.
///
/// # Panics
///
/// As [`schur_transition_from_shortcut`].
pub fn schur_transition_from_shortcut_p(g: &Graph, s: &VertexSubset, q: &PMatrix) -> Matrix {
    assert!(s.len() >= 2, "need at least two vertices in S");
    let r = entry_matrix(g, s);
    let qr = match q {
        PMatrix::Dense(q) => q.matmul(&r),
        PMatrix::Sparse(q) => q.matmul_dense_rhs(&r, 1),
    };
    schur_transition_from_qr(s, &qr)
}

/// Shared tail of the Corollary-3 construction: restrict `Q·R` to `S`,
/// drop the diagonal, renormalize rows by `M_u = 1/(1 − (QR)[u,u])`.
fn schur_transition_from_qr(s: &VertexSubset, qr: &Matrix) -> Matrix {
    let k = s.len();
    Matrix::from_fn(k, k, |i, j| {
        if i == j {
            return 0.0;
        }
        let (u, v) = (s.global(i), s.global(j));
        let self_mass = qr[(u, u)];
        assert!(
            self_mass < 1.0 - 1e-12,
            "vertex {u} cannot reach S∖{{u}}; M_u diverges"
        );
        qr[(u, v)] / (1.0 - self_mass)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut_exact;
    use cct_graph::generators;
    use cct_linalg::is_row_stochastic;
    use cct_walks::random_step;
    use rand::SeedableRng;

    /// Figure 2: star with centre C (id 2), leaves A=0, B=1, D=3,
    /// S = {A, B, D}.
    fn figure2() -> (Graph, VertexSubset) {
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (3, 2)]).unwrap();
        let s = VertexSubset::new(4, &[0, 1, 3]);
        (g, s)
    }

    #[test]
    fn figure2_schur_is_uniform() {
        // "The Schur complement graph contains uniform transitions
        //  between every vertex" — S[u,v] = 1/2 for u ≠ v.
        let (g, s) = figure2();
        let t = schur_transition_exact(&g, &s);
        for i in 0..3 {
            assert_eq!(t[(i, i)], 0.0);
            for j in 0..3 {
                if i != j {
                    assert!(
                        (t[(i, j)] - 0.5).abs() < 1e-12,
                        "S[{i},{j}] = {}",
                        t[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn schur_laplacian_is_laplacian() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        let g = generators::erdos_renyi_connected(9, 0.4, &mut rng);
        let s = VertexSubset::new(9, &[0, 2, 4, 6, 8]);
        let l = schur_laplacian(&g, &s);
        for i in 0..5 {
            assert!(l.row(i).iter().sum::<f64>().abs() < 1e-9, "row {i} sum");
            for j in 0..5 {
                assert!((l[(i, j)] - l[(j, i)]).abs() < 1e-9, "symmetry {i},{j}");
                if i != j {
                    assert!(l[(i, j)] < 1e-9, "off-diagonal must be ≤ 0");
                }
            }
        }
    }

    #[test]
    fn schur_with_full_s_is_original() {
        let g = generators::petersen();
        let s = VertexSubset::full(10);
        let t = schur_transition_exact(&g, &s);
        assert!(t.max_abs_diff(&g.transition_matrix()) < 1e-12);
        let l = schur_laplacian(&g, &s);
        assert!(l.max_abs_diff(&g.laplacian()) < 1e-12);
    }

    #[test]
    fn transitions_are_stochastic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..5 {
            let g = generators::erdos_renyi_connected(10, 0.4, &mut rng);
            let s = VertexSubset::new(10, &[1, 3, 5, 7]);
            let t = schur_transition_exact(&g, &s);
            assert!(is_row_stochastic(&t, 1e-9));
        }
    }

    #[test]
    fn corollary3_matches_laplacian_route() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let g = generators::erdos_renyi_connected(10, 0.45, &mut rng);
            let s = VertexSubset::new(10, &[0, 3, 6, 9]);
            let exact = schur_transition_exact(&g, &s);
            let q = shortcut_exact(&g, &s);
            let via_q = schur_transition_from_shortcut(&g, &s, &q);
            assert!(
                exact.max_abs_diff(&via_q) < 1e-9,
                "diff {}",
                exact.max_abs_diff(&via_q)
            );
        }
    }

    #[test]
    fn corollary3_on_weighted_graph() {
        let g = Graph::from_weighted_edges(
            5,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 4, 1.0),
                (4, 0, 2.0),
                (1, 3, 1.0),
            ],
        )
        .unwrap();
        let s = VertexSubset::new(5, &[0, 2, 4]);
        let exact = schur_transition_exact(&g, &s);
        let q = shortcut_exact(&g, &s);
        let via_q = schur_transition_from_shortcut(&g, &s, &q);
        assert!(exact.max_abs_diff(&via_q) < 1e-9);
    }

    #[test]
    fn definition2_matches_monte_carlo() {
        // S[u, v] = Pr[v is the first vertex of S∖{u} hit by a G-walk].
        let g = generators::lollipop(4, 3); // 7 vertices
        let s = VertexSubset::new(7, &[0, 4, 6]);
        let t = schur_transition_exact(&g, &s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let trials = 40_000;
        let u_local = 0usize; // global vertex 0
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            let mut cur = s.global(u_local);
            loop {
                cur = random_step(&g, cur, &mut rng);
                if s.contains(cur) && cur != s.global(u_local) {
                    counts[s.local_index(cur).unwrap()] += 1;
                    break;
                }
            }
        }
        for j in 0..3 {
            let emp = counts[j] as f64 / trials as f64;
            let p = t[(u_local, j)];
            let sigma = (p.clamp(1e-9, 1.0) * (1.0 - p).max(0.0) / trials as f64).sqrt();
            assert!(
                (emp - p).abs() < 5.0 * sigma + 0.004,
                "j = {j}: empirical {emp} vs exact {p}"
            );
        }
    }

    #[test]
    fn schur_graph_weights_positive() {
        let g = generators::grid(3, 3);
        let s = VertexSubset::new(9, &[0, 2, 6, 8]); // grid corners
        let h = schur_graph(&g, &s).unwrap();
        assert_eq!(h.n(), 4);
        assert!(h.is_connected());
        assert!(h.edges().iter().all(|&(_, _, w)| w > 0.0));
        // By symmetry of the grid, all corner-to-adjacent-corner weights
        // are equal and corner-to-opposite weights are equal.
        let w_adj = h.edge_weight(0, 1).unwrap();
        assert!((h.edge_weight(2, 3).unwrap() - w_adj).abs() < 1e-9);
    }

    #[test]
    fn entry_matrix_rows_stochastic() {
        let g = generators::petersen();
        let s = VertexSubset::new(10, &[0, 1, 2]);
        let r = entry_matrix(&g, &s);
        for u in 0..10 {
            let sum: f64 = (0..10).map(|v| r[(u, v)]).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {u}");
        }
    }
}
