//! # cct-schur
//!
//! The derivative graphs of §1.7: the **Schur complement**
//! `Schur(G, S)` (walk on `G` watched on `S`; used to skip vertices
//! visited in earlier phases) and the **shortcut graph**
//! `ShortCut(G, S)` (recovers first-visit edges in `G` from a Schur
//! walk), together with the first-visit-edge sampler of Algorithm 4.
//!
//! Both graphs come in two constructions, mirroring the paper: an exact
//! linear-algebra reference (Definition 1 / fundamental matrix) and the
//! distributed iterated-squaring route of Corollaries 2–3 whose
//! multiplication counts the phase engine charges to the round ledger.
//!
//! The worked example of the paper's Figure 2 (star with centre `C`,
//! `S = {A, B, D}`) is reproduced in this crate's tests and in the
//! `schur_playground` example.
//!
//! # Examples
//!
//! ```
//! use cct_graph::Graph;
//! use cct_schur::{schur_transition_exact, VertexSubset};
//!
//! // Figure 2: star with centre C=2 and leaves 0, 1, 3; S = {0, 1, 3}.
//! let g = Graph::from_edges(4, &[(0, 2), (1, 2), (3, 2)])?;
//! let s = VertexSubset::new(4, &[0, 1, 3]);
//! let t = schur_transition_exact(&g, &s);
//! assert!((t[(0, 1)] - 0.5).abs() < 1e-12); // uniform transitions
//! # Ok::<(), cct_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[allow(clippy::module_inception)]
mod schur;
mod shortcut;
mod subset;

pub use schur::{
    entry_matrix, schur_graph, schur_laplacian, schur_transition_exact,
    schur_transition_from_shortcut, schur_transition_from_shortcut_p,
};
pub use shortcut::{
    absorbing_chain, absorbing_chain_blocks, absorbing_chain_blocks_p, sample_first_visit_edge,
    sample_first_visit_edge_with, shortcut_by_squaring, shortcut_by_squaring_dense,
    shortcut_by_squaring_pmatrix, shortcut_exact,
};
pub use subset::VertexSubset;
