//! # cct-json
//!
//! A dependency-free JSON value, writer, and parser shared across the
//! workspace: the committed `BENCH_*.json` baselines (`cct-bench`) and
//! the line-delimited wire protocol of the sampling service
//! (`cct-serve`).
//!
//! The build environment is offline (no serde), and both consumers need
//! the same operations: serialize a report or frame, re-parse it to
//! prove it is well-formed, and look up fields. This crate implements
//! exactly that: a small value tree, a canonical pretty-printer plus a
//! single-line [`Json::compact`] writer for line-delimited framing, and
//! a strict recursive-descent parser that rejects trailing garbage.
//!
//! Numbers are stored as `f64`. For values that must round-trip
//! *exactly* at full `u64` range (RNG seeds), use [`Json::from_u64`] /
//! [`Json::as_u64`], which fall back to a decimal string above `2^53`.
//!
//! # Examples
//!
//! ```
//! use cct_json::Json;
//!
//! let frame = Json::Obj(vec![
//!     ("seed".into(), Json::from_u64(u64::MAX)),
//!     ("count".into(), Json::Num(3.0)),
//! ]);
//! let line = frame.compact();
//! assert!(!line.contains('\n'));
//! let parsed = Json::parse(&line).unwrap();
//! assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(u64::MAX));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, which covers every value the bench
    /// reports emit).
    Num(f64),
    /// A string (escapes are resolved on parse).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes a `u64` so it round-trips exactly through the `f64`-backed
    /// number representation: a plain number up to `2^53`, a decimal
    /// string above (where `f64` would silently round).
    pub fn from_u64(v: u64) -> Json {
        if v <= (1u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// Decodes a `u64` written by [`Json::from_u64`] — or by any client
    /// that sends a non-negative integral number (≤ `2^53`) or a decimal
    /// string. `None` if this is neither, is negative, is fractional, or
    /// overflows.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) => {
                if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 {
                    Some(*x as u64)
                } else {
                    None
                }
            }
            Json::Str(s) => s.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes to a single line with no whitespace — the framing used
    /// by the line-delimited wire protocol, where one value is one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Emit integers without a fractional part; everything else with enough
/// digits to round-trip the gate math.
fn write_num(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x:.6}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

/// Reads the 4 hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?,
        16,
    )
    .map_err(|_| "invalid \\u escape".to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..=0xDBFF).contains(&code) {
                            // UTF-16 high surrogate: standard encoders
                            // (ensure_ascii JSON) ship non-BMP characters
                            // as a \uHHHH\uHHHH pair; decode it as one
                            // scalar rather than two lone halves.
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(format!(
                                    "unpaired high surrogate at byte {}",
                                    *pos - 4
                                ));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(format!("invalid low surrogate at byte {}", *pos + 3));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..=0xDFFF).contains(&code) {
                            return Err(format!("unpaired low surrogate at byte {}", *pos - 4));
                        } else {
                            code
                        };
                        out.push(char::from_u32(scalar).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes are valid UTF-8 since
                // the input is a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_report_shape() {
        let doc = Json::Obj(vec![
            ("experiment".into(), Json::Str("e18".into())),
            (
                "rows".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("n".into(), Json::Num(256.0)),
                    ("speedup".into(), Json::Num(3.25)),
                    ("identical".into(), Json::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        let row = &parsed.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("n").unwrap().as_f64(), Some(256.0));
        assert_eq!(row.get("identical"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2,]nope",
            "{\"a\": 1} trailing",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": 01x}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parses_numbers_strings_escapes() {
        let v = Json::parse(r#"{"x": -1.5e3, "s": "a\"b\n", "t": true, "z": null}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\n"));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).pretty(), "42\n");
        assert!(Json::Num(1.5).pretty().starts_with("1.5"));
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // ensure_ascii-style encoders ship non-BMP chars as UTF-16
        // pairs; they must come back as the original character.
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // BMP escapes are unaffected.
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        // Literal (already-UTF-8) non-BMP characters also pass through.
        assert_eq!(Json::parse("\"😀\"").unwrap().as_str(), Some("😀"));
        // Lone or malformed halves are errors, not U+FFFD mangling.
        for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83dA""#, r#""\ude00""#] {
            assert!(Json::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn compact_is_one_line_and_reparses() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("s".into(), Json::Str("x\ny".into())),
            ("b".into(), Json::Bool(false)),
            ("o".into(), Json::Obj(vec![])),
        ]);
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert!(!line.contains(' '), "compact output has no padding");
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn u64_roundtrips_exactly_at_full_range() {
        for v in [0u64, 1, 42, 1 << 53, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let j = Json::from_u64(v);
            assert_eq!(j.as_u64(), Some(v), "direct helper roundtrip of {v}");
            let reparsed = Json::parse(&j.compact()).unwrap();
            assert_eq!(reparsed.as_u64(), Some(v), "wire roundtrip of {v}");
        }
        // Values above 2^53 travel as strings, below as plain numbers.
        assert!(matches!(Json::from_u64(u64::MAX), Json::Str(_)));
        assert!(matches!(Json::from_u64(7), Json::Num(_)));
    }

    #[test]
    fn as_u64_rejects_lossy_inputs() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(2.0f64.powi(54)).as_u64(), None);
        assert_eq!(Json::Str("not a number".into()).as_u64(), None);
        assert_eq!(Json::Str("-3".into()).as_u64(), None);
        assert_eq!(Json::Bool(true).as_u64(), None);
        assert_eq!(Json::Null.as_u64(), None);
    }
}
