//! The [`PreparedSampler`] cache: bounded LRU with single-flight
//! preparation.
//!
//! Preparation (graph build + transition matrix + phase-1 power table)
//! is the expensive, per-graph part of serving; draws are cheap. The
//! cache keys prepared state by [`CacheKey`] (algorithm, graph spec) and
//! guarantees:
//!
//! * **Single-flight** — when `k` requests for one absent key arrive
//!   concurrently, exactly one prepares; the rest block on the entry's
//!   condvar and share the result. The per-key prepare counter (exposed
//!   via [`CacheStats`]) is the test hook for this.
//! * **Bounded** — at most `capacity` entries, least-recently-*used*
//!   evicted first (lookups refresh recency). An evicted key is simply
//!   re-prepared on next use; because preparation is a pure function of
//!   the key (see [`crate::spec_seed`]), eviction can never change what
//!   a request returns — only how long it takes.
//! * **No poisoning** — a failed preparation (bad spec, disconnected
//!   graph) is reported to every waiter and then dropped from the
//!   table, so the key is retried rather than cached as broken.

use crate::request::Algorithm;
use cct_core::{Backend, Precision, PreparedSampler};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// How many per-key prepare counters the cache retains before pruning
/// counters of non-resident keys (a floor — see
/// [`PreparedCache::get_or_prepare`]). Bounds the cache's memory on a
/// long-running server fed ever-new specs; orders of magnitude above
/// anything the test suites touch.
const MAX_TRACKED_KEYS: usize = 1024;

/// What a cache entry is keyed by. Two requests share prepared state
/// iff they agree on the algorithm, the matrix backend, the arithmetic
/// precision, *and* the graph spec string. The backend is part of the
/// key because preparation materializes backend-specific state (a
/// dense-prepared power table must never be replayed to serve a
/// sparse-backend request — the draws would still be byte-identical,
/// but the memory profile the client asked for would silently not
/// exist). Precision is part of the key because an f32-prepared power
/// table holds *different numbers* than an f64 one: replaying across
/// precisions would change the served draws, not just the footprint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// The phase sampler.
    pub algorithm: Algorithm,
    /// The matrix backend the sampler prepares under.
    pub backend: Backend,
    /// The arithmetic precision the power table is rounded to.
    pub precision: Precision,
    /// The graph spec string (denotes one fixed graph; see
    /// [`crate::spec_seed`]).
    pub graph_spec: String,
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}",
            self.algorithm, self.backend, self.precision, self.graph_spec
        )
    }
}

/// Per-response cache metadata.
///
/// `hit` depends on arrival order and is therefore *excluded* from the
/// determinism contract — only the draws are; clients comparing replays
/// must compare draws, not this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// `true` if an entry for the key existed when the request arrived
    /// (including one still being prepared by another request).
    pub hit: bool,
    /// How many times this key had been prepared when the request was
    /// admitted (1 on the very first request for a key).
    pub prepares: u64,
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that found an entry (ready or in flight).
    pub hits: u64,
    /// Requests that had to start a preparation.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Times each key was prepared; eviction churn shows up as counts
    /// above 1. Counters of long-gone keys are pruned once the map far
    /// exceeds the table (so a key may restart at 1 on a server that
    /// has seen thousands of other specs since).
    pub prepares: BTreeMap<CacheKey, u64>,
    /// Entries currently in the table.
    pub len: usize,
}

impl CacheStats {
    /// The prepare counter of one key (0 if never requested).
    pub fn prepares_for(&self, key: &CacheKey) -> u64 {
        self.prepares.get(key).copied().unwrap_or(0)
    }

    /// Total preparations across all keys.
    pub fn total_prepares(&self) -> u64 {
        self.prepares.values().sum()
    }
}

enum SlotState {
    Pending,
    Ready(Arc<PreparedSampler>),
    Failed(String),
}

/// One cache entry: the preparation's result, plus the condvar waiters
/// block on while the owning request computes it.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<Arc<PreparedSampler>, String> {
        let mut state = self.state.lock().expect("slot lock");
        loop {
            match &*state {
                SlotState::Pending => state = self.ready.wait(state).expect("slot wait"),
                SlotState::Ready(p) => return Ok(Arc::clone(p)),
                SlotState::Failed(e) => return Err(e.clone()),
            }
        }
    }

    fn fill(&self, result: Result<Arc<PreparedSampler>, String>) {
        let mut state = self.state.lock().expect("slot lock");
        *state = match result {
            Ok(p) => SlotState::Ready(p),
            Err(e) => SlotState::Failed(e),
        };
        drop(state);
        self.ready.notify_all();
    }
}

/// Unwind protection for the owning request's preparation: while armed,
/// dropping the guard (i.e. a panic in `prepare`) fills the slot Failed
/// and removes the entry, releasing every waiter.
struct FillGuard<'a> {
    cache: &'a PreparedCache,
    slot: &'a Arc<Slot>,
    armed: bool,
}

impl FillGuard<'_> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FillGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.slot.fill(Err("preparation panicked".into()));
            self.cache.drop_entry(self.slot);
        }
    }
}

struct Inner {
    /// LRU order: least recently used first, most recent last.
    entries: Vec<(CacheKey, Arc<Slot>)>,
    prepares: BTreeMap<CacheKey, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The bounded single-flight LRU of prepared samplers.
pub struct PreparedCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PreparedCache {
    /// An empty cache holding at most `capacity` entries (floored at 1).
    pub fn new(capacity: usize) -> Self {
        PreparedCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                prepares: BTreeMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the prepared sampler for `key`, running `prepare` iff no
    /// entry exists — exactly once per admission no matter how many
    /// requests race (single-flight). Blocks while another request's
    /// preparation for the same key is in flight.
    pub fn get_or_prepare(
        &self,
        key: &CacheKey,
        prepare: impl FnOnce() -> Result<PreparedSampler, String>,
    ) -> (Result<Arc<PreparedSampler>, String>, CacheInfo) {
        let (slot, info, owner) = {
            let mut inner = self.inner.lock().expect("cache lock");
            if let Some(pos) = inner.entries.iter().position(|(k, _)| k == key) {
                // Refresh recency: move the entry to the back.
                let entry = inner.entries.remove(pos);
                let slot = Arc::clone(&entry.1);
                inner.entries.push(entry);
                inner.hits += 1;
                let prepares = inner.prepares.get(key).copied().unwrap_or(0);
                (
                    slot,
                    CacheInfo {
                        hit: true,
                        prepares,
                    },
                    false,
                )
            } else {
                let slot = Arc::new(Slot::new());
                inner.entries.push((key.clone(), Arc::clone(&slot)));
                inner.misses += 1;
                let count = inner.prepares.entry(key.clone()).or_insert(0);
                *count += 1;
                let prepares = *count;
                // The counter map must not grow without bound on a
                // long-running server fed ever-new specs: once it far
                // exceeds the table, forget counters for keys no longer
                // resident (their history is unobservable anyway once
                // they re-enter at 1-after-prune).
                if inner.prepares.len() > MAX_TRACKED_KEYS.max(4 * self.capacity) {
                    let resident: Vec<CacheKey> =
                        inner.entries.iter().map(|(k, _)| k.clone()).collect();
                    inner.prepares.retain(|k, _| resident.contains(k));
                }
                if inner.entries.len() > self.capacity {
                    // The front is the oldest; it is never the entry just
                    // pushed because capacity ≥ 1. Evicting an in-flight
                    // entry is safe: its owner and waiters hold their own
                    // Arcs and complete off-table.
                    inner.entries.remove(0);
                    inner.evictions += 1;
                }
                (
                    slot,
                    CacheInfo {
                        hit: false,
                        prepares,
                    },
                    true,
                )
            }
        };
        if !owner {
            return (slot.wait(), info);
        }
        // Prepare outside the table lock so other keys proceed freely.
        // The guard makes the fill unwind-safe: if `prepare` panics, the
        // slot is filled Failed and dropped from the table on the way
        // out, so waiters get an error instead of blocking forever on a
        // Pending that no one will ever fill.
        let guard = FillGuard {
            cache: self,
            slot: &slot,
            armed: true,
        };
        let result = prepare().map(Arc::new);
        guard.disarm();
        slot.fill(result.clone());
        if result.is_err() {
            self.drop_entry(&slot);
        }
        (result, info)
    }

    /// Drops the entry owning `slot` (matched by identity — the key may
    /// have been evicted and re-admitted meanwhile) so the next request
    /// retries instead of inheriting a failure.
    fn drop_entry(&self, slot: &Arc<Slot>) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.entries.retain(|(_, s)| !Arc::ptr_eq(s, slot));
    }

    /// The ready entries in LRU order (least recently used first) —
    /// the write half of snapshot persistence. In-flight and failed
    /// preparations are skipped: a snapshot captures only state that
    /// has proven itself by serving.
    pub fn ready_entries(&self) -> Vec<(CacheKey, Arc<PreparedSampler>)> {
        let inner = self.inner.lock().expect("cache lock");
        inner
            .entries
            .iter()
            .filter_map(|(k, slot)| match &*slot.state.lock().expect("slot lock") {
                SlotState::Ready(p) => Some((k.clone(), Arc::clone(p))),
                _ => None,
            })
            .collect()
    }

    /// Installs an already-prepared sampler — the restore half of
    /// snapshot persistence. Counts **neither** a hit, a miss, nor a
    /// preparation: a restored server reports `prepares: 0` until live
    /// traffic forces real work, which is the snapshot round-trip
    /// test's observable. A key that already has an entry is left
    /// alone (live state beats snapshot state); capacity is enforced
    /// as usual, evicting the LRU entry.
    pub fn insert_ready(&self, key: CacheKey, prepared: Arc<PreparedSampler>) {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.entries.iter().any(|(k, _)| k == &key) {
            return;
        }
        let slot = Arc::new(Slot::new());
        slot.fill(Ok(prepared));
        inner.entries.push((key, slot));
        if inner.entries.len() > self.capacity {
            inner.entries.remove(0);
            inner.evictions += 1;
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            prepares: inner.prepares.clone(),
            len: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_core::{EngineChoice, SamplerConfig, WalkLength};
    use cct_graph::generators;

    fn key(spec: &str) -> CacheKey {
        CacheKey {
            algorithm: Algorithm::Thm1,
            backend: Backend::Auto,
            precision: Precision::Float64,
            graph_spec: spec.into(),
        }
    }

    fn prepare(n: usize) -> Result<PreparedSampler, String> {
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        PreparedSampler::new(config, &generators::complete(n)).map_err(|e| e.to_string())
    }

    #[test]
    fn hit_after_miss_and_prepare_counted_once() {
        let cache = PreparedCache::new(4);
        let k = key("complete:8");
        let (r1, i1) = cache.get_or_prepare(&k, || prepare(8));
        assert!(r1.is_ok());
        assert_eq!(
            i1,
            CacheInfo {
                hit: false,
                prepares: 1
            }
        );
        let (r2, i2) = cache.get_or_prepare(&k, || panic!("must not re-prepare"));
        assert!(r2.is_ok());
        assert_eq!(
            i2,
            CacheInfo {
                hit: true,
                prepares: 1
            }
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert_eq!(stats.prepares_for(&k), 1);
    }

    #[test]
    fn backend_is_part_of_the_key_never_colliding_entries() {
        // Same algorithm + spec under different backends must occupy
        // separate entries: a dense-prepared sampler is never replayed
        // to serve a sparse-backend request.
        let cache = PreparedCache::new(4);
        let mk = |backend: Backend| CacheKey {
            algorithm: Algorithm::Thm1,
            backend,
            precision: Precision::Float64,
            graph_spec: "complete:8".into(),
        };
        let (dense, _) = cache.get_or_prepare(&mk(Backend::Dense), || prepare(8));
        let (sparse, info) = cache.get_or_prepare(&mk(Backend::Sparse), || prepare(8));
        assert!(!info.hit, "sparse request must not hit the dense entry");
        assert!(!Arc::ptr_eq(&dense.unwrap(), &sparse.unwrap()));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.len), (2, 2));
        assert_eq!(stats.prepares_for(&mk(Backend::Dense)), 1);
        assert_eq!(stats.prepares_for(&mk(Backend::Sparse)), 1);
        // And each backend's own key is a clean hit afterwards.
        assert!(
            cache
                .get_or_prepare(&mk(Backend::Dense), || panic!("hit"))
                .1
                .hit
        );
        assert!(
            cache
                .get_or_prepare(&mk(Backend::Sparse), || panic!("hit"))
                .1
                .hit
        );
    }

    #[test]
    fn precision_is_part_of_the_key_never_colliding_entries() {
        // An f32-prepared power table holds different numbers than an
        // f64 one: replaying across precisions would change the served
        // draws, so each precision owns its own entry.
        let cache = PreparedCache::new(4);
        let mk = |precision: Precision| CacheKey {
            algorithm: Algorithm::Thm1,
            backend: Backend::Auto,
            precision,
            graph_spec: "complete:8".into(),
        };
        let (f64e, _) = cache.get_or_prepare(&mk(Precision::Float64), || prepare(8));
        let (f32e, info) = cache.get_or_prepare(&mk(Precision::F32), || prepare(8));
        assert!(!info.hit, "f32 request must not hit the f64 entry");
        assert!(!Arc::ptr_eq(&f64e.unwrap(), &f32e.unwrap()));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.len), (2, 2));
        // The key's display names the precision between backend and spec.
        assert_eq!(mk(Precision::F32).to_string(), "thm1:auto:f32:complete:8");
    }

    #[test]
    fn lru_evicts_least_recently_used_not_least_recently_inserted() {
        let cache = PreparedCache::new(2);
        let (a, b, c) = (key("a"), key("b"), key("c"));
        cache.get_or_prepare(&a, || prepare(4)).0.unwrap();
        cache.get_or_prepare(&b, || prepare(5)).0.unwrap();
        // Touch `a`: now `b` is the LRU entry.
        assert!(cache.get_or_prepare(&a, || panic!("hit")).1.hit);
        cache.get_or_prepare(&c, || prepare(6)).0.unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        // `a` survived, `b` was evicted and re-prepares.
        assert!(cache.get_or_prepare(&a, || panic!("hit")).1.hit);
        let (_, info) = cache.get_or_prepare(&b, || prepare(5));
        assert_eq!(
            info,
            CacheInfo {
                hit: false,
                prepares: 2
            }
        );
    }

    #[test]
    fn failed_preparation_is_reported_and_retried() {
        let cache = PreparedCache::new(2);
        let k = key("bad");
        let (r, _) = cache.get_or_prepare(&k, || Err("boom".into()));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.stats().len, 0, "failed entries are dropped");
        // The retry runs the preparation again (prepares counts it).
        let (r2, i2) = cache.get_or_prepare(&k, || prepare(4));
        assert!(r2.is_ok());
        assert_eq!(
            i2,
            CacheInfo {
                hit: false,
                prepares: 2
            }
        );
    }

    #[test]
    fn panicking_preparation_releases_waiters_instead_of_deadlocking() {
        let cache = PreparedCache::new(2);
        let k = key("explodes");
        let waiter_result = std::thread::scope(|s| {
            let owner = s.spawn(|| {
                let _ = cache.get_or_prepare(&k, || -> Result<PreparedSampler, String> {
                    panic!("preparation blew up")
                });
            });
            // Give the owner time to register the Pending slot, then
            // wait on it from a second thread.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let waiter = s.spawn(|| cache.get_or_prepare(&k, || prepare(4)).0);
            assert!(owner.join().is_err(), "owner thread panicked as staged");
            waiter.join().unwrap()
        });
        // Most schedules: the waiter was blocked on the doomed slot and
        // gets the structured failure. (If it arrived after cleanup it
        // simply re-prepared and succeeded — also fine.)
        if let Err(e) = waiter_result {
            assert!(e.contains("panicked"), "{e}");
        }
        // The key is not poisoned: the next request prepares fresh.
        assert!(cache.get_or_prepare(&k, || prepare(4)).0.is_ok());
    }

    #[test]
    fn prepare_counters_are_pruned_for_long_gone_keys() {
        // A capacity-1 cache fed ever-new keys must not accumulate one
        // counter per key forever.
        let cache = PreparedCache::new(1);
        let total = MAX_TRACKED_KEYS + 80;
        for i in 0..total {
            let k = key(&format!("k{i}"));
            cache.get_or_prepare(&k, || prepare(4)).0.unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, total as u64, "every key was a miss");
        assert!(
            stats.prepares.len() <= MAX_TRACKED_KEYS + 1,
            "counter map grew unbounded: {} entries",
            stats.prepares.len()
        );
    }

    #[test]
    fn insert_ready_restores_without_counting() {
        let cache = PreparedCache::new(2);
        let k = key("restored");
        cache.insert_ready(k.clone(), prepare(6).unwrap().into_shared());
        // The restored entry serves as a plain hit; nothing was ever
        // "prepared" as far as the counters know.
        let (r, info) = cache.get_or_prepare(&k, || panic!("restored entries must hit"));
        assert!(r.is_ok());
        assert_eq!(
            info,
            CacheInfo {
                hit: true,
                prepares: 0
            }
        );
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.len), (0, 1));
        assert_eq!(stats.total_prepares(), 0);
        // ready_entries sees it; a second insert for the same key is a
        // no-op (live state wins).
        assert_eq!(cache.ready_entries().len(), 1);
        cache.insert_ready(k, prepare(6).unwrap().into_shared());
        assert_eq!(cache.stats().len, 1);
        // Capacity still bounds restored entries.
        cache.insert_ready(key("b"), prepare(4).unwrap().into_shared());
        cache.insert_ready(key("c"), prepare(5).unwrap().into_shared());
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn single_flight_under_contention() {
        let cache = PreparedCache::new(2);
        let k = key("contended");
        let started = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (r, _) = cache.get_or_prepare(&k, || {
                        started.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        // Widen the race window so waiters really wait.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        prepare(6)
                    });
                    assert!(r.is_ok());
                });
            }
        });
        assert_eq!(
            started.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exactly one preparation ran"
        );
        let stats = cache.stats();
        assert_eq!(stats.prepares_for(&k), 1);
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.misses, 1);
    }
}
