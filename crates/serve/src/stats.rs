//! Serving-side observability: lock-cheap request/latency counters
//! rendered as the `{"cmd": "stats"}` wire frame.
//!
//! Every counter is a plain [`AtomicU64`] bumped with relaxed ordering
//! on the worker's way out of a job — no locks, no allocation, no
//! effect on the determinism contract (stats are metadata, like cache
//! hits). Latencies land in fixed **log-spaced buckets** (bucket `i`
//! holds durations in `[2^{i-1}, 2^i)` microseconds), so a histogram is
//! 40 words regardless of traffic and quantiles are a cumulative walk:
//! the reported p50/p99 are bucket upper bounds, i.e. within 2× of the
//! true quantile by construction.
//!
//! The wire schema (see the README's "Serving" section):
//!
//! ```json
//! {"ok": true, "stats": {
//!   "requests": {"thm1": 5, "exact": 1, "mst": 0, "total": 6},
//!   "errors": 0, "overloaded": 0,
//!   "cache": {"hits": 4, "misses": 2, "evictions": 0, "prepares": 2, "entries": 2},
//!   "latency_us": {"thm1": {"count": 5, "p50": 1024, "p99": 4096,
//!                            "buckets": [[1024, 3], [4096, 2]]}, …}
//! }}
//! ```

use crate::cache::CacheStats;
use crate::request::Algorithm;
use cct_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log-spaced latency buckets: bucket 39's upper bound is
/// `2^39` µs ≈ 6.4 days, far past any serveable request.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed-size log-spaced latency histogram over atomic counters.
///
/// Bucket 0 counts sub-microsecond durations; bucket `i ≥ 1` counts
/// durations in `[2^{i-1}, 2^i)` µs (the last bucket absorbs
/// everything above its floor). Recording is one relaxed
/// `fetch_add` — safe to call from any number of worker threads.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// The upper bound (µs) of bucket `i`.
    fn upper_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a bucket upper bound in µs
    /// (0 when the histogram is empty). `quantile(0.5)` is the reported
    /// p50, `quantile(0.99)` the p99.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(i);
            }
        }
        Self::upper_bound(LATENCY_BUCKETS - 1)
    }

    /// The non-empty buckets as `(upper_bound_us, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((Self::upper_bound(i), c))
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count())),
            ("p50".into(), Json::from_u64(self.quantile(0.5))),
            ("p99".into(), Json::from_u64(self.quantile(0.99))),
            (
                "buckets".into(),
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(ub, c)| Json::Arr(vec![Json::from_u64(ub), Json::from_u64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The service's observability counters: per-algorithm request counts
/// and latency histograms, plus error and overload totals. One instance
/// lives in the service's shared state; workers record into it after
/// every job, the wire layer bumps `overloaded`/`errors` for frames
/// that never reach a worker.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: [AtomicU64; Algorithm::ALL.len()],
    errors: AtomicU64,
    overloaded: AtomicU64,
    latency: [LatencyHistogram; Algorithm::ALL.len()],
}

fn index(algorithm: Algorithm) -> usize {
    Algorithm::ALL
        .iter()
        .position(|&a| a == algorithm)
        .expect("ALL is exhaustive")
}

impl ServeStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// Records one completed request (counted even when it failed —
    /// `ok = false` additionally bumps the error total).
    pub fn record(&self, algorithm: Algorithm, elapsed: Duration, ok: bool) {
        let i = index(algorithm);
        self.requests[i].fetch_add(1, Ordering::Relaxed);
        self.latency[i].record(elapsed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a frame rejected before reaching a worker (malformed
    /// JSON, oversized frame, unknown command).
    pub fn record_protocol_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused with the `overloaded` backpressure
    /// frame.
    pub fn record_overload(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests recorded for one algorithm.
    pub fn requests_for(&self, algorithm: Algorithm) -> u64 {
        self.requests[index(algorithm)].load(Ordering::Relaxed)
    }

    /// Total overload refusals recorded.
    pub fn overloads(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// The latency histogram of one algorithm.
    pub fn latency_for(&self, algorithm: Algorithm) -> &LatencyHistogram {
        &self.latency[index(algorithm)]
    }

    /// Renders the full `{"ok": true, "stats": …}` wire frame, folding
    /// in the prepared-cache counters.
    pub fn frame(&self, cache: &CacheStats) -> Json {
        let total: u64 = self
            .requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let mut request_fields: Vec<(String, Json)> = Algorithm::ALL
            .iter()
            .map(|&a| (a.as_str().to_string(), Json::from_u64(self.requests_for(a))))
            .collect();
        request_fields.push(("total".into(), Json::from_u64(total)));
        let latency_fields: Vec<(String, Json)> = Algorithm::ALL
            .iter()
            .map(|&a| (a.as_str().to_string(), self.latency_for(a).to_json()))
            .collect();
        let stats = Json::Obj(vec![
            ("requests".into(), Json::Obj(request_fields)),
            (
                "errors".into(),
                Json::from_u64(self.errors.load(Ordering::Relaxed)),
            ),
            ("overloaded".into(), Json::from_u64(self.overloads())),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::from_u64(cache.hits)),
                    ("misses".into(), Json::from_u64(cache.misses)),
                    ("evictions".into(), Json::from_u64(cache.evictions)),
                    ("prepares".into(), Json::from_u64(cache.total_prepares())),
                    ("entries".into(), Json::from_u64(cache.len as u64)),
                ]),
            ),
            ("latency_us".into(), Json::Obj(latency_fields)),
        ]);
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("stats".into(), stats),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 99 fast observations (~100 µs) and 1 slow (~50 ms).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 128, "p50 in the 100 µs bucket");
        assert_eq!(h.quantile(0.99), 128, "p99 rank 99 still fast");
        assert_eq!(h.quantile(1.0), 65536, "max in the 50 ms bucket");
        assert_eq!(h.nonzero_buckets(), vec![(128, 99), (65536, 1)]);
    }

    #[test]
    fn frame_shape_matches_schema() {
        let stats = ServeStats::new();
        stats.record(Algorithm::Thm1, Duration::from_micros(10), true);
        stats.record(Algorithm::Thm1, Duration::from_micros(10), false);
        stats.record(Algorithm::Mst, Duration::from_micros(1), true);
        stats.record_overload();
        stats.record_protocol_error();
        let frame = stats.frame(&CacheStats::default());
        assert_eq!(frame.get("ok"), Some(&Json::Bool(true)));
        let s = frame.get("stats").unwrap();
        assert_eq!(
            s.get("requests").unwrap().get("thm1"),
            Some(&Json::Num(2.0))
        );
        assert_eq!(s.get("requests").unwrap().get("mst"), Some(&Json::Num(1.0)));
        assert_eq!(
            s.get("requests").unwrap().get("total"),
            Some(&Json::Num(3.0))
        );
        assert_eq!(s.get("errors"), Some(&Json::Num(2.0)));
        assert_eq!(s.get("overloaded"), Some(&Json::Num(1.0)));
        assert!(s.get("cache").unwrap().get("hits").is_some());
        let lat = s.get("latency_us").unwrap().get("thm1").unwrap();
        assert_eq!(lat.get("count"), Some(&Json::Num(2.0)));
        assert!(lat.get("p50").is_some() && lat.get("p99").is_some());
    }
}
