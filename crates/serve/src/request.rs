//! The service's request type and its wire encoding.
//!
//! A [`SampleRequest`] names a graph (by spec string), a phase sampler,
//! a master seed, and a draw count. On the wire it is one line of JSON:
//!
//! ```json
//! {"graph": "petersen", "algorithm": "thm1", "seed": 7, "count": 2}
//! ```
//!
//! `algorithm`, `seed`, and `count` are optional (defaults `thm1`, `0`,
//! `1`); `graph` is required; unknown fields are rejected so typos fail
//! loudly instead of silently falling back to defaults. Seeds round-trip
//! at full `u64` range: numbers up to `2^53`, decimal strings above
//! (see [`cct_json::Json::from_u64`]).
//!
//! # Determinism contract
//!
//! A request denotes a *pure computation*: the graph is built from the
//! spec with an RNG seeded by [`spec_seed`] (a function of the spec
//! string alone), and draw `i` samples with a fresh RNG seeded by
//! [`SampleRequest::draw_seed`]`(i)` = `machine_seed(seed, i)`. Neither
//! depends on worker interleaving, cache state, or arrival order, so the
//! served trees and ledgers are byte-identical to a cold
//! single-threaded `CliqueTreeSampler` run at the same derived seeds.

use cct_core::{Backend, Precision};
use cct_json::Json;
use cct_sim::machine_seed;

/// Largest `count` a single request may ask for; bigger batches should
/// be split so one job cannot monopolize a worker forever.
pub const MAX_COUNT: u32 = 4096;

/// Longest accepted `graph` spec string (bounds the cache key size).
pub const MAX_SPEC_LEN: usize = 256;

/// Domain separator for [`spec_seed`] (distinct from every per-draw
/// stream, which hashes the request's master seed instead).
const SPEC_STREAM: u64 = 0x6363_745f_7370_6563; // b"cct_spec"

/// Which engine serves the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Algorithm {
    /// Theorem 1's `Õ(n^{1/2+α})`-round Monte Carlo sampler (default).
    Thm1,
    /// The Appendix's exact `Õ(n^{2/3+α})` Las Vegas variant.
    Exact,
    /// The deterministic Borůvka minimum-spanning-tree engine: `seed`
    /// is ignored, every draw is the same tree.
    Mst,
}

impl Algorithm {
    /// All algorithms, for iteration.
    pub const ALL: [Algorithm; 3] = [Algorithm::Thm1, Algorithm::Exact, Algorithm::Mst];

    /// The wire name (`thm1` / `exact` / `mst`).
    pub fn as_str(self) -> &'static str {
        match self {
            Algorithm::Thm1 => "thm1",
            Algorithm::Exact => "exact",
            Algorithm::Mst => "mst",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "thm1" => Some(Algorithm::Thm1),
            "exact" => Some(Algorithm::Exact),
            "mst" => Some(Algorithm::Mst),
            _ => None,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A malformed request frame (bad JSON, wrong types, unknown fields,
/// out-of-range values). Carried back to the client as a structured
/// `{"ok": false, "error": …}` response, never as a disconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    message: String,
}

impl ProtocolError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// One batched sampling job: `count` spanning-tree draws of the graph
/// `graph_spec` describes, under `algorithm`, with per-draw RNG streams
/// derived from `seed`.
///
/// # Examples
///
/// ```
/// use cct_serve::SampleRequest;
///
/// let req = SampleRequest::new("petersen").seed(7).count(2);
/// let line = req.to_json().compact();
/// assert_eq!(SampleRequest::parse_line(&line), Ok(req));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SampleRequest {
    /// The graph, as a [`cct_graph::spec`] string (`petersen`,
    /// `er:64:0.2`, …). Randomized families denote one fixed graph: the
    /// generator RNG is seeded by [`spec_seed`] of this string.
    pub graph_spec: String,
    /// Which phase sampler to run.
    pub algorithm: Algorithm,
    /// Master seed; draw `i` uses the derived stream
    /// [`SampleRequest::draw_seed`]`(i)`.
    pub seed: u64,
    /// How many trees to draw (1 ..= [`MAX_COUNT`]).
    pub count: u32,
    /// Transition-matrix backend for the prepared sampler. Part of the
    /// cache key (a dense-prepared entry is never replayed as sparse),
    /// but **not** of the determinism contract: every backend serves
    /// byte-identical draws.
    pub backend: Backend,
    /// Arithmetic precision of the prepared power table. Part of the
    /// cache key **and** of the determinism contract: `f32` draws form
    /// their own deterministic stream, distinct from `f64`'s. Only
    /// `f64` (default) and `f32` exist on the wire — fixed-point
    /// truncation stays a library-level configuration.
    pub precision: Precision,
}

impl SampleRequest {
    /// A one-draw `thm1` request at seed 0 for the given graph spec.
    pub fn new(graph_spec: impl Into<String>) -> Self {
        SampleRequest {
            graph_spec: graph_spec.into(),
            algorithm: Algorithm::Thm1,
            seed: 0,
            count: 1,
            backend: Backend::Auto,
            precision: Precision::Float64,
        }
    }

    /// Sets the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the matrix backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the arithmetic precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the draw count.
    pub fn count(mut self, count: u32) -> Self {
        self.count = count;
        self
    }

    /// The derived RNG seed of draw `draw` (0-based): the SplitMix64
    /// hash `machine_seed(seed, draw)`. Seeding `StdRng` with this and
    /// running a cold [`cct_core::CliqueTreeSampler`] on the request's
    /// graph reproduces the served draw bit for bit.
    pub fn draw_seed(&self, draw: u32) -> u64 {
        machine_seed(self.seed, u64::from(draw))
    }

    /// Checks the request's value ranges (spec length, count bounds) —
    /// run by the service on every path, including in-process requests
    /// that never touched JSON.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] describing the first violated bound.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.graph_spec.is_empty() {
            return Err(ProtocolError::new("'graph' must not be empty"));
        }
        if self.graph_spec.len() > MAX_SPEC_LEN {
            return Err(ProtocolError::new(format!(
                "'graph' spec is {} bytes, max {MAX_SPEC_LEN}",
                self.graph_spec.len()
            )));
        }
        if self.count == 0 || self.count > MAX_COUNT {
            return Err(ProtocolError::new(format!(
                "'count' must be in 1..={MAX_COUNT}, got {}",
                self.count
            )));
        }
        Ok(())
    }

    /// The request's wire value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("graph".into(), Json::Str(self.graph_spec.clone())),
            (
                "algorithm".into(),
                Json::Str(self.algorithm.as_str().into()),
            ),
            ("seed".into(), Json::from_u64(self.seed)),
            ("count".into(), Json::Num(f64::from(self.count))),
            ("backend".into(), Json::Str(self.backend.as_str().into())),
            (
                "precision".into(),
                Json::Str(self.precision.as_str().into()),
            ),
        ])
    }

    /// Decodes and validates a wire value.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for non-objects, unknown or mistyped fields, a
    /// missing `graph`, and out-of-range `seed`/`count`.
    pub fn from_json(value: &Json) -> Result<Self, ProtocolError> {
        let fields = match value {
            Json::Obj(fields) => fields,
            other => {
                return Err(ProtocolError::new(format!(
                    "request must be a JSON object, got {}",
                    kind(other)
                )))
            }
        };
        let mut graph: Option<String> = None;
        let mut algorithm = Algorithm::Thm1;
        let mut seed = 0u64;
        let mut count = 1u32;
        let mut backend = Backend::Auto;
        let mut precision = Precision::Float64;
        for (key, v) in fields {
            match key.as_str() {
                "graph" => {
                    graph = Some(
                        v.as_str()
                            .ok_or_else(|| ProtocolError::new("'graph' must be a string"))?
                            .to_string(),
                    );
                }
                "algorithm" => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| ProtocolError::new("'algorithm' must be a string"))?;
                    algorithm = Algorithm::parse(name).ok_or_else(|| {
                        ProtocolError::new(format!(
                            "unknown algorithm '{name}' (expected thm1, exact, or mst)"
                        ))
                    })?;
                }
                "seed" => {
                    seed = v.as_u64().ok_or_else(|| {
                        ProtocolError::new(
                            "'seed' must be a non-negative integer \
                             (≤ 2^53 as a number, or a decimal string)",
                        )
                    })?;
                }
                "count" => {
                    let c = v
                        .as_u64()
                        .ok_or_else(|| ProtocolError::new("'count' must be a positive integer"))?;
                    count = u32::try_from(c).map_err(|_| {
                        ProtocolError::new(format!("'count' must be in 1..={MAX_COUNT}, got {c}"))
                    })?;
                }
                "backend" => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| ProtocolError::new("'backend' must be a string"))?;
                    backend = Backend::parse(name).ok_or_else(|| {
                        ProtocolError::new(format!(
                            "unknown backend '{name}' (expected auto, dense, or sparse)"
                        ))
                    })?;
                }
                "precision" => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| ProtocolError::new("'precision' must be a string"))?;
                    precision = Precision::parse(name).ok_or_else(|| {
                        ProtocolError::new(format!(
                            "unknown precision '{name}' (expected f64 or f32)"
                        ))
                    })?;
                }
                other => {
                    return Err(ProtocolError::new(format!(
                        "unknown request field '{other}'"
                    )))
                }
            }
        }
        let graph = graph.ok_or_else(|| ProtocolError::new("missing required field 'graph'"))?;
        let built = SampleRequest {
            graph_spec: graph,
            algorithm,
            seed,
            count,
            backend,
            precision,
        };
        built.validate()?;
        Ok(built)
    }

    /// Parses one wire line (strict JSON; trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for syntax errors and everything
    /// [`SampleRequest::from_json`] rejects.
    pub fn parse_line(line: &str) -> Result<Self, ProtocolError> {
        let value = Json::parse(line).map_err(ProtocolError::new)?;
        SampleRequest::from_json(&value)
    }
}

/// An operational command frame — `{"cmd": "stats"}` and friends —
/// dispatched before [`SampleRequest`] parsing (which rejects unknown
/// fields) so control traffic shares the sampling connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCommand {
    /// Return the service's observability counters
    /// ([`crate::ServeStats`] rendered as one frame).
    Stats,
    /// Write the prepared-cache snapshot to the server's configured
    /// snapshot path now.
    Snapshot,
    /// Begin a graceful drain: stop accepting connections, flush every
    /// in-flight reply, then exit.
    Shutdown,
}

impl ControlCommand {
    /// The wire name (`stats` / `snapshot` / `shutdown`).
    pub fn as_str(self) -> &'static str {
        match self {
            ControlCommand::Stats => "stats",
            ControlCommand::Snapshot => "snapshot",
            ControlCommand::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ControlCommand> {
        match s {
            "stats" => Some(ControlCommand::Stats),
            "snapshot" => Some(ControlCommand::Snapshot),
            "shutdown" => Some(ControlCommand::Shutdown),
            _ => None,
        }
    }

    /// The command's wire value: `{"cmd": <name>}`.
    pub fn to_json(self) -> Json {
        Json::Obj(vec![("cmd".into(), Json::Str(self.as_str().into()))])
    }
}

impl std::fmt::Display for ControlCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any frame a client may send: a sampling request or a control
/// command. An object carrying a `cmd` field is a command (and must
/// carry nothing else); everything else parses as a [`SampleRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// A batched sampling job.
    Sample(SampleRequest),
    /// An operational command.
    Control(ControlCommand),
}

impl WireFrame {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for unknown commands, commands with extra
    /// fields, and everything [`SampleRequest::from_json`] rejects.
    pub fn from_json(value: &Json) -> Result<Self, ProtocolError> {
        if let Json::Obj(fields) = value {
            if let Some((_, cmd)) = fields.iter().find(|(k, _)| k == "cmd") {
                let name = cmd
                    .as_str()
                    .ok_or_else(|| ProtocolError::new("'cmd' must be a string"))?;
                let command = ControlCommand::parse(name).ok_or_else(|| {
                    ProtocolError::new(format!(
                        "unknown command '{name}' (expected stats, snapshot, or shutdown)"
                    ))
                })?;
                if fields.len() > 1 {
                    return Err(ProtocolError::new(
                        "command frames carry only the 'cmd' field",
                    ));
                }
                return Ok(WireFrame::Control(command));
            }
        }
        SampleRequest::from_json(value).map(WireFrame::Sample)
    }

    /// Parses one wire line (strict JSON; trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// As [`WireFrame::from_json`], plus JSON syntax errors.
    pub fn parse_line(line: &str) -> Result<Self, ProtocolError> {
        let value = Json::parse(line).map_err(ProtocolError::new)?;
        WireFrame::from_json(&value)
    }
}

/// The seed of the generator RNG behind a graph spec: FNV-1a over the
/// spec bytes, finalized through the workspace's SplitMix64
/// [`machine_seed`] hash. A pure function of the string, so a spec
/// denotes one fixed graph — the invariant the service's cache key
/// (algorithm, spec) relies on, and what clients replay for cold
/// verification.
///
/// # Examples
///
/// ```
/// use cct_serve::spec_seed;
///
/// assert_eq!(spec_seed("er:64:0.2"), spec_seed("er:64:0.2"));
/// assert_ne!(spec_seed("er:64:0.2"), spec_seed("er:64:0.3"));
/// ```
pub fn spec_seed(spec: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in spec.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    machine_seed(SPEC_STREAM, h)
}

fn kind(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "a boolean",
        Json::Num(_) => "a number",
        Json::Str(_) => "a string",
        Json::Arr(_) => "an array",
        Json::Obj(_) => "an object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let r = SampleRequest::new("petersen");
        assert_eq!(r.algorithm, Algorithm::Thm1);
        assert_eq!(r.seed, 0);
        assert_eq!(r.count, 1);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn wire_roundtrip_all_fields() {
        let r = SampleRequest::new("er:64:0.2")
            .algorithm(Algorithm::Exact)
            .seed(u64::MAX)
            .count(17)
            .backend(Backend::Sparse)
            .precision(Precision::F32);
        let parsed = SampleRequest::parse_line(&r.to_json().compact()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn backend_field_parses_and_defaults() {
        let r = SampleRequest::parse_line(r#"{"graph": "k", "backend": "dense"}"#).unwrap();
        assert_eq!(r.backend, Backend::Dense);
        let r = SampleRequest::parse_line(r#"{"graph": "k"}"#).unwrap();
        assert_eq!(r.backend, Backend::Auto);
        let err = SampleRequest::parse_line(r#"{"graph": "k", "backend": "csr"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown backend"), "{err}");
    }

    #[test]
    fn precision_field_parses_and_defaults() {
        let r = SampleRequest::parse_line(r#"{"graph": "k", "precision": "f32"}"#).unwrap();
        assert_eq!(r.precision, Precision::F32);
        let r = SampleRequest::parse_line(r#"{"graph": "k", "precision": "f64"}"#).unwrap();
        assert_eq!(r.precision, Precision::Float64);
        let r = SampleRequest::parse_line(r#"{"graph": "k"}"#).unwrap();
        assert_eq!(r.precision, Precision::Float64);
        // Fixed-point never parses from the wire (it carries a width
        // parameter no wire name can honestly default).
        for bad in [
            r#"{"graph": "k", "precision": "fixed"}"#,
            r#"{"graph": "k", "precision": "f16"}"#,
        ] {
            let err = SampleRequest::parse_line(bad).unwrap_err();
            assert!(err.to_string().contains("unknown precision"), "{err}");
        }
        let err = SampleRequest::parse_line(r#"{"graph": "k", "precision": 32}"#).unwrap_err();
        assert!(err.to_string().contains("must be a string"), "{err}");
    }

    #[test]
    fn mst_parses_and_roundtrips() {
        let r = SampleRequest::new("grid-w:3x3")
            .algorithm(Algorithm::Mst)
            .count(3);
        let parsed = SampleRequest::parse_line(&r.to_json().compact()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(Algorithm::parse("mst"), Some(Algorithm::Mst));
        assert_eq!(Algorithm::Mst.as_str(), "mst");
        assert_eq!(Algorithm::ALL.len(), 3);
    }

    #[test]
    fn optional_fields_default() {
        let r = SampleRequest::parse_line(r#"{"graph": "petersen"}"#).unwrap();
        assert_eq!(r, SampleRequest::new("petersen"));
    }

    #[test]
    fn malformed_frames_rejected_with_messages() {
        for (line, needle) in [
            ("", "unexpected end"),
            ("[1]", "must be a JSON object"),
            (r#"{"algorithm": "thm1"}"#, "missing required field 'graph'"),
            (r#"{"graph": 3}"#, "'graph' must be a string"),
            (r#"{"graph": "k", "alg": "thm1"}"#, "unknown request field"),
            (
                r#"{"graph": "k", "algorithm": "dijkstra"}"#,
                "unknown algorithm",
            ),
            (r#"{"graph": "k", "seed": -1}"#, "'seed'"),
            (r#"{"graph": "k", "seed": 1.5}"#, "'seed'"),
            (r#"{"graph": "k", "count": 0}"#, "'count'"),
            (r#"{"graph": "k", "count": 1e12}"#, "'count'"),
            (r#"{"graph": ""}"#, "must not be empty"),
            (r#"{"graph": "k"} extra"#, "trailing garbage"),
        ] {
            let err = SampleRequest::parse_line(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line:?}: got {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn overlong_spec_rejected() {
        let r = SampleRequest::new("x".repeat(MAX_SPEC_LEN + 1));
        assert!(r.validate().is_err());
    }

    #[test]
    fn control_frames_parse_and_reject() {
        for (line, want) in [
            (r#"{"cmd": "stats"}"#, ControlCommand::Stats),
            (r#"{"cmd": "snapshot"}"#, ControlCommand::Snapshot),
            (r#"{"cmd": "shutdown"}"#, ControlCommand::Shutdown),
        ] {
            assert_eq!(
                WireFrame::parse_line(line),
                Ok(WireFrame::Control(want)),
                "{line}"
            );
            assert_eq!(
                WireFrame::parse_line(&want.to_json().compact()),
                Ok(WireFrame::Control(want))
            );
        }
        // Non-command objects still parse as sampling requests.
        assert_eq!(
            WireFrame::parse_line(r#"{"graph": "petersen"}"#),
            Ok(WireFrame::Sample(SampleRequest::new("petersen")))
        );
        for (line, needle) in [
            (r#"{"cmd": "reboot"}"#, "unknown command"),
            (r#"{"cmd": 7}"#, "'cmd' must be a string"),
            (r#"{"cmd": "stats", "x": 1}"#, "only the 'cmd' field"),
        ] {
            let err = WireFrame::parse_line(line).unwrap_err();
            assert!(err.to_string().contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn draw_seeds_are_machine_seed_streams() {
        let r = SampleRequest::new("petersen").seed(7);
        assert_eq!(r.draw_seed(0), machine_seed(7, 0));
        assert_eq!(r.draw_seed(3), machine_seed(7, 3));
        assert_ne!(r.draw_seed(0), r.draw_seed(1));
    }
}
