//! Cache persistence: serialize the prepared-sampler cache to a
//! versioned binary file so a restarted server warms instantly.
//!
//! # Format (version 1, little-endian throughout)
//!
//! ```text
//! magic    8 bytes  b"CCTSNAP1"
//! version  u32      1
//! entries  u32      entry count
//! entry*   —        see below
//! checksum u64      FNV-1a over every preceding byte
//! ```
//!
//! Each entry carries its [`CacheKey`] (algorithm, backend, precision,
//! spec), an
//! FNV fingerprint of the serving [`cct_core::SamplerConfig`], the
//! transition matrix in its resolved representation, and — when the
//! configuration builds a phase-1 doubling table — the table's exact
//! ledger delta plus every **materialized** level (absent levels stay
//! absent; they rebuild lazily on demand, which is the point of the
//! deferred table).
//!
//! # Trust model: verify, then inject
//!
//! A snapshot is an *accelerator*, never an authority. Restore
//! re-prepares each entry's skeleton from scratch (cheap — the table
//! is deferred), verifies the snapshot's transition matrix and ledger
//! bit-for-bit against the fresh preparation, and only then injects
//! the snapshotted table levels ([`cct_core::PreparedSampler::restore`]).
//! A corrupted file fails the checksum and is rejected whole; an entry
//! written under a different config, code version, or spec meaning
//! fails its comparison and is skipped — the server rebuilds that key
//! cold instead of serving untrusted bits. Draws after a restore are
//! therefore byte-identical to cold runs *unconditionally*.

use crate::cache::{CacheKey, PreparedCache};
use crate::request::Algorithm;
use crate::service::{build_spec_graph, ServeOptions};
use cct_core::{Backend, Precision, PreparedSampler, SamplerConfig};
use cct_linalg::{CsrMatrix, Matrix, PMatrix};
use cct_sim::{CostCategory, RoundLedger};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// The 8-byte magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CCTSNAP1";

/// The format version this build writes and accepts. Version 2 added
/// the precision byte to each entry's key; version-1 files are rejected
/// whole and rebuild cold.
pub const SNAPSHOT_VERSION: u32 = 2;

/// What a restore attempt accomplished: `restored` entries were
/// verified and installed, `skipped` entries failed verification
/// (stale config, changed code, unbuildable spec) and will rebuild
/// cold on first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreSummary {
    /// Entries verified and installed into the cache.
    pub restored: usize,
    /// Entries rejected by verification and left to rebuild cold.
    pub skipped: usize,
}

/// FNV-1a over a byte slice — the file checksum and the config
/// fingerprint share it.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A config's identity for snapshot compatibility: the FNV hash of its
/// `Debug` rendering. Any knob change (walk length, engine, precision,
/// threads, …) changes the fingerprint, so a snapshot written under a
/// different serving config is rejected entry-by-entry before the more
/// expensive matrix comparison runs.
pub(crate) fn config_fingerprint(config: &SamplerConfig) -> u64 {
    fnv64(format!("{config:?}").as_bytes())
}

// ---- encoding ----------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn backend_tag(backend: Backend) -> u8 {
    match backend {
        Backend::Auto => 0,
        Backend::Dense => 1,
        Backend::Sparse => 2,
    }
}

fn backend_from_tag(tag: u8) -> Result<Backend, String> {
    match tag {
        0 => Ok(Backend::Auto),
        1 => Ok(Backend::Dense),
        2 => Ok(Backend::Sparse),
        other => Err(format!("unknown backend tag {other}")),
    }
}

/// Only the two wire precisions are snapshottable; `Fixed` keys never
/// exist (requests cannot spell them) and are filtered out on write.
fn precision_tag(precision: Precision) -> u8 {
    match precision {
        Precision::Float64 => 0,
        Precision::F32 => 1,
        Precision::Fixed(_) => 2,
    }
}

fn precision_from_tag(tag: u8) -> Result<Precision, String> {
    match tag {
        0 => Ok(Precision::Float64),
        1 => Ok(Precision::F32),
        other => Err(format!("unknown precision tag {other}")),
    }
}

fn algorithm_tag(algorithm: Algorithm) -> u8 {
    Algorithm::ALL
        .iter()
        .position(|&a| a == algorithm)
        .expect("ALL is exhaustive") as u8
}

fn algorithm_from_tag(tag: u8) -> Result<Algorithm, String> {
    Algorithm::ALL
        .get(usize::from(tag))
        .copied()
        .ok_or_else(|| format!("unknown algorithm tag {tag}"))
}

fn encode_pmatrix(buf: &mut Vec<u8>, m: &PMatrix) {
    match m {
        PMatrix::Dense(d) => {
            buf.push(0);
            put_u32(buf, d.rows() as u32);
            put_u32(buf, d.cols() as u32);
            for &v in d.as_slice() {
                put_f64(buf, v);
            }
        }
        PMatrix::Sparse(s) => {
            buf.push(1);
            put_u32(buf, s.rows() as u32);
            put_u32(buf, s.cols() as u32);
            for i in 0..s.rows() {
                let (cols, vals) = s.row(i);
                put_u32(buf, cols.len() as u32);
                for (&c, &v) in cols.iter().zip(vals) {
                    put_u32(buf, c);
                    put_f64(buf, v);
                }
            }
        }
    }
}

fn encode_ledger(buf: &mut Vec<u8>, ledger: &RoundLedger) {
    for cat in CostCategory::ALL {
        put_u64(buf, ledger.rounds(cat));
        put_u64(buf, ledger.words(cat));
    }
    buf.push(u8::from(ledger.saturated()));
}

fn encode_entry(buf: &mut Vec<u8>, key: &CacheKey, config_fp: u64, prepared: &PreparedSampler) {
    buf.push(algorithm_tag(key.algorithm));
    buf.push(backend_tag(key.backend));
    buf.push(precision_tag(key.precision));
    put_u32(buf, key.graph_spec.len() as u32);
    buf.extend_from_slice(key.graph_spec.as_bytes());
    put_u64(buf, config_fp);
    let state = prepared.snapshot_state();
    encode_pmatrix(buf, state.p);
    match state.phase1 {
        None => buf.push(0),
        Some(phase1) => {
            buf.push(1);
            encode_ledger(buf, phase1.ledger);
            put_u32(buf, phase1.levels.len() as u32);
            for (k, level) in phase1.levels.iter().enumerate() {
                // Level 0 is the transition matrix (already encoded
                // above); restore rebuilds it fresh, so persisting it
                // again would only double the file.
                match level {
                    Some(m) if k > 0 => {
                        buf.push(1);
                        encode_pmatrix(buf, m);
                    }
                    _ => buf.push(0),
                }
            }
        }
    }
}

// ---- decoding ----------------------------------------------------------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or("truncated snapshot")?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_pmatrix(r: &mut Reader) -> Result<PMatrix, String> {
    let tag = r.u8()?;
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    // An adversarial or corrupt header must not drive a giant
    // allocation before the checksum has a chance to matter: bound the
    // claimed dense size by the bytes actually present.
    match tag {
        0 => {
            let n = rows
                .checked_mul(cols)
                .ok_or("dense matrix dimensions overflow")?;
            if n.saturating_mul(8) > r.data.len() - r.pos {
                return Err("dense matrix larger than the remaining file".into());
            }
            let mut m = Matrix::zeros(rows, cols);
            for v in m.as_mut_slice() {
                *v = r.f64()?;
            }
            Ok(PMatrix::Dense(m))
        }
        1 => {
            let mut builder = CsrMatrix::builder(rows, cols);
            for _ in 0..rows {
                let nnz = r.u32()? as usize;
                for _ in 0..nnz {
                    let c = r.u32()? as usize;
                    let v = r.f64()?;
                    if c >= cols {
                        return Err(format!("CSR column {c} out of range"));
                    }
                    builder.push(c, v);
                }
                builder.finish_row();
            }
            Ok(PMatrix::Sparse(builder.build()))
        }
        other => Err(format!("unknown matrix tag {other}")),
    }
}

fn decode_ledger(r: &mut Reader) -> Result<(RoundLedger, bool), String> {
    let mut ledger = RoundLedger::new();
    for cat in CostCategory::ALL {
        let rounds = r.u64()?;
        let words = r.u64()?;
        ledger.charge(cat, rounds);
        ledger.add_words(cat, words);
    }
    let saturated = r.u8()? != 0;
    Ok((ledger, saturated))
}

struct DecodedEntry {
    key: CacheKey,
    config_fp: u64,
    p: PMatrix,
    phase1: Option<(RoundLedger, bool, Vec<Option<PMatrix>>)>,
}

fn decode_entry(r: &mut Reader) -> Result<DecodedEntry, String> {
    let algorithm = algorithm_from_tag(r.u8()?)?;
    let backend = backend_from_tag(r.u8()?)?;
    let precision = precision_from_tag(r.u8()?)?;
    let spec_len = r.u32()? as usize;
    if spec_len > crate::request::MAX_SPEC_LEN {
        return Err(format!("spec length {spec_len} exceeds the wire limit"));
    }
    let graph_spec = std::str::from_utf8(r.take(spec_len)?)
        .map_err(|_| "spec is not UTF-8".to_string())?
        .to_string();
    let config_fp = r.u64()?;
    let p = decode_pmatrix(r)?;
    let phase1 = match r.u8()? {
        0 => None,
        1 => {
            let (ledger, saturated) = decode_ledger(r)?;
            let level_count = r.u32()? as usize;
            if level_count > 64 {
                return Err(format!("{level_count} table levels is implausible"));
            }
            let mut levels = Vec::with_capacity(level_count);
            for _ in 0..level_count {
                levels.push(match r.u8()? {
                    0 => None,
                    1 => Some(decode_pmatrix(r)?),
                    other => return Err(format!("bad level flag {other}")),
                });
            }
            Some((ledger, saturated, levels))
        }
        other => return Err(format!("bad phase-1 flag {other}")),
    };
    Ok(DecodedEntry {
        key: CacheKey {
            algorithm,
            backend,
            precision,
            graph_spec,
        },
        config_fp,
        p,
        phase1,
    })
}

// ---- public API --------------------------------------------------------

/// Serializes `entries` (as returned by
/// [`PreparedCache::ready_entries`]) to `path`, atomically: the bytes
/// land in a sibling temp file first and are renamed into place, so a
/// crash mid-write never leaves a torn snapshot where a good one was.
/// Returns the number of entries written.
///
/// # Errors
///
/// A description of the I/O failure.
pub fn write_snapshot(
    path: &Path,
    entries: &[(CacheKey, Arc<PreparedSampler>)],
    options: &ServeOptions,
) -> Result<usize, String> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION);
    let writable: Vec<_> = entries
        .iter()
        .filter(|(k, _)| k.algorithm != Algorithm::Mst && precision_tag(k.precision) < 2)
        .collect();
    put_u32(&mut buf, writable.len() as u32);
    for (key, prepared) in &writable {
        let config = options
            .config_for(key.algorithm)
            .clone()
            .backend(key.backend)
            .precision(key.precision);
        encode_entry(&mut buf, key, config_fingerprint(&config), prepared);
    }
    let checksum = fnv64(&buf);
    put_u64(&mut buf, checksum);
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| format!("write snapshot {}: {e}", path.display());
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    file.write_all(&buf).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(writable.len())
}

/// Loads a snapshot and installs every entry that survives
/// verification into `cache` (see the module docs for the trust
/// model). A missing file is not an error — it returns an empty
/// summary, the cold-start case.
///
/// # Errors
///
/// Whole-file problems: unreadable file, bad magic, unsupported
/// version, checksum mismatch, truncation. Per-entry mismatches are
/// *not* errors; they are counted in [`RestoreSummary::skipped`].
pub fn load_snapshot(
    path: &Path,
    options: &ServeOptions,
    cache: &PreparedCache,
) -> Result<RestoreSummary, String> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(RestoreSummary::default()),
        Err(e) => return Err(format!("read snapshot {}: {e}", path.display())),
    };
    if data.len() < SNAPSHOT_MAGIC.len() + 4 + 4 + 8 {
        return Err("snapshot file is too short".into());
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv64(body) != stored {
        return Err("snapshot checksum mismatch (corrupted file)".into());
    }
    let mut r = Reader { data: body, pos: 0 };
    if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return Err("not a cct snapshot file (bad magic)".into());
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version} unsupported (this build reads {SNAPSHOT_VERSION})"
        ));
    }
    let count = r.u32()? as usize;
    let mut summary = RestoreSummary::default();
    for _ in 0..count {
        let entry = decode_entry(&mut r)?;
        match restore_entry(&entry, options) {
            Ok(prepared) => {
                cache.insert_ready(entry.key, Arc::new(prepared));
                summary.restored += 1;
            }
            Err(_) => summary.skipped += 1,
        }
    }
    if r.pos != body.len() {
        return Err("trailing bytes after the last entry".into());
    }
    Ok(summary)
}

/// Verifies one decoded entry against a fresh preparation and returns
/// the restored sampler (see [`PreparedSampler::restore`]).
fn restore_entry(entry: &DecodedEntry, options: &ServeOptions) -> Result<PreparedSampler, String> {
    if entry.key.algorithm == Algorithm::Mst {
        return Err("MST entries are never cached".into());
    }
    let config = options
        .config_for(entry.key.algorithm)
        .clone()
        .backend(entry.key.backend)
        .precision(entry.key.precision);
    if config_fingerprint(&config) != entry.config_fp {
        return Err("serving config changed since the snapshot was written".into());
    }
    let graph = build_spec_graph(&entry.key.graph_spec, entry.key.backend)?;
    let (levels, ledger) = match &entry.phase1 {
        Some((ledger, saturated, levels)) => {
            if *saturated != ledger.saturated() {
                return Err("ledger saturation flag does not match its totals".into());
            }
            (levels.clone(), Some(ledger))
        }
        None => (Vec::new(), None),
    };
    PreparedSampler::restore(config, &graph, &entry.p, levels, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_core::{CliqueTreeSampler, EngineChoice, WalkLength};
    use rand::SeedableRng;

    fn quick_options() -> ServeOptions {
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        ServeOptions::new()
            .workers(1)
            .config(Algorithm::Thm1, config.clone())
            .config(Algorithm::Exact, config)
    }

    fn prepared_for(spec: &str, options: &ServeOptions) -> Arc<PreparedSampler> {
        let graph = build_spec_graph(spec, Backend::Auto).unwrap();
        CliqueTreeSampler::new(options.config_for(Algorithm::Thm1).clone())
            .prepare(&graph)
            .unwrap()
            .into_shared()
    }

    fn key(spec: &str) -> CacheKey {
        CacheKey {
            algorithm: Algorithm::Thm1,
            backend: Backend::Auto,
            precision: Precision::Float64,
            graph_spec: spec.into(),
        }
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cct-snap-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn round_trips_entries_through_the_file() {
        let options = quick_options();
        let entries = vec![
            (key("cycle:64"), prepared_for("cycle:64", &options)),
            (key("petersen"), prepared_for("petersen", &options)),
        ];
        // Force a level to materialize so the snapshot carries one.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        entries[0].1.sample(&mut rng).unwrap();
        let path = tmp_path("roundtrip");
        assert_eq!(write_snapshot(&path, &entries, &options).unwrap(), 2);
        let cache = PreparedCache::new(8);
        let summary = load_snapshot(&path, &options, &cache).unwrap();
        assert_eq!(
            summary,
            RestoreSummary {
                restored: 2,
                skipped: 0
            }
        );
        // Restored entries serve identical draws without re-preparing.
        for (k, original) in &entries {
            let (restored, info) = cache.get_or_prepare(k, || panic!("must hit"));
            let restored = restored.unwrap();
            assert!(info.hit);
            let mut a = rand::rngs::StdRng::seed_from_u64(7);
            let mut b = rand::rngs::StdRng::seed_from_u64(7);
            let ra = original.sample(&mut a).unwrap();
            let rb = restored.sample(&mut b).unwrap();
            assert_eq!(ra.tree.edges(), rb.tree.edges());
            assert_eq!(ra.rounds, rb.rounds);
        }
        assert_eq!(cache.stats().total_prepares(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_files_are_rejected_whole() {
        let options = quick_options();
        let entries = vec![(key("petersen"), prepared_for("petersen", &options))];
        let path = tmp_path("corrupt");
        write_snapshot(&path, &entries, &options).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let cache = PreparedCache::new(8);
        let err = load_snapshot(&path, &options, &cache).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        assert_eq!(cache.stats().len, 0, "nothing installed from a bad file");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn config_mismatch_skips_the_entry_not_the_file() {
        let options = quick_options();
        let entries = vec![(key("petersen"), prepared_for("petersen", &options))];
        let path = tmp_path("config-mismatch");
        write_snapshot(&path, &entries, &options).unwrap();
        // Same file, different serving config: the entry is skipped and
        // left to rebuild cold.
        let other = quick_options().config(
            Algorithm::Thm1,
            SamplerConfig::new()
                .walk_length(WalkLength::ScaledCubic { factor: 8.0 })
                .engine(EngineChoice::UnitCost),
        );
        let cache = PreparedCache::new(8);
        let summary = load_snapshot(&path, &other, &cache).unwrap();
        assert_eq!(
            summary,
            RestoreSummary {
                restored: 0,
                skipped: 1
            }
        );
        assert_eq!(cache.stats().len, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_cold_start_not_an_error() {
        let cache = PreparedCache::new(8);
        let summary = load_snapshot(
            Path::new("/nonexistent/cct-snapshot.bin"),
            &quick_options(),
            &cache,
        )
        .unwrap();
        assert_eq!(summary, RestoreSummary::default());
    }

    #[test]
    fn truncated_and_misversioned_files_are_rejected() {
        let options = quick_options();
        let entries = vec![(key("petersen"), prepared_for("petersen", &options))];
        let path = tmp_path("truncated");
        write_snapshot(&path, &entries, &options).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let cache = PreparedCache::new(8);
        assert!(load_snapshot(&path, &options, &cache).is_err());
        // A tampered version field fails the checksum first — still
        // rejected whole, which is what matters.
        let mut v = bytes.clone();
        v[8] = 99;
        std::fs::write(&path, &v).unwrap();
        assert!(load_snapshot(&path, &options, &cache).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
