//! The wire layer: line-delimited JSON over a Unix or TCP socket.
//!
//! Framing is one JSON value per `\n`-terminated line, both directions.
//! Each request line gets exactly one response line: `{"ok": true, …}`
//! (see [`crate::SampleResponse::to_json`]) or
//! `{"ok": false, "error": …}`.
//! Malformed frames produce an error response on the same connection —
//! never a disconnect or a panic — so a client can pipeline requests
//! and recover from its own bad input. Blank lines are ignored.
//!
//! Request frames are capped at [`MAX_FRAME_LEN`] bytes: an oversized
//! frame is answered with a structured error and its remaining bytes
//! are discarded up to the terminating newline, after which the
//! connection keeps serving.
//!
//! Besides sampling requests, a connection accepts control frames
//! ([`crate::ControlCommand`]): `{"cmd": "stats"}`,
//! `{"cmd": "snapshot"}`, and `{"cmd": "shutdown"}` (which starts a
//! graceful drain of the whole endpoint — see [`crate::mux`]'s
//! module docs via [`serve_endpoint`]).
//!
//! [`serve_endpoint`] drives every connection from one multiplexed
//! nonblocking event loop with explicit backpressure
//! ([`crate::ServeOptions::max_concurrent`],
//! [`crate::ServeOptions::max_inflight`]) and idle-connection timeouts
//! ([`crate::ServeOptions::read_timeout`]).

use crate::mux::{self, LineOutcome, MuxConfig};
use crate::request::SampleRequest;
use crate::service::{error_frame, serve, ServeHandle, ServeOptions};
use cct_json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;

use crate::service::ServeError;

/// Hard cap on the length of one request frame, in bytes. A line that
/// exceeds it is answered with `{"ok": false, "error": …}` and
/// discarded; the connection stays usable. Response frames are not
/// capped (a large `count` legitimately produces a large reply).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Where a service listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH` or a TCP `host:port`.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for an empty address.
    ///
    /// # Examples
    ///
    /// ```
    /// use cct_serve::Endpoint;
    ///
    /// assert!(matches!(Endpoint::parse("unix:/tmp/cct.sock"), Ok(Endpoint::Unix(_))));
    /// assert!(matches!(Endpoint::parse("127.0.0.1:0"), Ok(Endpoint::Tcp(_))));
    /// ```
    pub fn parse(s: &str) -> Result<Endpoint, ServeError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ServeError::new("unix endpoint needs a path after 'unix:'"));
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.is_empty() {
            Err(ServeError::new("empty endpoint address"))
        } else {
            Ok(Endpoint::Tcp(s.to_string()))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

enum FrameRead {
    Eof,
    Line,
    Oversized,
}

/// Reads one `\n`-terminated frame into `buf`, never buffering more
/// than [`MAX_FRAME_LEN`] + 1 bytes. On overflow the remainder of the
/// line is discarded so the next read starts on a frame boundary.
fn read_frame<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<FrameRead> {
    let mut limited = reader.take((MAX_FRAME_LEN + 1) as u64);
    let n = limited.read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(FrameRead::Eof);
    }
    if buf.last() == Some(&b'\n') || n <= MAX_FRAME_LEN {
        return Ok(FrameRead::Line);
    }
    drain_to_newline(reader)?;
    Ok(FrameRead::Oversized)
}

fn drain_to_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(()); // EOF inside the oversized frame
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return Ok(());
        }
        let n = available.len();
        reader.consume(n);
    }
}

fn write_frame<W: Write>(writer: &mut W, frame: &Json) -> io::Result<()> {
    writer.write_all(frame.compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Serves one connection: reads request lines until EOF, writing one
/// response line each. I/O errors end the connection; request errors do
/// not. Frames longer than [`MAX_FRAME_LEN`] are answered with an error
/// frame and skipped. Control frames are dispatched inline; a
/// `{"cmd": "shutdown"}` frame is acknowledged and ends *this
/// connection* (only the multiplexed [`serve_endpoint`] loop drains the
/// whole endpoint).
///
/// This is the blocking, in-memory-friendly path — tests and embedders
/// drive it over any `BufRead`/`Write` pair; [`serve_endpoint`] serves
/// sockets through the multiplexed loop instead.
///
/// # Errors
///
/// The underlying stream's I/O errors.
pub fn serve_connection<R: BufRead, W: Write>(
    mut reader: R,
    writer: &mut W,
    handle: &ServeHandle,
) -> io::Result<()> {
    let mut buf = Vec::new();
    loop {
        // Read raw bytes rather than `lines()`: a non-UTF-8 line must be
        // answered with an error frame like any other malformed frame,
        // not turned into an InvalidData error that drops the
        // connection (and any pipelined requests behind it).
        buf.clear();
        match read_frame(&mut reader, &mut buf)? {
            FrameRead::Eof => return Ok(()),
            FrameRead::Oversized => {
                handle.shared().stats.record_protocol_error();
                write_frame(writer, &mux::oversized_frame())?;
                continue;
            }
            FrameRead::Line => {}
        }
        match mux::classify_line(handle, &buf) {
            LineOutcome::Skip => {}
            LineOutcome::Frame(frame) => write_frame(writer, &frame)?,
            LineOutcome::Shutdown(frame) => {
                write_frame(writer, &frame)?;
                return Ok(());
            }
            LineOutcome::Submit(request) => {
                let frame = match handle.request(request) {
                    Ok(response) => response.to_json(),
                    Err(e) => error_frame(&e.to_string()),
                };
                write_frame(writer, &frame)?;
            }
        }
    }
}

/// Client half of one frame exchange on an established stream: writes
/// `frame` as one line, reads one response line, and interprets its
/// `"ok"` field.
///
/// # Errors
///
/// [`ServeError`] for I/O failures, unparseable response frames, and
/// `{"ok": false}` responses (carrying the server's error message).
pub fn exchange_frame<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    frame: &Json,
) -> Result<Json, ServeError> {
    let io_err = |e: io::Error| ServeError::new(format!("connection error: {e}"));
    writer
        .write_all(frame.compact().as_bytes())
        .map_err(io_err)?;
    writer.write_all(b"\n").map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(io_err)?;
    if n == 0 {
        return Err(ServeError::new("server closed the connection"));
    }
    let reply = Json::parse(line.trim_end())
        .map_err(|e| ServeError::new(format!("unparseable response frame: {e}")))?;
    match reply.get("ok") {
        Some(Json::Bool(true)) => Ok(reply),
        Some(Json::Bool(false)) => Err(ServeError::new(
            reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error"),
        )),
        _ => Err(ServeError::new("response frame missing 'ok' field")),
    }
}

/// Client half of one request/response exchange on an established
/// stream.
///
/// # Errors
///
/// [`ServeError`] for I/O failures, unparseable response frames, and
/// `{"ok": false}` responses (carrying the server's error message).
pub fn exchange<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    request: &SampleRequest,
) -> Result<Json, ServeError> {
    exchange_frame(reader, writer, &request.to_json())
}

/// Binds `endpoint`, runs a service, and drives every connection from
/// one multiplexed nonblocking event loop (see [`crate::ServeOptions`]
/// for the backpressure and timeout knobs: `max_concurrent` bounds
/// *concurrent* connections, `max_inflight` bounds queued jobs,
/// `read_timeout` closes idle connections). `on_ready` runs once with
/// the bound address — for TCP with port 0, the *resolved* address —
/// before the first accept, so callers can print it or connect from
/// another thread.
///
/// `accept_limit` is a **test-only shutdown valve**: after that many
/// *lifetime* accepted connections (including empty ones, e.g. another
/// instance's liveness probe of a Unix path) the server stops
/// accepting and exits once every open connection closes. Production
/// servers pass `None` and bound load with
/// [`crate::ServeOptions::max_concurrent`] instead, which refuses
/// excess connections with `{"ok": false, "error": "overloaded"}`
/// without ever self-terminating.
///
/// # Errors
///
/// [`ServeError`] for bind failures. Per-connection I/O errors only end
/// that connection.
pub fn serve_endpoint(
    endpoint: &Endpoint,
    options: ServeOptions,
    accept_limit: Option<u64>,
    on_ready: impl FnOnce(&str),
) -> Result<(), ServeError> {
    serve_endpoint_with_shutdown(
        endpoint,
        options,
        accept_limit,
        &AtomicBool::new(false),
        on_ready,
    )
}

/// [`serve_endpoint`] with an external shutdown flag: setting
/// `shutdown` to `true` starts the same graceful drain a
/// `{"cmd": "shutdown"}` frame does — stop accepting, flush every
/// in-flight reply, exit once all connections close (bounded by
/// [`crate::ServeOptions::drain_grace`]). If a snapshot path is
/// configured, the cache is snapshotted on the way out.
///
/// # Errors
///
/// [`ServeError`] for bind failures.
pub fn serve_endpoint_with_shutdown(
    endpoint: &Endpoint,
    options: ServeOptions,
    accept_limit: Option<u64>,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(&str),
) -> Result<(), ServeError> {
    let cfg = MuxConfig::from_options(&options, accept_limit);
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)
                .map_err(|e| ServeError::new(format!("bind {addr}: {e}")))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| ServeError::new(format!("set_nonblocking: {e}")))?;
            let local = listener
                .local_addr()
                .map_err(|e| ServeError::new(format!("local_addr: {e}")))?;
            serve(options, |handle| {
                on_ready(&local.to_string());
                mux::mux_loop(
                    || nonblocking_accept(listener.accept().map(|(s, _)| s)),
                    &handle,
                    &cfg,
                    shutdown,
                );
                final_snapshot(&handle);
            });
            Ok(())
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            // A dead server's leftover socket file would make bind fail
            // with AddrInUse — but only reclaim the path if nothing is
            // actually listening, so a second instance errors out
            // instead of silently hijacking a live server's address.
            if path.exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(ServeError::new(format!(
                        "{} already has a live server listening",
                        path.display()
                    )));
                }
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)
                .map_err(|e| ServeError::new(format!("bind {}: {e}", path.display())))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| ServeError::new(format!("set_nonblocking: {e}")))?;
            serve(options, |handle| {
                on_ready(&format!("unix:{}", path.display()));
                mux::mux_loop(
                    || nonblocking_accept(listener.accept().map(|(s, _)| s)),
                    &handle,
                    &cfg,
                    shutdown,
                );
                final_snapshot(&handle);
            });
            let _ = std::fs::remove_file(path);
            Ok(())
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => Err(ServeError::new(
            "unix endpoints are not supported on this platform",
        )),
    }
}

fn nonblocking_accept<S>(result: io::Result<S>) -> io::Result<Option<S>> {
    match result {
        Ok(stream) => Ok(Some(stream)),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    }
}

/// Writes a final cache snapshot on graceful exit, if a path is
/// configured. Best-effort: a failure is reported, not fatal.
fn final_snapshot(handle: &ServeHandle) {
    if let Some(path) = handle.snapshot_path().map(Path::to_path_buf) {
        if let Err(e) = handle.write_snapshot(&path) {
            eprintln!("snapshot write failed: {e}");
        }
    }
}

fn tcp_split(stream: TcpStream) -> io::Result<(BufReader<TcpStream>, TcpStream)> {
    Ok((BufReader::new(stream.try_clone()?), stream))
}

#[cfg(unix)]
fn unix_split(stream: UnixStream) -> io::Result<(BufReader<UnixStream>, UnixStream)> {
    Ok((BufReader::new(stream.try_clone()?), stream))
}

/// Connects to a served endpoint, performs one request/response
/// exchange, and returns the parsed `{"ok": true}` frame.
///
/// # Errors
///
/// [`ServeError`] for connect/I-O failures and error responses.
pub fn request_endpoint(endpoint: &Endpoint, request: &SampleRequest) -> Result<Json, ServeError> {
    request_endpoint_frame(endpoint, &request.to_json())
}

/// Connects to a served endpoint, sends one arbitrary frame (e.g. a
/// [`crate::ControlCommand`]'s `to_json`), and returns the parsed
/// `{"ok": true}` reply.
///
/// # Errors
///
/// [`ServeError`] for connect/I-O failures and error responses.
pub fn request_endpoint_frame(endpoint: &Endpoint, frame: &Json) -> Result<Json, ServeError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr)
                .map_err(|e| ServeError::new(format!("connect {addr}: {e}")))?;
            let (mut reader, mut writer) =
                tcp_split(stream).map_err(|e| ServeError::new(format!("connection error: {e}")))?;
            exchange_frame(&mut reader, &mut writer, frame)
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)
                .map_err(|e| ServeError::new(format!("connect {}: {e}", path.display())))?;
            let (mut reader, mut writer) = unix_split(stream)
                .map_err(|e| ServeError::new(format!("connection error: {e}")))?;
            exchange_frame(&mut reader, &mut writer, frame)
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => Err(ServeError::new(
            "unix endpoints are not supported on this platform",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Algorithm, ControlCommand};
    use cct_core::{EngineChoice, SamplerConfig, WalkLength};

    fn quick_options() -> ServeOptions {
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        ServeOptions::new()
            .workers(2)
            .config(Algorithm::Thm1, config.clone())
            .config(Algorithm::Exact, config)
    }

    /// Drives `serve_connection` over in-memory buffers: each input
    /// line must yield exactly one response line.
    fn roundtrip_lines(input: &[u8]) -> Vec<Json> {
        let mut out: Vec<u8> = Vec::new();
        serve(quick_options(), |handle| {
            serve_connection(input, &mut out, &handle).unwrap();
        });
        let text = String::from_utf8(out).unwrap();
        text.lines().map(|l| Json::parse(l).unwrap()).collect()
    }

    #[test]
    fn one_response_line_per_request_line() {
        let frames = roundtrip_lines(
            b"{\"graph\": \"petersen\", \"seed\": 7, \"count\": 2}\n\
             \n\
             not json at all\n\
             {\"graph\": \"complete:8\"}\n",
        );
        assert_eq!(frames.len(), 3, "blank line ignored, bad line answered");
        assert_eq!(frames[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(frames[0].get("draws").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(frames[1].get("ok"), Some(&Json::Bool(false)));
        assert!(frames[1].get("error").unwrap().as_str().is_some());
        assert_eq!(frames[2].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn oversized_frames_get_an_error_and_the_connection_survives() {
        // One giant junk line (over the cap, no newline until the end),
        // then a valid request: both answered, in order.
        let mut input = vec![b'x'; MAX_FRAME_LEN + 100];
        input.push(b'\n');
        input.extend_from_slice(
            SampleRequest::new("complete:4")
                .to_json()
                .compact()
                .as_bytes(),
        );
        input.push(b'\n');
        let frames = roundtrip_lines(&input);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].get("ok"), Some(&Json::Bool(false)));
        assert!(
            frames[0]
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("exceeds"),
            "{:?}",
            frames[0]
        );
        assert_eq!(frames[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn exactly_max_len_frames_still_parse() {
        // A valid request padded with trailing spaces to exactly the
        // cap must still be served (the limit is exclusive).
        let mut line = SampleRequest::new("complete:4").to_json().compact();
        let pad = MAX_FRAME_LEN - line.len();
        line.extend(std::iter::repeat_n(' ', pad));
        assert_eq!(line.len(), MAX_FRAME_LEN);
        line.push('\n');
        let frames = roundtrip_lines(line.as_bytes());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn control_frames_answer_inline() {
        let input = format!(
            "{}\n{}\n",
            SampleRequest::new("petersen").to_json().compact(),
            ControlCommand::Stats.to_json().compact()
        );
        let frames = roundtrip_lines(input.as_bytes());
        assert_eq!(frames.len(), 2);
        let stats = frames[1].get("stats").expect("stats frame");
        let requests = stats.get("requests").unwrap();
        assert_eq!(requests.get("thm1").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn tcp_endpoint_serves_and_replays_identically() {
        let endpoint = Endpoint::parse("127.0.0.1:0").unwrap();
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        std::thread::scope(|s| {
            s.spawn(|| {
                serve_endpoint(&endpoint, quick_options(), Some(2), move |addr| {
                    addr_tx.send(addr.to_string()).unwrap();
                })
                .unwrap();
            });
            let bound = Endpoint::Tcp(addr_rx.recv().unwrap());
            let request = SampleRequest::new("petersen").seed(42).count(2);
            let a = request_endpoint(&bound, &request).unwrap();
            let b = request_endpoint(&bound, &request).unwrap();
            // The determinism contract covers the draws; cache metadata
            // legitimately differs between the two connections.
            assert_eq!(a.get("draws"), b.get("draws"));
            assert_eq!(a.get("cache").unwrap().get("hit"), Some(&Json::Bool(false)));
            assert_eq!(b.get("cache").unwrap().get("hit"), Some(&Json::Bool(true)));
        });
    }

    #[test]
    fn invalid_utf8_lines_get_an_error_frame_not_a_disconnect() {
        // A bogus-bytes line followed by a valid request: both answered
        // on the same connection.
        let mut input: Vec<u8> = vec![0xFF, 0xFE, 0x01, b'\n'];
        input.extend_from_slice(
            SampleRequest::new("complete:4")
                .to_json()
                .compact()
                .as_bytes(),
        );
        input.push(b'\n');
        let frames = roundtrip_lines(&input);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].get("ok"), Some(&Json::Bool(false)));
        assert!(frames[0]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("UTF-8"));
        assert_eq!(frames[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_refuses_live_sockets_but_reclaims_stale_files() {
        let path =
            std::env::temp_dir().join(format!("cct-serve-bind-test-{}.sock", std::process::id()));
        // Live listener on the path: a second server must refuse.
        let live = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let err = serve_endpoint(
            &Endpoint::Unix(path.clone()),
            quick_options(),
            Some(0),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("live server"), "{err}");
        assert!(path.exists(), "the live socket must be left alone");
        // Dead listener, stale file: the next server reclaims it.
        drop(live);
        assert!(path.exists(), "dropping the listener leaves the file");
        serve_endpoint(
            &Endpoint::Unix(path.clone()),
            quick_options(),
            Some(0),
            |_| {},
        )
        .unwrap();
        assert!(!path.exists(), "served and cleaned up");
    }

    #[cfg(unix)]
    #[test]
    fn unix_endpoint_serves_and_cleans_up() {
        let path = std::env::temp_dir().join(format!("cct-serve-test-{}.sock", std::process::id()));
        let endpoint = Endpoint::Unix(path.clone());
        std::thread::scope(|s| {
            let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
            let ep = endpoint.clone();
            s.spawn(move || {
                serve_endpoint(&ep, quick_options(), Some(1), move |_| {
                    ready_tx.send(()).unwrap();
                })
                .unwrap();
            });
            ready_rx.recv().unwrap();
            let frame =
                request_endpoint(&endpoint, &SampleRequest::new("complete:8").seed(3)).unwrap();
            assert_eq!(frame.get("ok"), Some(&Json::Bool(true)));
        });
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn error_responses_carry_the_server_message() {
        let endpoint = Endpoint::parse("127.0.0.1:0").unwrap();
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        std::thread::scope(|s| {
            s.spawn(|| {
                serve_endpoint(&endpoint, quick_options(), Some(1), move |addr| {
                    addr_tx.send(addr.to_string()).unwrap();
                })
                .unwrap();
            });
            let bound = Endpoint::Tcp(addr_rx.recv().unwrap());
            let err =
                request_endpoint(&bound, &SampleRequest::new("no-such-family:9")).unwrap_err();
            assert!(err.to_string().contains("bad graph spec"), "{err}");
        });
    }
}
