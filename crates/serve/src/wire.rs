//! The wire layer: line-delimited JSON over a Unix or TCP socket.
//!
//! Framing is one JSON value per `\n`-terminated line, both directions.
//! Each request line gets exactly one response line: `{"ok": true, …}`
//! (see [`crate::SampleResponse::to_json`]) or
//! `{"ok": false, "error": …}`.
//! Malformed frames produce an error response on the same connection —
//! never a disconnect or a panic — so a client can pipeline requests
//! and recover from its own bad input. Blank lines are ignored.

use crate::request::SampleRequest;
use crate::service::{error_frame, serve, ServeHandle, ServeOptions};
use cct_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use crate::service::ServeError;

/// Where a service listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH` or a TCP `host:port`.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for an empty address.
    ///
    /// # Examples
    ///
    /// ```
    /// use cct_serve::Endpoint;
    ///
    /// assert!(matches!(Endpoint::parse("unix:/tmp/cct.sock"), Ok(Endpoint::Unix(_))));
    /// assert!(matches!(Endpoint::parse("127.0.0.1:0"), Ok(Endpoint::Tcp(_))));
    /// ```
    pub fn parse(s: &str) -> Result<Endpoint, ServeError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ServeError::new("unix endpoint needs a path after 'unix:'"));
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.is_empty() {
            Err(ServeError::new("empty endpoint address"))
        } else {
            Ok(Endpoint::Tcp(s.to_string()))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Serves one connection: reads request lines until EOF, writing one
/// response line each. I/O errors end the connection; request errors do
/// not.
///
/// # Errors
///
/// The underlying stream's I/O errors.
pub fn serve_connection<R: BufRead, W: Write>(
    mut reader: R,
    writer: &mut W,
    handle: &ServeHandle,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    loop {
        // Read raw bytes rather than `lines()`: a non-UTF-8 line must be
        // answered with an error frame like any other malformed frame,
        // not turned into an InvalidData error that drops the
        // connection (and any pipelined requests behind it).
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(()); // EOF
        }
        let parsed = match std::str::from_utf8(&buf) {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => SampleRequest::parse_line(line.trim_end_matches(['\n', '\r'])),
            Err(_) => Err(crate::ProtocolError::new("request line is not valid UTF-8")),
        };
        let frame = match parsed {
            Ok(request) => match handle.request(request) {
                Ok(response) => response.to_json(),
                Err(e) => error_frame(&e.to_string()),
            },
            Err(e) => error_frame(&e.to_string()),
        };
        writer.write_all(frame.compact().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Client half of one request/response exchange on an established
/// stream.
///
/// # Errors
///
/// [`ServeError`] for I/O failures, unparseable response frames, and
/// `{"ok": false}` responses (carrying the server's error message).
pub fn exchange<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    request: &SampleRequest,
) -> Result<Json, ServeError> {
    let io_err = |e: std::io::Error| ServeError::new(format!("connection error: {e}"));
    writer
        .write_all(request.to_json().compact().as_bytes())
        .map_err(io_err)?;
    writer.write_all(b"\n").map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(io_err)?;
    if n == 0 {
        return Err(ServeError::new("server closed the connection"));
    }
    let frame = Json::parse(line.trim_end())
        .map_err(|e| ServeError::new(format!("unparseable response frame: {e}")))?;
    match frame.get("ok") {
        Some(Json::Bool(true)) => Ok(frame),
        Some(Json::Bool(false)) => Err(ServeError::new(
            frame
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error"),
        )),
        _ => Err(ServeError::new("response frame missing 'ok' field")),
    }
}

/// Binds `endpoint`, runs a service, and accepts connections (each on
/// its own scoped thread) until `max_conns` connections have been
/// accepted (forever if `None`). `on_ready` runs once with the bound
/// address — for TCP with port 0, the *resolved* address — before the
/// first accept, so callers can print it or connect from another
/// thread.
///
/// `max_conns` counts *accepted connections*, including empty ones
/// (e.g. another instance's liveness probe of a Unix path), so treat it
/// as a shutdown valve for scripts and tests, not an exact request
/// quota.
///
/// # Errors
///
/// [`ServeError`] for bind failures. Per-connection I/O errors only end
/// that connection.
pub fn serve_endpoint(
    endpoint: &Endpoint,
    options: ServeOptions,
    max_conns: Option<u64>,
    on_ready: impl FnOnce(&str),
) -> Result<(), ServeError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)
                .map_err(|e| ServeError::new(format!("bind {addr}: {e}")))?;
            let local = listener
                .local_addr()
                .map_err(|e| ServeError::new(format!("local_addr: {e}")))?;
            serve(options, |handle| {
                on_ready(&local.to_string());
                accept_loop(
                    || listener.accept().map(|(s, _)| s),
                    tcp_split,
                    &handle,
                    max_conns,
                );
            });
            Ok(())
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            // A dead server's leftover socket file would make bind fail
            // with AddrInUse — but only reclaim the path if nothing is
            // actually listening, so a second instance errors out
            // instead of silently hijacking a live server's address.
            if path.exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(ServeError::new(format!(
                        "{} already has a live server listening",
                        path.display()
                    )));
                }
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)
                .map_err(|e| ServeError::new(format!("bind {}: {e}", path.display())))?;
            serve(options, |handle| {
                on_ready(&format!("unix:{}", path.display()));
                accept_loop(
                    || listener.accept().map(|(s, _)| s),
                    unix_split,
                    &handle,
                    max_conns,
                );
            });
            let _ = std::fs::remove_file(path);
            Ok(())
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => Err(ServeError::new(
            "unix endpoints are not supported on this platform",
        )),
    }
}

fn tcp_split(stream: TcpStream) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    Ok((BufReader::new(stream.try_clone()?), stream))
}

#[cfg(unix)]
fn unix_split(stream: UnixStream) -> std::io::Result<(BufReader<UnixStream>, UnixStream)> {
    Ok((BufReader::new(stream.try_clone()?), stream))
}

/// Accepts up to `max_conns` connections, serving each on a scoped
/// thread so slow clients do not block the accept loop; joins them all
/// before returning.
fn accept_loop<S, R, W>(
    mut accept: impl FnMut() -> std::io::Result<S>,
    split: impl Fn(S) -> std::io::Result<(R, W)> + Copy + Send,
    handle: &ServeHandle,
    max_conns: Option<u64>,
) where
    S: Send,
    R: BufRead + Send,
    W: Write + Send,
{
    std::thread::scope(|s| {
        let mut accepted = 0u64;
        let mut consecutive_errors = 0u32;
        loop {
            if let Some(max) = max_conns {
                if accepted >= max {
                    break;
                }
            }
            let stream = match accept() {
                Ok(stream) => stream,
                Err(e) => {
                    // Transient errors (a client aborting mid-handshake)
                    // are worth retrying with a breather; a listener
                    // that fails persistently (fd exhaustion, closed
                    // socket) would otherwise spin this loop at 100%
                    // CPU forever — give up instead.
                    consecutive_errors += 1;
                    if consecutive_errors >= 16 {
                        eprintln!("accept failing persistently, shutting down: {e}");
                        break;
                    }
                    eprintln!("accept error: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(
                        10 << consecutive_errors.min(6),
                    ));
                    continue;
                }
            };
            consecutive_errors = 0;
            accepted += 1;
            let handle = handle.clone();
            s.spawn(move || {
                // Disconnects mid-request are the client's business.
                if let Ok((reader, mut writer)) = split(stream) {
                    let _ = serve_connection(reader, &mut writer, &handle);
                }
            });
        }
    });
}

/// Connects to a served endpoint, performs one request/response
/// exchange, and returns the parsed `{"ok": true}` frame.
///
/// # Errors
///
/// [`ServeError`] for connect/I-O failures and error responses.
pub fn request_endpoint(endpoint: &Endpoint, request: &SampleRequest) -> Result<Json, ServeError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr)
                .map_err(|e| ServeError::new(format!("connect {addr}: {e}")))?;
            let (mut reader, mut writer) =
                tcp_split(stream).map_err(|e| ServeError::new(format!("connection error: {e}")))?;
            exchange(&mut reader, &mut writer, request)
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)
                .map_err(|e| ServeError::new(format!("connect {}: {e}", path.display())))?;
            let (mut reader, mut writer) = unix_split(stream)
                .map_err(|e| ServeError::new(format!("connection error: {e}")))?;
            exchange(&mut reader, &mut writer, request)
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => Err(ServeError::new(
            "unix endpoints are not supported on this platform",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Algorithm;
    use cct_core::{EngineChoice, SamplerConfig, WalkLength};

    fn quick_options() -> ServeOptions {
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        ServeOptions::new()
            .workers(2)
            .config(Algorithm::Thm1, config.clone())
            .config(Algorithm::Exact, config)
    }

    /// Drives `serve_connection` over in-memory buffers: each input
    /// line must yield exactly one response line.
    fn roundtrip_lines(input: &str) -> Vec<Json> {
        let mut out: Vec<u8> = Vec::new();
        serve(quick_options(), |handle| {
            serve_connection(input.as_bytes(), &mut out, &handle).unwrap();
        });
        let text = String::from_utf8(out).unwrap();
        text.lines().map(|l| Json::parse(l).unwrap()).collect()
    }

    #[test]
    fn one_response_line_per_request_line() {
        let frames = roundtrip_lines(
            "{\"graph\": \"petersen\", \"seed\": 7, \"count\": 2}\n\
             \n\
             not json at all\n\
             {\"graph\": \"complete:8\"}\n",
        );
        assert_eq!(frames.len(), 3, "blank line ignored, bad line answered");
        assert_eq!(frames[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(frames[0].get("draws").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(frames[1].get("ok"), Some(&Json::Bool(false)));
        assert!(frames[1].get("error").unwrap().as_str().is_some());
        assert_eq!(frames[2].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn tcp_endpoint_serves_and_replays_identically() {
        let endpoint = Endpoint::parse("127.0.0.1:0").unwrap();
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        std::thread::scope(|s| {
            s.spawn(|| {
                serve_endpoint(&endpoint, quick_options(), Some(2), move |addr| {
                    addr_tx.send(addr.to_string()).unwrap();
                })
                .unwrap();
            });
            let bound = Endpoint::Tcp(addr_rx.recv().unwrap());
            let request = SampleRequest::new("petersen").seed(42).count(2);
            let a = request_endpoint(&bound, &request).unwrap();
            let b = request_endpoint(&bound, &request).unwrap();
            // The determinism contract covers the draws; cache metadata
            // legitimately differs between the two connections.
            assert_eq!(a.get("draws"), b.get("draws"));
            assert_eq!(a.get("cache").unwrap().get("hit"), Some(&Json::Bool(false)));
            assert_eq!(b.get("cache").unwrap().get("hit"), Some(&Json::Bool(true)));
        });
    }

    #[test]
    fn invalid_utf8_lines_get_an_error_frame_not_a_disconnect() {
        // A bogus-bytes line followed by a valid request: both answered
        // on the same connection.
        let mut input: Vec<u8> = vec![0xFF, 0xFE, 0x01, b'\n'];
        input.extend_from_slice(
            SampleRequest::new("complete:4")
                .to_json()
                .compact()
                .as_bytes(),
        );
        input.push(b'\n');
        let mut out: Vec<u8> = Vec::new();
        serve(quick_options(), |handle| {
            serve_connection(&input[..], &mut out, &handle).unwrap();
        });
        let frames: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].get("ok"), Some(&Json::Bool(false)));
        assert!(frames[0]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("UTF-8"));
        assert_eq!(frames[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_refuses_live_sockets_but_reclaims_stale_files() {
        let path =
            std::env::temp_dir().join(format!("cct-serve-bind-test-{}.sock", std::process::id()));
        // Live listener on the path: a second server must refuse.
        let live = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let err = serve_endpoint(
            &Endpoint::Unix(path.clone()),
            quick_options(),
            Some(0),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("live server"), "{err}");
        assert!(path.exists(), "the live socket must be left alone");
        // Dead listener, stale file: the next server reclaims it.
        drop(live);
        assert!(path.exists(), "dropping the listener leaves the file");
        serve_endpoint(
            &Endpoint::Unix(path.clone()),
            quick_options(),
            Some(0),
            |_| {},
        )
        .unwrap();
        assert!(!path.exists(), "served and cleaned up");
    }

    #[cfg(unix)]
    #[test]
    fn unix_endpoint_serves_and_cleans_up() {
        let path = std::env::temp_dir().join(format!("cct-serve-test-{}.sock", std::process::id()));
        let endpoint = Endpoint::Unix(path.clone());
        std::thread::scope(|s| {
            let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
            let ep = endpoint.clone();
            s.spawn(move || {
                serve_endpoint(&ep, quick_options(), Some(1), move |_| {
                    ready_tx.send(()).unwrap();
                })
                .unwrap();
            });
            ready_rx.recv().unwrap();
            let frame =
                request_endpoint(&endpoint, &SampleRequest::new("complete:8").seed(3)).unwrap();
            assert_eq!(frame.get("ok"), Some(&Json::Bool(true)));
        });
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn error_responses_carry_the_server_message() {
        let endpoint = Endpoint::parse("127.0.0.1:0").unwrap();
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        std::thread::scope(|s| {
            s.spawn(|| {
                serve_endpoint(&endpoint, quick_options(), Some(1), move |addr| {
                    addr_tx.send(addr.to_string()).unwrap();
                })
                .unwrap();
            });
            let bound = Endpoint::Tcp(addr_rx.recv().unwrap());
            let err =
                request_endpoint(&bound, &SampleRequest::new("no-such-family:9")).unwrap_err();
            assert!(err.to_string().contains("bad graph spec"), "{err}");
        });
    }
}
