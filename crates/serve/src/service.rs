//! The in-process service: a `std::thread::scope` worker pool pulling
//! [`SampleRequest`] jobs off a channel, serving draws from the shared
//! [`PreparedCache`].
//!
//! The entry point is [`serve`]: it owns the workers' lifetime, so there
//! is no detached state — when the closure returns and every
//! [`ServeHandle`] clone is dropped, the job channel closes, the workers
//! drain and exit, and the scope joins them.

use crate::cache::{CacheInfo, CacheKey, CacheStats, PreparedCache};
use crate::request::{spec_seed, Algorithm, SampleRequest};
use crate::snapshot;
use crate::stats::ServeStats;
use cct_core::{CliqueTreeSampler, SamplerConfig};
use cct_json::Json;
use cct_sim::{RoundLedger, Workers};
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A request the service could not serve: invalid values, an unknown or
/// unbuildable graph spec, a disconnected graph, or a phase failure.
/// Carried on the wire as `{"ok": false, "error": …}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ServeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

/// One served tree: the draw's derived seed, the sampled edges, and the
/// full round ledger of the run (byte-identical to a cold
/// single-threaded run at [`SampleRequest::draw_seed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Draw {
    /// The derived RNG seed this draw ran with.
    pub draw_seed: u64,
    /// The sampled spanning tree's edges.
    pub edges: Vec<(usize, usize)>,
    /// The run's round/traffic ledger.
    pub ledger: RoundLedger,
    /// Theorem 1's Monte Carlo failure flag (an arbitrary tree was
    /// emitted; probability ≤ ε).
    pub monte_carlo_failure: bool,
}

impl Draw {
    /// The draw's wire value.
    pub fn to_json(&self) -> Json {
        let breakdown = Json::Obj(
            self.ledger
                .breakdown()
                .into_iter()
                .map(|(c, r)| (c.to_string(), Json::Num(r as f64)))
                .collect(),
        );
        let mut fields = vec![
            ("seed".into(), Json::from_u64(self.draw_seed)),
            (
                "edges".into(),
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
                        .collect(),
                ),
            ),
            (
                "rounds".into(),
                Json::Num(self.ledger.total_rounds() as f64),
            ),
            ("words".into(), Json::Num(self.ledger.total_words() as f64)),
            ("breakdown".into(), breakdown),
        ];
        if self.monte_carlo_failure {
            fields.push(("failure".into(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }
}

/// A served request: the echoed request, cache metadata, and `count`
/// draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResponse {
    /// The request this answers.
    pub request: SampleRequest,
    /// Cache metadata (excluded from the determinism contract — see
    /// [`CacheInfo`]).
    pub cache: CacheInfo,
    /// Resident bytes of the prepared state serving this response
    /// (`PreparedSampler::matrix_bytes`), measured *after* the draws —
    /// so lazily materialized power-table levels are included. Like
    /// `cache`, a point-in-time observation excluded from the
    /// determinism contract (an entry shared with earlier requests may
    /// already be fully materialized).
    pub resident_bytes: usize,
    /// The draws, in draw-index order.
    pub draws: Vec<Draw>,
}

impl SampleResponse {
    /// The response's wire value:
    /// `{"ok": true, "graph": …, "algorithm": …, "seed": …, "cache": …,
    /// "draws": […]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("graph".into(), Json::Str(self.request.graph_spec.clone())),
            (
                "algorithm".into(),
                Json::Str(self.request.algorithm.as_str().into()),
            ),
            ("seed".into(), Json::from_u64(self.request.seed)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hit".into(), Json::Bool(self.cache.hit)),
                    ("prepares".into(), Json::Num(self.cache.prepares as f64)),
                    (
                        "resident_bytes".into(),
                        Json::Num(self.resident_bytes as f64),
                    ),
                ]),
            ),
            (
                "draws".into(),
                Json::Arr(self.draws.iter().map(Draw::to_json).collect()),
            ),
        ])
    }
}

/// The wire frame for any failed request.
pub fn error_frame(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.into())),
    ])
}

/// Service configuration: worker-pool width, cache capacity, and the
/// sampler configuration behind each [`Algorithm`].
///
/// The default configs match the CLI's sequential `thm1` / `exact`
/// paths, so for *fixed* graph families a served draw replays exactly
/// as `cct <algorithm> --graph <spec> --seed <derived>`. Randomized
/// families (`er:N:P`, `regular:N:D`) still replay bit for bit, but
/// not through that CLI one-liner: the CLI derives the graph from its
/// `--seed` while the service derives it from [`crate::spec_seed`] —
/// rebuild the graph with `parse_spec(spec, StdRng(spec_seed(spec)))`
/// and run `CliqueTreeSampler` at the derived draw seed instead (what
/// the stress suite's cold reference does).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    workers: usize,
    cache_capacity: usize,
    thm1: SamplerConfig,
    exact: SamplerConfig,
    read_timeout: Option<Duration>,
    max_concurrent: usize,
    /// `None` = derive from the final worker count (`4 × workers`), so
    /// a later [`Self::workers`] call moves the default with it.
    max_inflight: Option<usize>,
    drain_grace: Duration,
    snapshot_path: Option<PathBuf>,
}

impl ServeOptions {
    /// Defaults: worker count from `CCT_WORKERS` (else the machine's
    /// parallelism), a 16-entry cache, the CLI's sampler configs, a
    /// 30 s idle read timeout, up to 256 concurrent connections,
    /// `4 × workers` in-flight requests, a 5 s drain grace period, and
    /// no snapshot persistence.
    pub fn new() -> Self {
        let workers = Workers::Auto.resolve(usize::MAX);
        ServeOptions {
            // Reuse the round engine's policy resolution: CCT_WORKERS
            // overrides, hardware parallelism otherwise. The `usize::MAX`
            // argument is the "machine count" cap, irrelevant here.
            workers,
            cache_capacity: 16,
            thm1: SamplerConfig::new().threads(4),
            exact: SamplerConfig::exact_variant().threads(4),
            read_timeout: Some(Duration::from_secs(30)),
            max_concurrent: 256,
            max_inflight: None,
            drain_grace: Duration::from_secs(5),
            snapshot_path: None,
        }
    }

    /// Sets the worker-pool width (floored at 1). Workers parallelize
    /// *across* jobs; each sampler runs its configured (default
    /// sequential) engine, so the pool width never changes any result.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the prepared-sampler cache capacity (floored at 1).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Overrides the sampler configuration behind one algorithm.
    /// Changing a config changes the served streams — it is part of the
    /// determinism contract's "(graph, config) key", fixed per service.
    /// The MST engine takes no sampler configuration (it is
    /// deterministic and walk-free), so an `Mst` override is a no-op.
    pub fn config(mut self, algorithm: Algorithm, config: SamplerConfig) -> Self {
        match algorithm {
            Algorithm::Thm1 => self.thm1 = config,
            Algorithm::Exact => self.exact = config,
            Algorithm::Mst => {}
        }
        self
    }

    /// Sets the idle read timeout the socket front-end applies per
    /// connection: a client that sends nothing for this long (with no
    /// reply in flight toward it) is closed cleanly. `None` disables
    /// the timeout — half-open clients then pin connection slots
    /// forever, which is exactly the bug the default guards against.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Bounds **concurrent** connections (floored at 1). A connection
    /// arriving at the bound is answered with one structured
    /// `{"ok": false, "error": "overloaded"}` frame and closed — never
    /// silently dropped.
    pub fn max_concurrent(mut self, max: usize) -> Self {
        self.max_concurrent = max.max(1);
        self
    }

    /// Bounds in-flight requests across all connections (floored at 1).
    /// Requests beyond the bound are refused with the `overloaded`
    /// error frame instead of queueing without limit. Unset, the bound
    /// tracks the worker count: `4 × workers`.
    pub fn max_inflight(mut self, max: usize) -> Self {
        self.max_inflight = Some(max.max(1));
        self
    }

    /// Sets the grace period a draining server gives open connections
    /// to read their flushed replies and close before it exits anyway.
    pub fn drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// Enables cache persistence: the prepared-sampler cache is
    /// restored from `path` at startup (corrupted or mismatched
    /// snapshots are rejected and rebuilt cold — see
    /// [`crate::snapshot`]) and written back on graceful shutdown or
    /// on a `{"cmd": "snapshot"}` frame.
    pub fn snapshot(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    pub(crate) fn config_for(&self, algorithm: Algorithm) -> &SamplerConfig {
        match algorithm {
            Algorithm::Thm1 => &self.thm1,
            Algorithm::Exact => &self.exact,
            Algorithm::Mst => {
                unreachable!("the MST path never builds a phase sampler")
            }
        }
    }

    pub(crate) fn read_timeout_value(&self) -> Option<Duration> {
        self.read_timeout
    }

    pub(crate) fn max_concurrent_value(&self) -> usize {
        self.max_concurrent
    }

    pub(crate) fn max_inflight_value(&self) -> usize {
        self.max_inflight.unwrap_or(4 * self.workers)
    }

    pub(crate) fn drain_grace_value(&self) -> Duration {
        self.drain_grace
    }

    pub(crate) fn snapshot_path_value(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions::new()
    }
}

struct Job {
    request: SampleRequest,
    reply: mpsc::Sender<Result<SampleResponse, ServeError>>,
}

pub(crate) struct Shared {
    pub(crate) options: ServeOptions,
    pub(crate) cache: PreparedCache,
    pub(crate) stats: ServeStats,
}

/// A client's handle to a running service: submit jobs, read cache
/// stats. Clone freely across client threads — every clone must be
/// dropped before the closure passed to [`serve`] returns, or the
/// worker scope cannot join.
///
/// # Examples
///
/// ```
/// use cct_serve::{serve, SampleRequest, ServeOptions};
///
/// serve(ServeOptions::new().workers(2), |handle| {
///     let response = handle
///         .request(SampleRequest::new("petersen").seed(7).count(2))
///         .unwrap();
///     assert_eq!(response.draws.len(), 2);
///     assert_eq!(response.draws[0].edges.len(), 9);
///     // Same request again: served from cache, identical draws.
///     let replay = handle
///         .request(SampleRequest::new("petersen").seed(7).count(2))
///         .unwrap();
///     assert_eq!(replay.draws, response.draws);
///     assert!(replay.cache.hit);
/// });
/// ```
#[derive(Clone)]
pub struct ServeHandle {
    jobs: mpsc::Sender<Job>,
    shared: Arc<Shared>,
}

/// A submitted job's future response (blocking or polled).
pub struct Pending {
    reply: mpsc::Receiver<Result<SampleResponse, ServeError>>,
}

impl Pending {
    /// Blocks until the job is served.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if the request was invalid or sampling failed.
    pub fn wait(self) -> Result<SampleResponse, ServeError> {
        self.reply
            .recv()
            .unwrap_or_else(|_| Err(ServeError::new("service shut down before replying")))
    }

    /// Polls for the response without blocking — the multiplexed
    /// front-end's shape, where one thread drains many pending replies.
    /// Returns `None` while the job is still running.
    pub fn try_wait(&self) -> Option<Result<SampleResponse, ServeError>> {
        match self.reply.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Err(ServeError::new("service shut down before replying")))
            }
        }
    }
}

impl ServeHandle {
    /// Enqueues a request without waiting.
    pub fn submit(&self, request: SampleRequest) -> Pending {
        let (tx, rx) = mpsc::channel();
        if let Err(e) = self.jobs.send(Job {
            request,
            reply: tx.clone(),
        }) {
            // The pool is gone (all workers exited); surface that as a
            // served error rather than a panic.
            let _ = tx.send(Err(ServeError::new(format!("service unavailable: {e}"))));
        }
        Pending { reply: rx }
    }

    /// Submits and blocks for the response.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if the request was invalid or sampling failed.
    pub fn request(&self, request: SampleRequest) -> Result<SampleResponse, ServeError> {
        self.submit(request).wait()
    }

    /// A snapshot of the prepared-sampler cache's counters (the
    /// prepare-counter hook the single-flight tests assert on).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The service's observability counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Renders the `{"cmd": "stats"}` response frame: request counts,
    /// error/overload totals, cache counters, and per-algorithm latency
    /// histograms (see [`crate::stats`] for the schema).
    pub fn stats_frame(&self) -> Json {
        self.shared.stats.frame(&self.shared.cache.stats())
    }

    /// Writes the cache's ready entries to `path` as a versioned
    /// snapshot (see [`crate::snapshot`]). Returns the entry count.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for I/O failures.
    pub fn write_snapshot(&self, path: &Path) -> Result<usize, ServeError> {
        snapshot::write_snapshot(
            path,
            &self.shared.cache.ready_entries(),
            &self.shared.options,
        )
        .map_err(ServeError::new)
    }

    /// The snapshot path configured via [`ServeOptions::snapshot`].
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.shared.options.snapshot_path_value()
    }

    /// Serves a `{"cmd": "snapshot"}` frame: writes to the configured
    /// path and reports `{"ok": true, "entries": N}`, or an error frame
    /// when no path is configured / the write failed.
    pub fn snapshot_frame(&self) -> Json {
        match self.snapshot_path() {
            None => error_frame("no snapshot path configured (start with --snapshot PATH)"),
            Some(path) => match self.write_snapshot(path) {
                Ok(entries) => Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("entries".into(), Json::Num(entries as f64)),
                ]),
                Err(e) => error_frame(&e.to_string()),
            },
        }
    }

    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }
}

/// Runs a service for the duration of `f`: spawns the worker pool on a
/// [`std::thread::scope`], hands `f` a [`ServeHandle`], and joins every
/// worker when `f` returns (the handle and all clones must be dropped by
/// then). Returns `f`'s result.
///
/// See [`ServeHandle`] for a usage example; the wire layer
/// ([`crate::serve_endpoint`]) is built on this same entry point.
pub fn serve<R>(options: ServeOptions, f: impl FnOnce(ServeHandle) -> R) -> R {
    let cache = PreparedCache::new(options.cache_capacity);
    if let Some(path) = options.snapshot_path_value() {
        // A rejected snapshot is a warm-start opportunity lost, never a
        // startup failure: report it and serve cold.
        match snapshot::load_snapshot(path, &options, &cache) {
            Ok(summary) if summary.skipped > 0 => eprintln!(
                "snapshot {}: restored {}, skipped {} (stale entries rebuild cold)",
                path.display(),
                summary.restored,
                summary.skipped
            ),
            Ok(_) => {}
            Err(e) => eprintln!("snapshot {} rejected, serving cold: {e}", path.display()),
        }
    }
    let workers = options.workers;
    let shared = Arc::new(Shared {
        options,
        cache,
        stats: ServeStats::new(),
    });
    let (tx, rx) = mpsc::channel::<Job>();
    let rx = Arc::new(Mutex::new(rx));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            s.spawn(move || worker_loop(&rx, &shared));
        }
        f(ServeHandle {
            jobs: tx,
            shared: Arc::clone(&shared),
        })
    })
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>, shared: &Shared) {
    loop {
        // Take the next job with the receiver lock released before the
        // (long) sampling work, so other workers keep pulling.
        let job = match rx.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => break, // every handle dropped: drain complete
        };
        let algorithm = job.request.algorithm;
        let started = Instant::now();
        let result = process(shared, job.request);
        shared
            .stats
            .record(algorithm, started.elapsed(), result.is_ok());
        // A client that gave up on its Pending just drops the receiver;
        // the send error is not the worker's problem.
        let _ = job.reply.send(result);
    }
}

/// Builds the graph a spec denotes — a pure function of the spec string
/// (RNG seeded by [`spec_seed`]), with size limits following the
/// requested backend. Shared by the cached phase-sampler path and the
/// uncached MST path so the two can never disagree on what a spec means.
pub(crate) fn build_spec_graph(
    spec: &str,
    backend: cct_core::Backend,
) -> Result<cct_graph::Graph, String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec_seed(spec));
    let limits = cct_graph::spec::SpecLimits::from_env()
        .with_sparse_backend(backend == cct_core::Backend::Sparse);
    cct_graph::spec::parse_spec_with_limits(spec, &mut rng, &limits)
        .map_err(|e| format!("bad graph spec: {e}"))
}

/// Serves one MST request: build the graph, run the deterministic
/// Borůvka engine **once**, and emit `count` identical draws. No
/// prepared-sampler cache entry is involved (there is no per-graph
/// preprocessing to reuse), and the request's `seed` is ignored — the
/// draws still carry their derived seeds so the response shape matches
/// the sampler algorithms.
fn process_mst(request: SampleRequest) -> Result<SampleResponse, ServeError> {
    let graph = build_spec_graph(&request.graph_spec, request.backend).map_err(ServeError::new)?;
    let report = cct_core::MstEngine::new()
        .run(&graph)
        .map_err(|e| ServeError::new(e.to_string()))?;
    let draws = (0..request.count)
        .map(|i| Draw {
            draw_seed: request.draw_seed(i),
            edges: report.tree.edges().to_vec(),
            ledger: report.rounds.clone(),
            monte_carlo_failure: false,
        })
        .collect();
    Ok(SampleResponse {
        request,
        cache: CacheInfo {
            hit: false,
            prepares: 0,
        },
        resident_bytes: 0,
        draws,
    })
}

/// Serves one request: resolve the prepared sampler through the cache
/// (single-flight), then draw `count` trees from derived RNG streams.
fn process(shared: &Shared, request: SampleRequest) -> Result<SampleResponse, ServeError> {
    request
        .validate()
        .map_err(|e| ServeError::new(e.to_string()))?;
    if request.algorithm == Algorithm::Mst {
        return process_mst(request);
    }
    let key = CacheKey {
        algorithm: request.algorithm,
        backend: request.backend,
        precision: request.precision,
        graph_spec: request.graph_spec.clone(),
    };
    // The request's backend and precision override the service
    // config's: the key and the prepared state must agree. Draws are
    // backend-invariant but *not* precision-invariant — f32 is its own
    // deterministic stream.
    let config = shared
        .options
        .config_for(request.algorithm)
        .clone()
        .backend(request.backend)
        .precision(request.precision);
    let (prepared, cache) = shared.cache.get_or_prepare(&key, || {
        // The graph is a pure function of the spec string (the cache
        // key's half of the determinism contract).
        let graph = build_spec_graph(&key.graph_spec, key.backend)?;
        CliqueTreeSampler::new(config)
            .prepare(&graph)
            .map_err(|e| e.to_string())
    });
    let prepared = prepared.map_err(ServeError::new)?;
    let mut draws = Vec::with_capacity(request.count as usize);
    for i in 0..request.count {
        let draw_seed = request.draw_seed(i);
        let mut rng = rand::rngs::StdRng::seed_from_u64(draw_seed);
        let report = prepared
            .sample(&mut rng)
            .map_err(|e| ServeError::new(e.to_string()))?;
        draws.push(Draw {
            draw_seed,
            edges: report.tree.edges().to_vec(),
            ledger: report.rounds,
            monte_carlo_failure: report.monte_carlo_failure,
        });
    }
    let resident_bytes = prepared.matrix_bytes();
    Ok(SampleResponse {
        request,
        cache,
        resident_bytes,
        draws,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_core::{EngineChoice, WalkLength};
    use cct_graph::generators;

    fn quick_options() -> ServeOptions {
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        ServeOptions::new()
            .workers(2)
            .cache_capacity(4)
            .config(Algorithm::Thm1, config.clone())
            .config(Algorithm::Exact, config)
    }

    #[test]
    fn serves_draws_matching_cold_runs() {
        let options = quick_options();
        let config = options.config_for(Algorithm::Thm1).clone();
        serve(options, |handle| {
            let req = SampleRequest::new("petersen").seed(9).count(3);
            let response = handle.request(req.clone()).unwrap();
            assert_eq!(response.draws.len(), 3);
            let g = generators::petersen();
            let sampler = CliqueTreeSampler::new(config);
            for (i, draw) in response.draws.iter().enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(req.draw_seed(i as u32));
                let cold = sampler.sample(&g, &mut rng).unwrap();
                assert_eq!(draw.edges, cold.tree.edges(), "draw {i}");
                assert_eq!(draw.ledger, cold.rounds, "draw {i}");
            }
        });
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        serve(quick_options(), |handle| {
            let req = SampleRequest::new("complete:8").seed(1);
            let first = handle.request(req.clone()).unwrap();
            assert!(!first.cache.hit);
            let second = handle.request(req).unwrap();
            assert!(second.cache.hit);
            assert_eq!(first.draws, second.draws);
            let stats = handle.cache_stats();
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.hits, 1);
        });
    }

    #[test]
    fn responses_report_resident_prepared_bytes() {
        serve(quick_options(), |handle| {
            let first = handle
                .request(SampleRequest::new("cycle:64").seed(2))
                .unwrap();
            assert!(first.resident_bytes > 0);
            // A warm repeat serves from the same (possibly further
            // materialized) prepared state — never less resident.
            let second = handle
                .request(SampleRequest::new("cycle:64").seed(3))
                .unwrap();
            assert!(second.cache.hit);
            assert!(second.resident_bytes >= first.resident_bytes);
            // The figure reaches the wire under cache.resident_bytes.
            let json = second.to_json();
            let meta = json.get("cache").unwrap();
            assert_eq!(
                meta.get("resident_bytes"),
                Some(&Json::Num(second.resident_bytes as f64))
            );
        });
    }

    #[test]
    fn errors_are_served_not_panicked() {
        serve(quick_options(), |handle| {
            for (req, needle) in [
                (SampleRequest::new("no-such-family:4"), "bad graph spec"),
                (SampleRequest::new("petersen").count(0), "'count'"),
                (SampleRequest::new(""), "empty"),
            ] {
                let err = handle.request(req).unwrap_err();
                assert!(err.to_string().contains(needle), "{err}");
            }
            // The pool is still alive afterwards.
            assert!(handle.request(SampleRequest::new("petersen")).is_ok());
        });
    }

    #[test]
    fn submit_overlaps_jobs() {
        serve(quick_options(), |handle| {
            let pendings: Vec<Pending> = (0..6u64)
                .map(|i| handle.submit(SampleRequest::new("complete:8").seed(i)))
                .collect();
            let responses: Vec<_> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
            assert_eq!(responses.len(), 6);
            // One preparation served all six (same key).
            assert_eq!(handle.cache_stats().total_prepares(), 1);
        });
    }

    #[test]
    fn backends_serve_identical_draws_from_separate_entries() {
        use cct_core::Backend;
        serve(quick_options(), |handle| {
            let req = |b: Backend| SampleRequest::new("cycle:64").seed(5).count(2).backend(b);
            let dense = handle.request(req(Backend::Dense)).unwrap();
            let sparse = handle.request(req(Backend::Sparse)).unwrap();
            // Separate cache entries (the collision fix)…
            assert_eq!(handle.cache_stats().misses, 2, "distinct keys");
            // …but byte-identical draws (the backend contract).
            assert_eq!(dense.draws, sparse.draws);
        });
    }

    #[test]
    fn mst_serves_identical_deterministic_draws() {
        serve(quick_options(), |handle| {
            let req = SampleRequest::new("grid-w:3x3")
                .algorithm(Algorithm::Mst)
                .seed(7)
                .count(3);
            let response = handle.request(req).unwrap();
            assert_eq!(response.draws.len(), 3);
            // Every draw is the same tree; none is a Monte Carlo failure.
            assert!(response
                .draws
                .iter()
                .all(|d| d.edges == response.draws[0].edges));
            assert!(response.draws.iter().all(|d| !d.monte_carlo_failure));
            // The seed is ignored: a different master seed serves the
            // same tree (with different derived draw seeds).
            let other = handle
                .request(
                    SampleRequest::new("grid-w:3x3")
                        .algorithm(Algorithm::Mst)
                        .seed(8),
                )
                .unwrap();
            assert_eq!(other.draws[0].edges, response.draws[0].edges);
            assert_eq!(other.draws[0].ledger, response.draws[0].ledger);
            // No prepared-cache entry was created for the MST path.
            assert_eq!(handle.cache_stats().total_prepares(), 0);
            // Cold verification: the served tree is the Kruskal MST of
            // the graph the spec denotes.
            let graph = super::build_spec_graph("grid-w:3x3", cct_core::Backend::Auto).unwrap();
            let reference = cct_walks::kruskal_mst(&graph).unwrap();
            assert_eq!(response.draws[0].edges, reference.edges());
        });
    }

    #[test]
    fn f32_requests_get_their_own_entry_and_replay_deterministically() {
        use cct_core::Precision;
        serve(quick_options(), |handle| {
            let req = |p: Precision| SampleRequest::new("cycle:64").seed(5).count(2).precision(p);
            let f64r = handle.request(req(Precision::Float64)).unwrap();
            let f32r = handle.request(req(Precision::F32)).unwrap();
            assert_eq!(handle.cache_stats().misses, 2, "distinct keys");
            // Same derived seeds either way; the f32 stream replays
            // byte-identically against itself.
            assert_eq!(f64r.draws[0].draw_seed, f32r.draws[0].draw_seed);
            let replay = handle.request(req(Precision::F32)).unwrap();
            assert!(replay.cache.hit);
            assert_eq!(replay.draws, f32r.draws);
            // And a cold single-threaded f32 run reproduces the draws.
            let config = quick_options()
                .config_for(Algorithm::Thm1)
                .clone()
                .precision(Precision::F32);
            let g = super::build_spec_graph("cycle:64", cct_core::Backend::Auto).unwrap();
            let sampler = CliqueTreeSampler::new(config);
            for (i, draw) in f32r.draws.iter().enumerate() {
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(req(Precision::F32).draw_seed(i as u32));
                let cold = sampler.sample(&g, &mut rng).unwrap();
                assert_eq!(draw.edges, cold.tree.edges(), "draw {i}");
            }
        });
    }

    #[test]
    fn algorithms_do_not_share_cache_entries() {
        serve(quick_options(), |handle| {
            let a = handle
                .request(SampleRequest::new("petersen").seed(3))
                .unwrap();
            let b = handle
                .request(
                    SampleRequest::new("petersen")
                        .seed(3)
                        .algorithm(Algorithm::Exact),
                )
                .unwrap();
            assert_eq!(handle.cache_stats().misses, 2, "distinct keys");
            // Same derived seeds, different samplers — and the exact
            // variant can never flag a Monte Carlo failure.
            assert_eq!(a.draws[0].draw_seed, b.draws[0].draw_seed);
            assert!(!b.draws[0].monte_carlo_failure);
        });
    }
}
