//! The multiplexed socket front-end: one event-loop thread drives every
//! connection over nonblocking sockets, with explicit backpressure and
//! graceful drain.
//!
//! # Shape
//!
//! The loop owns a nonblocking listener and a vector of per-connection
//! state machines ([`Conn`]): a read buffer accumulating bytes until a
//! `\n` completes a frame, an ordered reply queue (one slot per
//! received frame, so responses always return in request order even
//! when jobs finish out of order), and a partially written outbox.
//! Completed frames dispatch to the existing worker pool through
//! [`ServeHandle::submit`]; the loop polls each [`Pending`] with
//! [`Pending::try_wait`] — readiness-style multiplexing built entirely
//! on `std` (`set_nonblocking` + `WouldBlock`; the workspace vendors no
//! `libc`, so there is no `poll(2)` to call). A tick with no progress
//! sleeps briefly instead of spinning.
//!
//! # Backpressure
//!
//! Two explicit bounds, both answered with a structured
//! `{"ok": false, "error": "overloaded"}` frame — never a silent drop:
//!
//! * **Connections** ([`crate::ServeOptions::max_concurrent`]): a
//!   connection accepted at the bound gets the frame and a
//!   close-after-flush.
//! * **In-flight requests** ([`crate::ServeOptions::max_inflight`]):
//!   a request frame arriving with the job queue full gets the frame
//!   in its reply slot; pipelined neighbors are unaffected.
//!
//! # Drain
//!
//! A `{"cmd": "shutdown"}` frame (or the programmatic shutdown flag of
//! [`crate::serve_endpoint_with_shutdown`]) starts a graceful drain:
//! stop accepting, keep serving already-open connections, flush every
//! in-flight reply, and exit once every connection has closed — or
//! when the drain grace period expires, whichever comes first. Every
//! accepted request gets exactly one reply.

use crate::request::{ControlCommand, SampleRequest, WireFrame};
use crate::service::{error_frame, Pending, ServeHandle, ServeOptions};
use crate::wire::MAX_FRAME_LEN;
use cct_json::Json;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The exact error string of a backpressure refusal — clients match on
/// it to retry with a backoff.
pub(crate) const OVERLOADED: &str = "overloaded";

/// How long the loop sleeps when a full tick made no progress.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Read chunk size, and the per-connection per-tick read budget (in
/// chunks) that keeps one firehose client from starving the rest.
const READ_CHUNK: usize = 4096;
const READ_BUDGET: usize = 16;

pub(crate) fn overloaded_frame() -> Json {
    error_frame(OVERLOADED)
}

fn draining_frame() -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("draining".into(), Json::Bool(true)),
    ])
}

pub(crate) fn oversized_frame() -> Json {
    error_frame(&format!("request frame exceeds {MAX_FRAME_LEN} bytes"))
}

/// What the shared line classifier decides about one received frame.
/// `serve_connection` (the in-memory/test path) and the mux loop both
/// route through this, so the two front-ends can never disagree on
/// protocol semantics.
pub(crate) enum LineOutcome {
    /// Blank line: ignore.
    Skip,
    /// An immediately answerable frame (control response or error).
    Frame(Json),
    /// A parsed sampling request for the worker pool.
    Submit(SampleRequest),
    /// A shutdown command: answer with the frame, then begin draining.
    Shutdown(Json),
}

pub(crate) fn classify_line(handle: &ServeHandle, bytes: &[u8]) -> LineOutcome {
    let text = match std::str::from_utf8(bytes) {
        Ok(text) => text,
        Err(_) => {
            handle.shared().stats.record_protocol_error();
            return LineOutcome::Frame(error_frame("request line is not valid UTF-8"));
        }
    };
    if text.trim().is_empty() {
        return LineOutcome::Skip;
    }
    match WireFrame::parse_line(text.trim_end_matches(['\n', '\r'])) {
        Err(e) => {
            handle.shared().stats.record_protocol_error();
            LineOutcome::Frame(error_frame(&e.to_string()))
        }
        Ok(WireFrame::Control(ControlCommand::Stats)) => LineOutcome::Frame(handle.stats_frame()),
        Ok(WireFrame::Control(ControlCommand::Snapshot)) => {
            LineOutcome::Frame(handle.snapshot_frame())
        }
        Ok(WireFrame::Control(ControlCommand::Shutdown)) => LineOutcome::Shutdown(draining_frame()),
        Ok(WireFrame::Sample(request)) => LineOutcome::Submit(request),
    }
}

/// The minimal stream surface the loop needs, implemented for TCP and
/// Unix streams (the only transports the wire layer binds).
pub(crate) trait MuxStream: Read + Write {
    fn set_nonblocking_stream(&self) -> io::Result<()>;
    fn shutdown_stream(&self);
}

impl MuxStream for std::net::TcpStream {
    fn set_nonblocking_stream(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(unix)]
impl MuxStream for std::os::unix::net::UnixStream {
    fn set_nonblocking_stream(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// The loop's tunables, captured from [`ServeOptions`] before the
/// options move into the service.
pub(crate) struct MuxConfig {
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) max_concurrent: usize,
    pub(crate) max_inflight: usize,
    pub(crate) drain_grace: Duration,
    /// Test-only total-accept valve: after this many accepted
    /// connections the loop stops accepting and exits once every open
    /// connection closes. The deterministic wire tests and CI smoke
    /// scripts rely on it; production servers pass `None`.
    pub(crate) accept_limit: Option<u64>,
}

impl MuxConfig {
    pub(crate) fn from_options(options: &ServeOptions, accept_limit: Option<u64>) -> Self {
        MuxConfig {
            read_timeout: options.read_timeout_value(),
            max_concurrent: options.max_concurrent_value(),
            max_inflight: options.max_inflight_value(),
            drain_grace: options.drain_grace_value(),
            accept_limit,
        }
    }
}

/// One reply slot: either already renderable or still in the worker
/// pool. The queue preserves request order per connection.
enum ReplySlot {
    Ready(Json),
    Waiting(Pending),
}

/// One connection's state machine.
struct Conn<S: MuxStream> {
    stream: S,
    rbuf: Vec<u8>,
    outbox: Vec<u8>,
    written: usize,
    replies: VecDeque<ReplySlot>,
    last_activity: Instant,
    /// Discarding the tail of an oversized frame until its newline.
    skipping: bool,
    eof: bool,
    close_after_flush: bool,
    dead: bool,
}

impl<S: MuxStream> Conn<S> {
    fn new(stream: S) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            outbox: Vec::new(),
            written: 0,
            replies: VecDeque::new(),
            last_activity: Instant::now(),
            skipping: false,
            eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.written == self.outbox.len()
    }

    fn push_frame(&mut self, frame: &Json) {
        self.outbox.extend_from_slice(frame.compact().as_bytes());
        self.outbox.push(b'\n');
    }

    fn waiting(&self) -> usize {
        self.replies
            .iter()
            .filter(|r| matches!(r, ReplySlot::Waiting(_)))
            .count()
    }
}

struct LoopState {
    inflight: usize,
    draining: bool,
    stop_accepting: bool,
    drain_deadline: Option<Instant>,
    progress: bool,
}

/// Runs the multiplexed front-end until drained: `accept` yields
/// `Ok(None)` when no connection is pending (`WouldBlock`). Returns
/// once the loop has stopped accepting **and** every connection has
/// closed (or the drain deadline expired).
pub(crate) fn mux_loop<S: MuxStream>(
    mut accept: impl FnMut() -> io::Result<Option<S>>,
    handle: &ServeHandle,
    cfg: &MuxConfig,
    shutdown: &AtomicBool,
) {
    let mut conns: Vec<Conn<S>> = Vec::new();
    let mut state = LoopState {
        inflight: 0,
        draining: false,
        stop_accepting: false,
        drain_deadline: None,
        progress: false,
    };
    let mut accepted = 0u64;
    let mut consecutive_errors = 0u32;
    loop {
        state.progress = false;
        // An external shutdown request (programmatic flag) starts the
        // same drain a {"cmd": "shutdown"} frame does.
        if shutdown.load(Ordering::Relaxed) && !state.draining {
            begin_drain(&mut state, cfg);
        }
        if let Some(limit) = cfg.accept_limit {
            if accepted >= limit {
                state.stop_accepting = true;
            }
        }
        // ---- accept ------------------------------------------------
        while !state.stop_accepting {
            if cfg.accept_limit.is_some_and(|limit| accepted >= limit) {
                state.stop_accepting = true;
                break;
            }
            match accept() {
                Ok(None) => break,
                Ok(Some(stream)) => {
                    consecutive_errors = 0;
                    accepted += 1;
                    state.progress = true;
                    let mut conn = Conn::new(stream);
                    if conn.stream.set_nonblocking_stream().is_err() {
                        continue; // the stream is unusable; drop it
                    }
                    if conns.len() >= cfg.max_concurrent {
                        // Over the connection bound: one structured
                        // refusal frame, then close — never a silent
                        // drop.
                        handle.shared().stats.record_overload();
                        conn.push_frame(&overloaded_frame());
                        conn.close_after_flush = true;
                    }
                    conns.push(conn);
                }
                Err(e) => {
                    // Transient errors (a client aborting mid-handshake)
                    // deserve a retry; a persistently failing listener
                    // (fd exhaustion, closed socket) would spin this
                    // loop at 100% CPU — drain instead.
                    consecutive_errors += 1;
                    if consecutive_errors >= 16 {
                        eprintln!("accept failing persistently, draining: {e}");
                        begin_drain(&mut state, cfg);
                        break;
                    }
                    eprintln!("accept error: {e}");
                    std::thread::sleep(Duration::from_millis(1 << consecutive_errors.min(6)));
                    break;
                }
            }
        }
        // ---- per-connection read / dispatch / complete / write -----
        for conn in &mut conns {
            read_conn(conn, handle, cfg, &mut state);
            complete_replies(conn, &mut state);
            write_conn(conn, &mut state);
            enforce_timeouts(conn, cfg);
        }
        // ---- reap closed connections -------------------------------
        conns.retain_mut(|conn| {
            let done = conn.dead
                || ((conn.eof || conn.close_after_flush)
                    && conn.replies.is_empty()
                    && conn.flushed());
            if done {
                // Jobs still in the pool for a vanished client keep
                // the global in-flight count until reaped here.
                state.inflight -= conn.waiting();
                conn.stream.shutdown_stream();
                state.progress = true;
            }
            !done
        });
        if state.draining {
            begin_drain(&mut state, cfg); // idempotent; see below
        }
        // ---- exit --------------------------------------------------
        if state.stop_accepting && conns.is_empty() {
            return;
        }
        if let Some(deadline) = state.drain_deadline {
            if Instant::now() >= deadline {
                // Grace expired: abandon stragglers. Their in-pool jobs
                // complete harmlessly into dropped channels.
                for conn in &conns {
                    conn.stream.shutdown_stream();
                }
                return;
            }
        }
        if !state.progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

fn begin_drain(state: &mut LoopState, cfg: &MuxConfig) {
    state.draining = true;
    state.stop_accepting = true;
    if state.drain_deadline.is_none() {
        state.drain_deadline = Some(Instant::now() + cfg.drain_grace);
    }
}

/// Reads whatever the socket has (bounded per tick), slicing completed
/// lines out of the buffer and dispatching each.
fn read_conn<S: MuxStream>(
    conn: &mut Conn<S>,
    handle: &ServeHandle,
    cfg: &MuxConfig,
    state: &mut LoopState,
) {
    if conn.eof || conn.dead || conn.close_after_flush {
        return;
    }
    let mut chunk = [0u8; READ_CHUNK];
    for _ in 0..READ_BUDGET {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                state.progress = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                state.progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    // Slice out completed lines.
    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        if conn.skipping {
            // The tail of an already-answered oversized frame.
            conn.skipping = false;
            continue;
        }
        dispatch_line(conn, handle, cfg, state, &line);
    }
    if conn.skipping {
        // Still inside an oversized frame: discard what arrived.
        conn.rbuf.clear();
    } else if conn.rbuf.len() > MAX_FRAME_LEN {
        // A frame with no newline in sight has outgrown the cap:
        // answer it now, discard until its newline eventually passes.
        handle.shared().stats.record_protocol_error();
        conn.replies.push_back(ReplySlot::Ready(oversized_frame()));
        conn.rbuf.clear();
        conn.skipping = true;
        state.progress = true;
    }
}

fn dispatch_line<S: MuxStream>(
    conn: &mut Conn<S>,
    handle: &ServeHandle,
    cfg: &MuxConfig,
    state: &mut LoopState,
    line: &[u8],
) {
    match classify_line(handle, line) {
        LineOutcome::Skip => {}
        LineOutcome::Frame(frame) => {
            conn.replies.push_back(ReplySlot::Ready(frame));
            state.progress = true;
        }
        LineOutcome::Shutdown(frame) => {
            conn.replies.push_back(ReplySlot::Ready(frame));
            begin_drain(state, cfg);
            state.progress = true;
        }
        LineOutcome::Submit(request) => {
            if state.inflight >= cfg.max_inflight {
                // The job queue is full: structured refusal in this
                // request's reply slot, pipeline order preserved.
                handle.shared().stats.record_overload();
                conn.replies.push_back(ReplySlot::Ready(overloaded_frame()));
            } else {
                state.inflight += 1;
                conn.replies
                    .push_back(ReplySlot::Waiting(handle.submit(request)));
            }
            state.progress = true;
        }
    }
}

/// Moves finished jobs from the head of the reply queue into the
/// outbox. Only the head can move — replies leave in request order.
fn complete_replies<S: MuxStream>(conn: &mut Conn<S>, state: &mut LoopState) {
    while let Some(slot) = conn.replies.front_mut() {
        let frame = match slot {
            ReplySlot::Ready(frame) => frame.clone(),
            ReplySlot::Waiting(pending) => match pending.try_wait() {
                None => break,
                Some(result) => {
                    state.inflight -= 1;
                    match result {
                        Ok(response) => response.to_json(),
                        Err(e) => error_frame(&e.to_string()),
                    }
                }
            },
        };
        conn.replies.pop_front();
        conn.push_frame(&frame);
        state.progress = true;
    }
}

fn write_conn<S: MuxStream>(conn: &mut Conn<S>, state: &mut LoopState) {
    if conn.dead {
        return;
    }
    while conn.written < conn.outbox.len() {
        match conn.stream.write(&conn.outbox[conn.written..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
                state.progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.flushed() && !conn.outbox.is_empty() {
        conn.outbox.clear();
        conn.written = 0;
    }
}

/// Closes idle and stuck connections: a client that has sent nothing
/// for the read timeout (with nothing owed to it) is closed cleanly; a
/// refused connection that never reads its `overloaded` frame is cut
/// after the drain grace.
fn enforce_timeouts<S: MuxStream>(conn: &mut Conn<S>, cfg: &MuxConfig) {
    let idle = conn.last_activity.elapsed();
    if conn.close_after_flush && !conn.flushed() && idle > cfg.drain_grace {
        conn.dead = true;
        return;
    }
    if let Some(timeout) = cfg.read_timeout {
        if conn.replies.is_empty() && conn.flushed() && idle > timeout {
            conn.eof = true;
        }
    }
}
