//! # cct-serve
//!
//! A multi-client batched sampling service over the `cct` spanning-tree
//! sampler — the serving layer the ROADMAP's "heavy traffic" north star
//! asks for, built on `cct-core`'s prepare-once/sample-many
//! [`cct_core::PreparedSampler`].
//!
//! Three layers, each usable on its own:
//!
//! * **Protocol** ([`SampleRequest`], [`SampleResponse`]) — a request
//!   names a graph spec, an algorithm (`thm1`/`exact`), a master seed,
//!   and a draw count; a response carries the sampled tree edges, the
//!   full [`cct_sim::RoundLedger`] per draw, and cache-hit metadata. On
//!   the wire both are one line of dependency-free JSON
//!   ([`cct_json::Json`]).
//! * **Service** ([`serve`], [`ServeHandle`], [`ServeOptions`]) — a
//!   `std::thread::scope` worker pool multiplexing jobs over an LRU
//!   cache of prepared samplers with **single-flight** preparation:
//!   concurrent requests for one (algorithm, graph) key prepare it
//!   exactly once ([`PreparedCache`]).
//! * **Wire** ([`serve_endpoint`], [`request_endpoint`], [`Endpoint`])
//!   — line-delimited JSON over a Unix or TCP socket; malformed frames
//!   get structured `{"ok": false, "error": …}` responses, never a
//!   disconnect.
//!
//! # Determinism contract
//!
//! For a fixed (master seed, request), the served trees and ledgers are
//! **byte-identical** across worker counts, cache states (cold, warm,
//! evicted), and client arrival orders:
//!
//! * a graph spec denotes one fixed graph — randomized families seed
//!   their generator from [`spec_seed`], a pure function of the spec
//!   string;
//! * draw `i` of a request samples from a fresh RNG seeded with
//!   [`SampleRequest::draw_seed`]`(i)` =
//!   [`cct_sim::machine_seed`]`(seed, i)` — streams are derived, never
//!   dealt from shared state;
//! * the prepared path replays its cached ledger charges, so a cache
//!   hit returns the same ledger a cold run would
//!   ([`cct_core::PreparedSampler`]'s own contract).
//!
//! Cache-hit metadata is the one deliberate exception: it reports real
//! cache behavior and varies with arrival order.
//!
//! # Examples
//!
//! ```
//! use cct_serve::{serve, Algorithm, SampleRequest, ServeOptions};
//!
//! serve(ServeOptions::new().workers(2).cache_capacity(4), |handle| {
//!     let response = handle
//!         .request(SampleRequest::new("complete:8").seed(1).count(2))
//!         .unwrap();
//!     assert_eq!(response.draws.len(), 2);
//!     for draw in &response.draws {
//!         assert_eq!(draw.edges.len(), 7); // a spanning tree of K8
//!         assert!(draw.ledger.total_rounds() > 0);
//!     }
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod mux;
mod request;
mod service;
pub mod snapshot;
pub mod stats;
mod wire;

pub use cache::{CacheInfo, CacheKey, CacheStats, PreparedCache};
pub use request::{
    spec_seed, Algorithm, ControlCommand, ProtocolError, SampleRequest, WireFrame, MAX_COUNT,
    MAX_SPEC_LEN,
};
pub use service::{
    error_frame, serve, Draw, Pending, SampleResponse, ServeError, ServeHandle, ServeOptions,
};
pub use snapshot::RestoreSummary;
pub use stats::{LatencyHistogram, ServeStats};
pub use wire::{
    exchange, exchange_frame, request_endpoint, request_endpoint_frame, serve_connection,
    serve_endpoint, serve_endpoint_with_shutdown, Endpoint, MAX_FRAME_LEN,
};

// Re-exported so service clients replaying draws cold don't need a
// direct cct-sim dependency for the derivation hash.
pub use cct_sim::machine_seed;
