//! Quickstart for the in-process sampling service: start a pool, issue
//! a batched request, replay it, and verify the cold-path determinism
//! contract by hand.
//!
//! ```sh
//! cargo run -p cct-serve --release --example serve_quickstart
//! ```

use cct_core::CliqueTreeSampler;
use cct_graph::spec::parse_spec;
use cct_serve::{serve, spec_seed, SampleRequest, ServeOptions};
use rand::SeedableRng;

fn main() {
    let options = ServeOptions::new().workers(2).cache_capacity(4);
    serve(options.clone(), |handle| {
        // One batched job: 3 draws of the Petersen graph at master seed 7.
        let request = SampleRequest::new("petersen").seed(7).count(3);
        let response = handle.request(request.clone()).expect("served");
        println!(
            "served {} draws (cache hit: {}, preparations of this key: {})",
            response.draws.len(),
            response.cache.hit,
            response.cache.prepares
        );
        for draw in &response.draws {
            let edges: Vec<String> = draw.edges.iter().map(|(u, v)| format!("{u}-{v}")).collect();
            println!(
                "  seed {:>20}  rounds {:>5}  tree {}",
                draw.draw_seed,
                draw.ledger.total_rounds(),
                edges.join(" ")
            );
        }

        // Replay: the same request is served from the cache with
        // byte-identical draws.
        let replay = handle.request(request.clone()).expect("served");
        assert_eq!(replay.draws, response.draws);
        assert!(replay.cache.hit);
        println!("replay: cache hit, draws identical");

        // The determinism contract, verified cold: draw i is exactly a
        // fresh CliqueTreeSampler run at the derived seed.
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec_seed("petersen"));
        let graph = parse_spec("petersen", &mut rng).expect("valid spec");
        let sampler = CliqueTreeSampler::new(cct_core::SamplerConfig::new().threads(4));
        for (i, draw) in response.draws.iter().enumerate() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(request.draw_seed(i as u32));
            let cold = sampler.sample(&graph, &mut rng).expect("samples");
            assert_eq!(cold.tree.edges(), &draw.edges[..]);
            assert_eq!(cold.rounds, draw.ledger);
        }
        println!("cold replays match bit for bit");
    });
}
