//! Statistical uniformity *through the service path*: chi-square of
//! served trees on K4, the 4-cycle, and the diamond against exact
//! Kirchhoff counts — mirroring `cct-core`'s `parallel_uniformity`
//! suite, but with every draw travelling through the request channel,
//! the worker pool, the PreparedSampler cache, and the per-draw
//! seed derivation. This proves the serving plumbing (derived streams,
//! cache hits, single-flight sharing) does not bias the distribution.
//!
//! The gate is the suite's usual generous 2× chi-square critical value,
//! keeping CI deterministic-ish while catching any real shift.

use cct_core::{EngineChoice, Precision, SamplerConfig, WalkLength};
use cct_graph::{spanning_tree_count_exact, spanning_tree_distribution, SpanningTree};
use cct_serve::{serve, Algorithm, SampleRequest, ServeOptions};
use cct_walks::stats;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Mutex;

fn options() -> ServeOptions {
    let config = SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost);
    ServeOptions::new()
        .workers(4)
        .cache_capacity(4)
        .config(Algorithm::Thm1, config)
}

/// Draws `requests × count` trees of `spec` through a running service
/// (4 client threads) and chi-square-tests them against the exact
/// spanning-tree distribution. `precision` rides on every request —
/// the f32 variants prove the quantized prepared tables (a *separate*
/// cache entry and draw stream) stay within the statistical-distance
/// bound through the serving plumbing too.
fn assert_served_uniform_at(
    spec: &str,
    precision: Precision,
    requests: u64,
    count: u32,
    seed0: u64,
    label: &str,
) {
    // Ground truth from the graph the service itself builds for the
    // spec (one fixed graph per spec string — the cache-key contract).
    let mut rng = rand::rngs::StdRng::seed_from_u64(cct_serve::spec_seed(spec));
    let g = cct_graph::spec::parse_spec(spec, &mut rng).expect("valid spec");
    let exact = spanning_tree_distribution(&g);
    let kirchhoff = spanning_tree_count_exact(&g).expect("tiny graph");
    assert_eq!(
        exact.len() as i128,
        kirchhoff,
        "{label}: enumeration disagrees with the Matrix–Tree count"
    );

    let counts: Mutex<HashMap<SpanningTree, usize>> = Mutex::new(HashMap::new());
    let failures = Mutex::new(0usize);
    serve(options(), |handle| {
        std::thread::scope(|s| {
            for client in 0..4u64 {
                let handle = handle.clone();
                let counts = &counts;
                let failures = &failures;
                s.spawn(move || {
                    for r in (client..requests).step_by(4) {
                        let response = handle
                            .request(
                                SampleRequest::new(spec)
                                    .precision(precision)
                                    .seed(seed0 + r)
                                    .count(count),
                            )
                            .expect("served");
                        for draw in response.draws {
                            if draw.monte_carlo_failure {
                                *failures.lock().unwrap() += 1;
                                continue;
                            }
                            let tree = SpanningTree::new(draw.edges.len() + 1, draw.edges.clone())
                                .expect("served edges form a tree");
                            *counts.lock().unwrap().entry(tree).or_insert(0) += 1;
                        }
                    }
                });
            }
        });
        // The whole run shares one preparation of the spec.
        assert_eq!(handle.cache_stats().total_prepares(), 1, "{label}");
    });

    let counts = counts.into_inner().unwrap();
    let failures = failures.into_inner().unwrap();
    let trials = (requests as usize) * (count as usize);
    assert!(
        failures * 100 < trials,
        "{label}: {failures}/{trials} Monte Carlo failures"
    );
    let effective = trials - failures;
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, effective);
    assert!(
        stat < 2.0 * crit,
        "{label}: chi² = {stat:.1} ≥ 2 × {crit:.1} over {} trees",
        exact.len()
    );
}

fn assert_served_uniform(spec: &str, requests: u64, count: u32, seed0: u64, label: &str) {
    assert_served_uniform_at(spec, Precision::Float64, requests, count, seed0, label);
}

#[test]
fn served_trees_are_uniform_on_k4() {
    // K4: Cayley gives 4² = 16 spanning trees.
    assert_served_uniform("complete:4", 32, 250, 3100, "K4/served");
}

#[test]
fn served_trees_are_uniform_on_cycle4() {
    // C4: removing any one of the 4 edges gives a tree.
    assert_served_uniform("cycle:4", 32, 250, 3101, "C4/served");
}

#[test]
fn served_trees_are_uniform_on_diamond() {
    // The diamond (K4 minus one edge): 8 spanning trees, non-uniform
    // vertex degrees — the smallest graph where a biased sampler shows.
    assert_served_uniform("diamond", 32, 250, 3102, "diamond/served");
}

#[test]
fn served_f32_trees_are_uniform_on_k4() {
    assert_served_uniform_at("complete:4", Precision::F32, 32, 250, 3103, "K4/served-f32");
}

#[test]
fn served_f32_trees_are_uniform_on_cycle4() {
    assert_served_uniform_at("cycle:4", Precision::F32, 32, 250, 3104, "C4/served-f32");
}

#[test]
fn served_f32_trees_are_uniform_on_diamond() {
    assert_served_uniform_at(
        "diamond",
        Precision::F32,
        32,
        250,
        3105,
        "diamond/served-f32",
    );
}
