//! Socket-level tests of the multiplexed front-end: backpressure
//! (connection and in-flight bounds answered with structured
//! `overloaded` frames), idle-connection timeouts, graceful
//! drain-under-load (every accepted request gets exactly one reply),
//! and cache snapshot/restore across a server restart.
//!
//! Everything runs over real TCP loopback sockets through
//! [`serve_endpoint`] — the same accept loop production uses — with
//! the test-only `accept_limit` valve providing deterministic
//! shutdown where the test doesn't drain explicitly.

use cct_core::{EngineChoice, SamplerConfig, WalkLength};
use cct_json::Json;
use cct_serve::{serve_endpoint, Algorithm, ControlCommand, Endpoint, SampleRequest, ServeOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn quick_options() -> ServeOptions {
    let config = SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost);
    ServeOptions::new()
        .workers(2)
        .config(Algorithm::Thm1, config.clone())
        .config(Algorithm::Exact, config)
}

/// Starts a TCP server on an ephemeral port in a scoped thread and
/// hands the resolved address to `client`; returns the serve result.
fn with_server<R>(
    options: ServeOptions,
    accept_limit: Option<u64>,
    client: impl FnOnce(&str) -> R + Send,
) -> R {
    let endpoint = Endpoint::parse("127.0.0.1:0").unwrap();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
    std::thread::scope(|s| {
        let server = s.spawn(move || {
            serve_endpoint(&endpoint, options, accept_limit, move |addr| {
                addr_tx.send(addr.to_string()).unwrap();
            })
        });
        let addr = addr_rx.recv().expect("server publishes its address");
        let out = client(&addr);
        server.join().unwrap().expect("server exits cleanly");
        out
    })
}

fn read_frame(reader: &mut impl BufRead) -> Json {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read reply");
    assert!(n > 0, "connection closed before a reply arrived");
    Json::parse(line.trim_end()).expect("reply is a JSON frame")
}

fn sample_line(i: u64) -> String {
    SampleRequest::new("petersen").seed(i).to_json().compact() + "\n"
}

#[test]
fn stalled_connections_are_closed_by_the_read_timeout() {
    let options = quick_options().read_timeout(Some(Duration::from_millis(150)));
    with_server(options, Some(2), |addr| {
        // The staller connects first and sends nothing.
        let mut staller = TcpStream::connect(addr).unwrap();
        // A working client is served while the staller idles — the
        // stalled connection must not wedge the loop.
        let mut live = TcpStream::connect(addr).unwrap();
        live.write_all(sample_line(1).as_bytes()).unwrap();
        let mut reader = BufReader::new(live.try_clone().unwrap());
        let reply = read_frame(&mut reader);
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        // The server hangs up on the staller once the timeout passes
        // (EOF on our side), instead of holding the slot forever.
        staller
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        staller.read_to_end(&mut buf).expect("clean EOF");
        assert!(buf.is_empty(), "no frames were owed to the staller");
    });
}

#[test]
fn pipelined_bursts_beyond_max_inflight_get_overloaded_frames() {
    // One worker, one in-flight slot: a burst of 8 pipelined requests
    // must produce exactly 8 in-order replies — some served, the
    // overflow refused with the structured backpressure frame, none
    // silently dropped.
    let options = quick_options().workers(1).max_inflight(1);
    with_server(options, Some(1), |addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        let burst: String = (0..8).map(sample_line).collect();
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut served = 0;
        let mut refused = 0;
        for _ in 0..8 {
            let frame = read_frame(&mut reader);
            match frame.get("ok") {
                Some(&Json::Bool(true)) => served += 1,
                Some(&Json::Bool(false)) => {
                    assert_eq!(
                        frame.get("error").and_then(Json::as_str),
                        Some("overloaded"),
                        "refusals carry the structured overload error: {frame:?}"
                    );
                    refused += 1;
                }
                other => panic!("frame without ok field: {other:?}"),
            }
        }
        assert!(served >= 1, "at least the first request is served");
        assert!(refused >= 1, "a 1-slot queue cannot absorb an 8-burst");
        assert_eq!(served + refused, 8, "exactly one reply per request");
    });
}

#[test]
fn connections_beyond_max_concurrent_are_refused_with_a_frame() {
    let options = quick_options().max_concurrent(1);
    with_server(options, Some(2), |addr| {
        // First connection occupies the only slot.
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(sample_line(1).as_bytes()).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        assert_eq!(
            read_frame(&mut first_reader).get("ok"),
            Some(&Json::Bool(true))
        );
        // Second connection: answered with the overload frame and
        // closed — not silently dropped, not queued.
        let second = TcpStream::connect(addr).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut second_reader = BufReader::new(second);
        let refusal = read_frame(&mut second_reader);
        assert_eq!(refusal.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            refusal.get("error").and_then(Json::as_str),
            Some("overloaded")
        );
        let mut rest = Vec::new();
        second_reader.read_to_end(&mut rest).expect("clean EOF");
        assert!(rest.is_empty(), "nothing follows the refusal frame");
        // The surviving connection keeps serving.
        first.write_all(sample_line(2).as_bytes()).unwrap();
        assert_eq!(
            read_frame(&mut first_reader).get("ok"),
            Some(&Json::Bool(true))
        );
    });
}

#[test]
fn drain_under_load_answers_every_accepted_request() {
    // A burst of requests with a shutdown frame pipelined behind them:
    // the server must flush one reply per request plus the draining
    // acknowledgement, then exit — no accept limit involved.
    let options = quick_options().drain_grace(Duration::from_secs(2));
    with_server(options, None, |addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut burst: String = (0..6).map(sample_line).collect();
        burst.push_str(&(ControlCommand::Shutdown.to_json().compact() + "\n"));
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..6 {
            let frame = read_frame(&mut reader);
            assert_eq!(
                frame.get("ok"),
                Some(&Json::Bool(true)),
                "request {i} lost in the drain: {frame:?}"
            );
        }
        let draining = read_frame(&mut reader);
        assert_eq!(draining.get("draining"), Some(&Json::Bool(true)));
        // Closing our end lets the drain finish before its grace
        // deadline; with_server joins the server and asserts Ok.
        drop(reader);
        drop(stream);
    });
}

#[test]
fn snapshot_restores_across_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("cct-mux-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.snapshot");
    let request = SampleRequest::new("petersen").seed(7).count(2);

    let serve_once = |probe_stats: bool| -> (Json, Option<Json>) {
        let options = quick_options().snapshot(&path);
        with_server(options, Some(1), |addr| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all((request.to_json().compact() + "\n").as_bytes())
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let reply = read_frame(&mut reader);
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
            let stats = probe_stats.then(|| {
                stream
                    .write_all((ControlCommand::Stats.to_json().compact() + "\n").as_bytes())
                    .unwrap();
                read_frame(&mut reader)
            });
            (reply.get("draws").unwrap().clone(), stats)
        })
    };

    // Cold server: serves, then writes the snapshot on graceful exit.
    let (cold_draws, _) = serve_once(false);
    assert!(path.exists(), "graceful exit wrote the snapshot");

    // Restarted server: byte-identical draws without a single prepare.
    let (warm_draws, stats) = serve_once(true);
    assert_eq!(
        warm_draws.compact(),
        cold_draws.compact(),
        "restored draws diverged"
    );
    let stats = stats.unwrap();
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert_eq!(
        cache.get("prepares").and_then(Json::as_u64),
        Some(0),
        "restored cache re-prepared: {cache:?}"
    );

    // Corrupted snapshot: rejected, rebuilt cold — same draws, one
    // prepare.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5A;
    std::fs::write(&path, &bytes).unwrap();
    let (rebuilt_draws, stats) = serve_once(true);
    assert_eq!(rebuilt_draws.compact(), cold_draws.compact());
    let stats = stats.unwrap();
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert_eq!(
        cache.get("prepares").and_then(Json::as_u64),
        Some(1),
        "corrupt snapshot must rebuild cold: {cache:?}"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
