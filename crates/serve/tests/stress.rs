//! Concurrency stress of the sampling service: 8 client threads hammer
//! a small (4-entry) LRU cache with 64 mixed requests, and every served
//! draw must be **bit-identical** to a cold single-threaded
//! `CliqueTreeSampler` run at the same derived seed — the service's
//! determinism contract, enforced across worker counts, cache
//! capacities (cold/warm/evicted), and client arrival orders. A second
//! part pins single-flight: with all keys fitting in the cache, each
//! key is prepared exactly once no matter how many clients race
//! (asserted through the cache's prepare counters).

use cct_core::{CliqueTreeSampler, EngineChoice, SamplerConfig, WalkLength};
use cct_graph::spec::parse_spec;
use cct_serve::{serve, spec_seed, Algorithm, CacheKey, Draw, SampleRequest, ServeOptions};
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Barrier, Mutex};

/// The stress configuration: cheap walks, unit-cost engine — results
/// still exercise every phase/cache/seed-derivation path.
fn quick_config() -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost)
}

fn options(workers: usize, cache_capacity: usize) -> ServeOptions {
    ServeOptions::new()
        .workers(workers)
        .cache_capacity(cache_capacity)
        .config(Algorithm::Thm1, quick_config())
        .config(Algorithm::Exact, quick_config())
}

/// The 64-request mixed workload: 6 distinct graph keys (> the 4-entry
/// cache, so eviction churn is guaranteed), two algorithms, 5 seeds,
/// counts 1–3. Request `i` is a pure function of `i`, so every run of
/// every configuration serves the same multiset.
fn workload() -> Vec<SampleRequest> {
    const SPECS: [&str; 6] = [
        "petersen",
        "complete:9",
        "grid:3x3",
        "cycle:8",
        "wheel:9",
        "kdense:9",
    ];
    (0..64u64)
        .map(|i| {
            let algorithm = if i % 8 == 7 {
                Algorithm::Exact
            } else {
                Algorithm::Thm1
            };
            SampleRequest::new(SPECS[(i as usize) % SPECS.len()])
                .algorithm(algorithm)
                .seed(7000 + i % 5)
                .count(1 + (i % 3) as u32)
        })
        .collect()
}

/// Cold ground truth for one request: a fresh graph from the spec seed
/// and a fresh single-threaded sampler per draw, exactly as the
/// protocol documents.
fn cold_draws(request: &SampleRequest) -> Vec<Draw> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec_seed(&request.graph_spec));
    let graph = parse_spec(&request.graph_spec, &mut rng).expect("workload specs are valid");
    let sampler = CliqueTreeSampler::new(quick_config());
    (0..request.count)
        .map(|i| {
            let draw_seed = request.draw_seed(i);
            let mut rng = rand::rngs::StdRng::seed_from_u64(draw_seed);
            let report = sampler.sample(&graph, &mut rng).expect("samples");
            Draw {
                draw_seed,
                edges: report.tree.edges().to_vec(),
                ledger: report.rounds,
                monte_carlo_failure: report.monte_carlo_failure,
            }
        })
        .collect()
}

/// Runs the workload through a service with 8 client threads and
/// returns the draws per request index.
fn serve_workload(workers: usize, cache_capacity: usize) -> Vec<Vec<Draw>> {
    let requests = workload();
    let results: Mutex<Vec<Option<Vec<Draw>>>> = Mutex::new(vec![None; requests.len()]);
    serve(options(workers, cache_capacity), |handle| {
        std::thread::scope(|s| {
            for client in 0..8usize {
                let handle = handle.clone();
                let requests = &requests;
                let results = &results;
                s.spawn(move || {
                    // Thread `c` serves request indices c, c+8, c+16, …:
                    // all 64 requests covered, arrival order scrambled
                    // by scheduling.
                    for idx in (client..requests.len()).step_by(8) {
                        let response = handle
                            .request(requests[idx].clone())
                            .unwrap_or_else(|e| panic!("request {idx}: {e}"));
                        results.lock().unwrap()[idx] = Some(response.draws);
                    }
                });
            }
        });
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every request served"))
        .collect()
}

#[test]
fn contended_service_matches_cold_singlethreaded_runs() {
    // 8 clients × 4-entry LRU: the canonical stress shape.
    let served = serve_workload(4, 4);
    for (idx, (request, draws)) in workload().iter().zip(&served).enumerate() {
        let cold = cold_draws(request);
        assert_eq!(
            draws, &cold,
            "request {idx} ({}:{} seed {} count {}) diverged from cold",
            request.algorithm, request.graph_spec, request.seed, request.count
        );
    }
}

#[test]
fn determinism_holds_across_workers_and_cache_states() {
    // Same workload through three very different services: sequential
    // with a roomy cache (no eviction), 4 workers with the 4-entry
    // cache (steady churn), 8 workers with a 1-entry cache (every
    // request all but guaranteed to re-prepare). Draws must agree
    // everywhere — the acceptance criterion's worker counts {1, 4, 8}
    // and cache states cold/warm/evicted.
    let reference = serve_workload(1, 16);
    for (workers, capacity) in [(4usize, 4usize), (8, 1)] {
        let served = serve_workload(workers, capacity);
        assert_eq!(
            served, reference,
            "draws changed at workers = {workers}, cache = {capacity}"
        );
    }
}

#[test]
fn determinism_holds_through_snapshot_restore() {
    // The acceptance matrix's third cache state: **restored**. Serve
    // the whole workload, snapshot the prepared cache, restart from
    // the snapshot, and replay — draws must match the cold reference
    // bit for bit, and the restored service must not prepare a single
    // key (12 keys, 16-entry cache, so nothing was evicted from the
    // snapshot).
    let dir = std::env::temp_dir().join(format!("cct-stress-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.snapshot");
    let reference = serve_workload(1, 16);
    serve(options(4, 16), |handle| {
        for request in workload() {
            handle.request(request).unwrap();
        }
        handle.write_snapshot(&path).unwrap();
    });
    serve(options(4, 16).snapshot(&path), |handle| {
        let restored: Vec<Vec<Draw>> = workload()
            .into_iter()
            .map(|request| handle.request(request).unwrap().draws)
            .collect();
        assert_eq!(restored, reference, "restored draws diverged from cold");
        assert_eq!(
            handle.cache_stats().total_prepares(),
            0,
            "restored cache re-prepared a key"
        );
    });
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn single_flight_prepares_each_key_exactly_once() {
    // 4 keys, 4-entry cache, 8 clients racing on a barrier so all
    // first-arrivals pile onto cold keys simultaneously. No evictions
    // are possible, so every key must be prepared exactly once.
    const SPECS: [&str; 4] = ["petersen", "complete:9", "grid:3x3", "cycle:8"];
    let barrier = Barrier::new(8);
    serve(options(4, 4), |handle| {
        std::thread::scope(|s| {
            for client in 0..8usize {
                let handle = handle.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    // Stagger per-thread key order so every key sees
                    // concurrent first requests.
                    for i in 0..SPECS.len() {
                        let spec = SPECS[(i + client) % SPECS.len()];
                        handle
                            .request(SampleRequest::new(spec).seed(client as u64))
                            .unwrap();
                    }
                });
            }
        });
        let stats = handle.cache_stats();
        let expected: BTreeMap<CacheKey, u64> = SPECS
            .iter()
            .map(|&s| {
                (
                    CacheKey {
                        algorithm: Algorithm::Thm1,
                        backend: cct_core::Backend::Auto,
                        precision: cct_core::Precision::Float64,
                        graph_spec: s.into(),
                    },
                    1,
                )
            })
            .collect();
        assert_eq!(
            stats.prepares, expected,
            "single-flight violated: some key prepared more than once"
        );
        assert_eq!(stats.misses, 4, "one miss per key");
        assert_eq!(stats.hits, 8 * 4 - 4);
        assert_eq!(stats.evictions, 0);
    });
}

#[test]
fn eviction_churn_still_prepares_deterministically() {
    // 6 keys through a 4-entry cache, twice over: the second pass
    // re-prepares whatever was evicted, and the cache's prepare
    // counters record the churn — but the served draws never change
    // (covered above); here we pin that the counters only ever grow by
    // whole re-preparations, i.e. prepares ≥ 1 per key and
    // misses = total prepares.
    serve(options(2, 4), |handle| {
        for pass in 0..2 {
            for spec in [
                "petersen",
                "complete:9",
                "grid:3x3",
                "cycle:8",
                "wheel:9",
                "kdense:9",
            ] {
                handle.request(SampleRequest::new(spec).seed(pass)).unwrap();
            }
        }
        let stats = handle.cache_stats();
        assert_eq!(stats.prepares.len(), 6);
        assert!(stats.prepares.values().all(|&c| c >= 1));
        assert_eq!(stats.misses, stats.total_prepares());
        assert!(stats.evictions > 0, "6 keys cannot fit in 4 entries");
        assert_eq!(stats.len, 4, "table stays at capacity");
    });
}
