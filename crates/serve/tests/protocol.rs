//! Property tests of the wire protocol.
//!
//! * Round-trip: any valid [`SampleRequest`] survives
//!   serialize → parse → serialize as a fixed point (both compact and
//!   pretty framing), at full `u64` seed range and through hostile
//!   spec strings (quotes, backslashes, control characters, unicode).
//! * Robustness: arbitrary malformed frames — byte soup, valid JSON of
//!   the wrong shape, valid requests with trailing garbage — produce a
//!   structured `{"ok": false, "error": …}` response on the same
//!   connection, never a disconnect or a panic, and the connection
//!   keeps serving afterwards.

use cct_core::{EngineChoice, SamplerConfig, WalkLength};
use cct_json::Json;
use cct_serve::{serve, serve_connection, Algorithm, SampleRequest, ServeOptions, MAX_COUNT};
use proptest::collection::vec;
use proptest::prelude::*;

/// Characters deliberately chosen to stress JSON escaping and the
/// spec parser's error paths.
const SPEC_CHARS: [char; 20] = [
    'a', 'z', 'A', '0', '9', ':', '.', '-', 'x', '_', ' ', '"', '\\', '\n', '\t', '\u{1}', 'π',
    '∅', '{', '[',
];

fn arb_spec() -> impl Strategy<Value = String> {
    vec(0usize..SPEC_CHARS.len(), 1..32)
        .prop_map(|idx| idx.into_iter().map(|i| SPEC_CHARS[i]).collect())
}

fn arb_request() -> impl Strategy<Value = SampleRequest> {
    (arb_spec(), 0usize..2, any::<u64>(), 1u32..=MAX_COUNT).prop_map(
        |(graph_spec, alg, seed, count)| {
            SampleRequest::new(graph_spec)
                .algorithm(Algorithm::ALL[alg])
                .seed(seed)
                .count(count)
        },
    )
}

/// A line of near-arbitrary bytes (newlines remapped so the value
/// stays a single frame).
fn arb_junk_line() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..64).prop_map(|bytes| {
        let cleaned: Vec<u8> = bytes
            .into_iter()
            .map(|b| if b == b'\n' || b == b'\r' { b'.' } else { b })
            .collect();
        String::from_utf8_lossy(&cleaned).into_owned()
    })
}

fn tiny_service_options() -> ServeOptions {
    ServeOptions::new().workers(1).cache_capacity(2).config(
        Algorithm::Thm1,
        SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost),
    )
}

/// Feeds `lines` to one connection of a fresh single-worker service and
/// returns the parsed response frames (one per non-blank line, or the
/// test fails).
fn answers_for(lines: &[String]) -> Vec<Json> {
    let input = lines.iter().map(|l| format!("{l}\n")).collect::<String>();
    let mut out: Vec<u8> = Vec::new();
    serve(tiny_service_options(), |handle| {
        serve_connection(input.as_bytes(), &mut out, &handle).expect("in-memory I/O");
    });
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(|l| Json::parse(l).expect("every response line is valid JSON"))
        .collect()
}

proptest! {
    #[test]
    fn request_roundtrip_is_a_fixed_point(request in arb_request()) {
        let line = request.to_json().compact();
        let parsed = SampleRequest::parse_line(&line).expect("own output parses");
        prop_assert_eq!(&parsed, &request);
        // Fixed point at the byte level: parse → serialize is stable.
        prop_assert_eq!(parsed.to_json().compact(), line);
        // Pretty framing parses to the same request too.
        let pretty = request.to_json().pretty();
        prop_assert_eq!(SampleRequest::parse_line(pretty.trim_end()).unwrap(), request);
    }

    #[test]
    fn trailing_garbage_is_rejected(request in arb_request(), junk in arb_junk_line()) {
        let line = format!("{} {}", request.to_json().compact(), junk.trim());
        if !junk.trim().is_empty() {
            prop_assert!(SampleRequest::parse_line(&line).is_err());
        }
    }

    #[test]
    fn junk_frames_never_panic_the_parser(line in arb_junk_line()) {
        // Either outcome is fine; panicking or hanging is not.
        let _ = SampleRequest::parse_line(&line);
    }

    #[test]
    fn connections_survive_malformed_frames(junk in arb_junk_line()) {
        // junk frame, then a valid-but-unservable request, then a
        // serveable one: three structured answers on one connection.
        let valid = SampleRequest::new("complete:4").seed(1).to_json().compact();
        let unservable = r#"{"graph": "complete:0"}"#.to_string();
        let lines = vec![junk.clone(), unservable, valid];
        let answers = answers_for(&lines);
        let junk_is_blank = junk.trim().is_empty();
        prop_assert_eq!(answers.len(), if junk_is_blank { 2 } else { 3 });
        let mut it = answers.into_iter();
        if !junk_is_blank {
            let first = it.next().unwrap();
            // Almost always an error; on the astronomically unlikely
            // chance the junk parsed as a request, it must still be a
            // structured frame with "ok".
            prop_assert!(matches!(first.get("ok"), Some(Json::Bool(_))));
            if first.get("ok") == Some(&Json::Bool(false)) {
                prop_assert!(first.get("error").unwrap().as_str().is_some());
            }
        }
        let second = it.next().unwrap();
        prop_assert_eq!(second.get("ok"), Some(&Json::Bool(false)));
        prop_assert!(second
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("bad graph spec"));
        let third = it.next().unwrap();
        prop_assert_eq!(third.get("ok"), Some(&Json::Bool(true)));
        prop_assert_eq!(third.get("draws").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn response_frames_reparse_to_themselves(seed in any::<u64>(), count in 1u32..4) {
        // The response side of the fixed-point property: the served
        // frame reparses to the identical Json value, compact and
        // pretty.
        let request = SampleRequest::new("complete:4").seed(seed).count(count);
        let frame = serve(tiny_service_options(), |handle| {
            handle.request(request).unwrap().to_json()
        });
        prop_assert_eq!(Json::parse(&frame.compact()).unwrap(), frame.clone());
        prop_assert_eq!(Json::parse(&frame.pretty()).unwrap(), frame);
    }
}
