//! Property-based tests for the distributed sampler: every configuration
//! on every connected graph yields a valid spanning tree with a
//! consistent report.

use cct_core::{CliqueTreeSampler, EngineChoice, Placement, SamplerConfig, Variant, WalkLength};
use cct_graph::generators;
use proptest::prelude::*;
use rand::SeedableRng;

fn any_placement() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::Matching),
        Just(Placement::PerPairShuffle),
        Just(Placement::Oracle),
    ]
}

fn any_variant() -> impl Strategy<Value = Variant> {
    prop_oneof![Just(Variant::MonteCarlo), Just(Variant::LasVegas)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sampler_always_yields_valid_trees(
        n in 3usize..=16,
        graph_seed in any::<u64>(),
        sample_seed in any::<u64>(),
        placement in any_placement(),
        variant in any_variant(),
        rho in 2usize..=5,
    ) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(graph_seed);
        let g = generators::erdos_renyi_connected(n, 0.5, &mut gr);
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost)
            .placement(placement)
            .variant(variant)
            .rho(rho.min(n.saturating_sub(1)).max(2));
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rand::rngs::StdRng::seed_from_u64(sample_seed);
        let report = sampler.sample(&g, &mut r).unwrap();
        prop_assert!(!report.monte_carlo_failure);
        prop_assert_eq!(report.tree.n(), n);
        for &(u, v) in report.tree.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        // Report invariants.
        let phase_rounds: u64 = report.phases.iter().map(|p| p.rounds.total_rounds()).sum();
        prop_assert_eq!(phase_rounds, report.total_rounds());
        let new_total: usize = report.phases.iter().map(|p| p.new_vertices).sum();
        prop_assert_eq!(new_total, n - 1);
        for p in &report.phases {
            prop_assert!(p.s_size >= 2);
            prop_assert!(p.rho >= 2);
            prop_assert!(p.new_vertices >= 1);
            prop_assert!(p.tau >= p.new_vertices as u64);
        }
    }

    #[test]
    fn weighted_graphs_always_work(
        n in 3usize..=12,
        seed in any::<u64>(),
        max_w in 2u64..=16,
    ) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let base = generators::erdos_renyi_connected(n, 0.6, &mut r);
        let g = generators::with_random_integer_weights(&base, max_w, &mut r).unwrap();
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 8.0 })
            .engine(EngineChoice::UnitCost);
        let report = CliqueTreeSampler::new(config).sample(&g, &mut r).unwrap();
        prop_assert!(!report.monte_carlo_failure);
        prop_assert_eq!(report.tree.edges().len(), n - 1);
    }

    #[test]
    fn determinism_per_seed(n in 4usize..=12, seed in any::<u64>()) {
        let mut gr = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.5, &mut gr);
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let a = sampler
            .sample(&g, &mut rand::rngs::StdRng::seed_from_u64(seed ^ 1))
            .unwrap();
        let b = sampler
            .sample(&g, &mut rand::rngs::StdRng::seed_from_u64(seed ^ 1))
            .unwrap();
        prop_assert_eq!(a.total_rounds(), b.total_rounds());
        prop_assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn trees_and_stars_have_unique_tree(n in 3usize..=14, seed in any::<u64>()) {
        // Graphs that ARE trees have exactly one spanning tree: the
        // sampler must return it.
        let g = if seed % 2 == 0 {
            generators::path(n)
        } else {
            generators::star(n)
        };
        let expect: Vec<(usize, usize)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 8.0 })
            .engine(EngineChoice::UnitCost)
            .variant(Variant::LasVegas);
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let report = CliqueTreeSampler::new(config).sample(&g, &mut r).unwrap();
        prop_assert_eq!(report.tree.edges(), &expect[..]);
    }
}
