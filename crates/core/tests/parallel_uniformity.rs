//! Statistical uniformity of the *parallel* sampling path: chi-square
//! over all spanning trees of K4, the 4-cycle, and the diamond graph,
//! against exact Kirchhoff counts from `cct-graph::count`. The gate is
//! deliberately generous (2× the chi-square critical value) so CI stays
//! deterministic-ish while still catching any distribution shift the
//! worker sharding could introduce.

use cct_core::{CliqueTreeSampler, EngineChoice, SamplerConfig, WalkLength, Workers};
use cct_graph::{
    generators, spanning_tree_count_exact, spanning_tree_distribution, Graph, SpanningTree,
};
use cct_walks::stats;
use rand::SeedableRng;
use std::collections::HashMap;

fn assert_parallel_uniform(g: &Graph, engine: EngineChoice, trials: usize, seed: u64, label: &str) {
    // Ground truth: exhaustive enumeration, cross-checked against the
    // Kirchhoff (Matrix–Tree) determinant count.
    let exact = spanning_tree_distribution(g);
    let kirchhoff = spanning_tree_count_exact(g).expect("tiny graph");
    assert_eq!(
        exact.len() as i128,
        kirchhoff,
        "{label}: enumeration disagrees with the Matrix–Tree count"
    );

    let config = SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(engine)
        .workers(Workers::Fixed(4));
    let sampler = CliqueTreeSampler::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts: HashMap<SpanningTree, usize> = HashMap::new();
    let mut failures = 0usize;
    for _ in 0..trials {
        let report = sampler.sample(g, &mut rng).expect("sampling failed");
        if report.monte_carlo_failure {
            failures += 1;
            continue;
        }
        *counts.entry(report.tree).or_insert(0) += 1;
    }
    assert!(
        failures * 100 < trials,
        "{label}: {failures}/{trials} Monte Carlo failures"
    );
    let effective = trials - failures;
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, effective);
    assert!(
        stat < 2.0 * crit,
        "{label}: chi² = {stat:.1} ≥ 2 × {crit:.1} over {} trees",
        exact.len()
    );
}

#[test]
fn parallel_path_is_uniform_on_k4() {
    // K4: Cayley gives 4² = 16 spanning trees.
    let g = generators::complete(4);
    assert_eq!(spanning_tree_count_exact(&g).unwrap(), 16);
    assert_parallel_uniform(&g, EngineChoice::UnitCost, 8_000, 2100, "K4/parallel");
}

#[test]
fn parallel_path_is_uniform_on_cycle4() {
    // C4: removing any one of the 4 edges gives a tree.
    let g = generators::cycle(4);
    assert_eq!(spanning_tree_count_exact(&g).unwrap(), 4);
    assert_parallel_uniform(&g, EngineChoice::UnitCost, 8_000, 2101, "C4/parallel");
}

#[test]
fn parallel_path_is_uniform_on_diamond() {
    // The diamond (K4 minus one edge): 8 spanning trees. Run this one
    // through the real semiring engine so the MachineProgram-based
    // multiply sits on the sampled path too.
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    assert_eq!(spanning_tree_count_exact(&g).unwrap(), 8);
    assert_parallel_uniform(&g, EngineChoice::Semiring, 8_000, 2102, "diamond/parallel");
}
