//! §2.5 numerical-precision behaviour of the full sampler: fixed-point
//! truncation (Lemma 7), Schur-route equivalence, and the uniformity of
//! the pipeline under realistic precision.

use cct_core::{
    CliqueTreeSampler, EngineChoice, Precision, SamplerConfig, SchurComputation, Variant,
    WalkLength,
};
use cct_graph::{generators, spanning_tree_distribution};
use cct_linalg::FixedPoint;
use cct_walks::stats;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn base_config() -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost)
}

#[test]
fn fixed_point_sampler_produces_valid_trees() {
    // 44 fractional bits keep every distribution alive on small graphs.
    let config = base_config().precision(Precision::Fixed(FixedPoint::new(44)));
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(1);
    for g in [
        generators::complete(10),
        generators::grid(3, 3),
        generators::petersen(),
    ] {
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), g.n() - 1);
    }
}

#[test]
fn fixed_point_sampler_stays_uniform() {
    // Lemma 9: with β polynomially small the output law is within ε of
    // uniform — with 44 bits the truncation is far below the chi-square
    // gate's resolution.
    let g = generators::complete(4);
    let exact = spanning_tree_distribution(&g);
    let config = base_config().precision(Precision::Fixed(FixedPoint::new(44)));
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(2);
    let trials = 10_000;
    let counts =
        stats::empirical_counts((0..trials).map(|_| sampler.sample(&g, &mut r).unwrap().tree));
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
    assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
}

#[test]
fn coarse_precision_visibly_biases() {
    // The flip side of Lemma 9: with very few bits the midpoint
    // distributions are distorted and the bias becomes *statistically
    // visible* — evidence the precision knob is real, not cosmetic.
    let g = generators::complete(4);
    let exact = spanning_tree_distribution(&g);
    let config = base_config()
        .precision(Precision::Fixed(FixedPoint::new(4)))
        .variant(Variant::MonteCarlo);
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(3);
    let trials = 30_000;
    let mut counts = std::collections::HashMap::new();
    let mut failures = 0usize;
    for _ in 0..trials {
        match sampler.sample(&g, &mut r) {
            Ok(rep) if !rep.monte_carlo_failure => {
                *counts.entry(rep.tree).or_insert(0usize) += 1;
            }
            _ => failures += 1,
        }
    }
    let effective = trials - failures;
    // Either sampling degenerates outright, or the law is detectably off.
    if effective > trials / 2 {
        let (stat, crit) = stats::goodness_of_fit(&counts, &exact, effective);
        assert!(
            stat > crit || failures > 0,
            "4-bit truncation left no statistical trace (chi² = {stat:.1} < {crit:.1})"
        );
    }
}

#[test]
fn schur_squaring_route_is_uniform_too() {
    // The paper's actual numeric route (iterated squaring with
    // subtractive error) must pass the same uniformity gate as the exact
    // solve.
    let g = generators::complete(4);
    let exact = spanning_tree_distribution(&g);
    let config = base_config().schur(SchurComputation::IteratedSquaring { tol: 1e-12 });
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(4);
    let trials = 10_000;
    let counts =
        stats::empirical_counts((0..trials).map(|_| sampler.sample(&g, &mut r).unwrap().tree));
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
    assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
}

#[test]
fn words_per_entry_inflates_matmul_rounds() {
    // Lemma 7's O(log 1/δ)-bit entries occupy several machine words; the
    // fast-oracle engine must charge proportionally more.
    let g = generators::complete(16);
    let run = |precision: Precision| {
        let config = SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::FastOracle {
                alpha: cct_sim::ALPHA,
            })
            .precision(precision);
        let mut r = rng(5);
        CliqueTreeSampler::new(config).sample(&g, &mut r).unwrap()
    };
    let plain = run(Precision::Float64);
    let fixed = run(Precision::Fixed(FixedPoint::new(44)));
    assert!(
        fixed.rounds.rounds(cct_sim::CostCategory::MatMul)
            > plain.rounds.rounds(cct_sim::CostCategory::MatMul),
        "fixed-point entries must cost more matmul rounds"
    );
}
