//! End-to-end distributional validation of the distributed sampler:
//! Theorem 1 (TVD to uniform), Lemmas 3–4 (matching placement ≡ direct
//! placement), footnote 1 (weighted graphs), and the Appendix exact
//! variant.

use cct_core::{CliqueTreeSampler, Placement, SamplerConfig, Variant, WalkLength};
use cct_graph::{generators, spanning_tree_distribution, Graph, SpanningTree};
use cct_walks::stats;
use rand::SeedableRng;
use std::collections::HashMap;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Draws `trials` trees and chi-square-tests them against the exact
/// weighted-uniform distribution.
fn assert_uniform(g: &Graph, config: SamplerConfig, trials: usize, seed: u64, label: &str) {
    let exact = spanning_tree_distribution(g);
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(seed);
    let mut counts: HashMap<SpanningTree, usize> = HashMap::new();
    let mut failures = 0usize;
    for _ in 0..trials {
        let report = sampler.sample(g, &mut r).expect("sampling failed");
        if report.monte_carlo_failure {
            failures += 1;
            continue;
        }
        *counts.entry(report.tree).or_insert(0) += 1;
    }
    assert!(
        failures * 100 < trials,
        "{label}: {failures}/{trials} Monte Carlo failures — ℓ too short"
    );
    let effective = trials - failures;
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, effective);
    assert!(
        stat < crit,
        "{label}: chi² = {stat:.1} ≥ {crit:.1} over {} trees",
        exact.len()
    );
}

fn quick(ell_factor: f64) -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: ell_factor })
        .engine(cct_core::EngineChoice::UnitCost)
}

#[test]
fn uniform_on_k4_with_matching_placement() {
    // K4: 16 spanning trees; ρ = 2.
    assert_uniform(
        &generators::complete(4),
        quick(4.0),
        12_000,
        1000,
        "K4/matching",
    );
}

#[test]
fn uniform_on_k5_with_larger_rho() {
    // ρ = 4 on K5 exercises multi-midpoint levels and the matching
    // machinery hard (budget close to |S|).
    let config = quick(4.0).rho(4);
    assert_uniform(&generators::complete(5), config, 12_000, 1001, "K5/rho4");
}

#[test]
fn uniform_on_cycle_with_chord() {
    // C5 + chord: 11 spanning trees; non-regular, non-vertex-transitive.
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
    assert_uniform(&g, quick(4.0), 12_000, 1002, "C5+chord");
}

#[test]
fn uniform_on_bipartite_graph() {
    // K_{2,3}: 12 spanning trees; bipartite exercises the parity logic
    // and the degenerate-phase fallbacks.
    assert_uniform(
        &generators::complete_bipartite(2, 3),
        quick(4.0),
        12_000,
        1003,
        "K23",
    );
}

#[test]
fn matching_placement_equals_oracle_placement() {
    // Lemmas 3–4: the bandwidth-saving matching placement must not change
    // the output law. Both variants are tested against the same exact
    // distribution with the same trial count; if either deviated the
    // chi-square gate would trip.
    let g = generators::complete(5);
    let config_m = quick(4.0).rho(3).placement(Placement::Matching);
    let config_o = quick(4.0).rho(3).placement(Placement::Oracle);
    assert_uniform(&g, config_m, 10_000, 1004, "K5/matching");
    assert_uniform(&g, config_o, 10_000, 1005, "K5/oracle");
}

#[test]
fn exact_variant_is_uniform() {
    // Appendix §5: Las Vegas + per-pair shuffle, ρ = ⌊n^{1/3}⌋.
    let mut config = SamplerConfig::exact_variant()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(cct_core::EngineChoice::UnitCost);
    config = config.rho(3); // n^{1/3} floors to 2 at n=5; use 3 for coverage
    assert_uniform(
        &generators::complete(5),
        config,
        12_000,
        1006,
        "K5/exact-variant",
    );
}

#[test]
fn weighted_triangle_matches_weighted_uniform() {
    // Footnote 1: integer weights ≤ W; tree probability ∝ Π weights.
    let g = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
    assert_uniform(&g, quick(8.0), 12_000, 1007, "weighted-triangle");
}

#[test]
fn weighted_square_with_chord() {
    let g = Graph::from_weighted_edges(
        4,
        &[
            (0, 1, 2.0),
            (1, 2, 1.0),
            (2, 3, 3.0),
            (3, 0, 1.0),
            (0, 2, 2.0),
        ],
    )
    .unwrap();
    assert_uniform(&g, quick(4.0), 12_000, 1008, "weighted-square");
}

#[test]
fn las_vegas_variant_is_uniform() {
    let config = quick(4.0).variant(Variant::LasVegas);
    assert_uniform(
        &generators::complete(4),
        config,
        10_000,
        1009,
        "K4/las-vegas",
    );
}

#[test]
fn sampler_agrees_with_aldous_broder_on_star_plus() {
    // Star + one extra edge: 0 is the hub; extra edge (1, 2).
    let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
    assert_uniform(&g, quick(4.0), 12_000, 1010, "star-plus");
}
