//! Robustness and edge-case behaviour of the distributed sampler: the
//! corner graphs, budget extremes, and configuration boundaries a
//! downstream user will eventually hit.

use cct_core::{CliqueTreeSampler, EngineChoice, PhaseMethod, SamplerConfig, Variant, WalkLength};
use cct_graph::{generators, Graph};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn quick() -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost)
}

#[test]
fn rho_equal_to_n_covers_in_one_phase() {
    // Budget = n: the whole graph in a single (direct-local) phase.
    let g = generators::complete(9);
    let sampler = CliqueTreeSampler::new(quick().rho(9).variant(Variant::LasVegas));
    let mut r = rng(1);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert_eq!(report.num_phases(), 1);
    assert_eq!(report.phases[0].method, PhaseMethod::DirectLocal);
    assert_eq!(report.phases[0].new_vertices, 8);
}

#[test]
fn rho_larger_than_n_is_clamped() {
    let g = generators::complete(6);
    let sampler = CliqueTreeSampler::new(quick().rho(100));
    let mut r = rng(2);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert_eq!(report.num_phases(), 1);
    assert_eq!(report.phases[0].rho, 6);
}

#[test]
fn minimal_rho_runs_many_phases() {
    // ρ = 2: one new vertex per phase → exactly n − 1 phases.
    let g = generators::complete(8);
    let sampler = CliqueTreeSampler::new(quick().rho(2));
    let mut r = rng(3);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert_eq!(report.num_phases(), 7);
    for p in &report.phases {
        assert_eq!(p.new_vertices, 1);
    }
}

#[test]
fn dense_multigraph_like_weights() {
    // Extreme weight skew (1 vs 10⁶) — the walk all but glues the heavy
    // edge's endpoints together; the sampler must still terminate and
    // include the heavy edge essentially always.
    let g = Graph::from_weighted_edges(
        4,
        &[
            (0, 1, 1e6),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 2, 1.0),
        ],
    )
    .unwrap();
    let sampler = CliqueTreeSampler::new(quick().variant(Variant::LasVegas));
    let mut r = rng(4);
    let mut heavy = 0;
    for _ in 0..50 {
        let report = sampler.sample(&g, &mut r).unwrap();
        if report.tree.contains_edge(0, 1) {
            heavy += 1;
        }
    }
    assert!(heavy >= 48, "heavy edge appeared in only {heavy}/50 trees");
}

#[test]
fn star_graphs_force_bipartite_fallback() {
    // Stars are bipartite with side(centre) = 1: every top-down-eligible
    // phase with start at the centre must detect degeneracy gracefully.
    let g = generators::star(12);
    let sampler = CliqueTreeSampler::new(quick().variant(Variant::LasVegas));
    let mut r = rng(5);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert_eq!(report.tree.edges().len(), 11);
    // The unique spanning tree of a star is the star itself.
    for v in 1..12 {
        assert!(report.tree.contains_edge(0, v));
    }
}

#[test]
fn binary_tree_unique_spanning_tree() {
    let g = generators::binary_tree(3);
    let expect: Vec<(usize, usize)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    let sampler = CliqueTreeSampler::new(quick().variant(Variant::LasVegas));
    let mut r = rng(6);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert_eq!(report.tree.edges(), &expect[..]);
}

#[test]
fn very_short_fixed_ell_on_clique_still_works_las_vegas() {
    // ℓ = 2 with Las Vegas: constant extensions, still correct.
    let g = generators::complete(10);
    let config = quick()
        .walk_length(WalkLength::Fixed(2))
        .variant(Variant::LasVegas);
    let sampler = CliqueTreeSampler::new(config);
    let mut r = rng(7);
    let report = sampler.sample(&g, &mut r).unwrap();
    assert!(!report.monte_carlo_failure);
    assert_eq!(report.tree.edges().len(), 9);
}

#[test]
fn phase_tau_counts_are_plausible() {
    let g = generators::lollipop(6, 6);
    let sampler = CliqueTreeSampler::new(quick().variant(Variant::LasVegas));
    let mut r = rng(8);
    let report = sampler.sample(&g, &mut r).unwrap();
    // Each phase walks at least as many steps as it discovers vertices,
    // and the sum of discoveries is n − 1.
    let mut total_new = 0;
    for p in &report.phases {
        assert!(p.tau >= p.new_vertices as u64);
        total_new += p.new_vertices;
    }
    assert_eq!(total_new, g.n() - 1);
}

#[test]
fn report_display_is_informative() {
    let g = generators::complete(6);
    let sampler = CliqueTreeSampler::new(quick());
    let mut r = rng(9);
    let report = sampler.sample(&g, &mut r).unwrap();
    let s = format!("{report}");
    assert!(s.contains("phases"));
    assert!(s.contains("rounds"));
    assert!(s.contains("phase 0"));
}
