//! Kirchhoff-marginal validation: the probability that edge `e` appears
//! in a uniform spanning tree equals `w(e) · R_eff(e)`. This checks the
//! distributed sampler's *marginals* on graphs too large to enumerate —
//! an independent angle from the chi-square tests on full distributions.

use cct_core::{CliqueTreeSampler, EngineChoice, SamplerConfig, WalkLength};
use cct_graph::{generators, spanning_tree_edge_marginals, Graph};
use rand::SeedableRng;

fn check_marginals(g: &Graph, trials: usize, seed: u64, label: &str) {
    let marginals = spanning_tree_edge_marginals(g);
    let config = SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(EngineChoice::UnitCost);
    let sampler = CliqueTreeSampler::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; marginals.len()];
    for _ in 0..trials {
        let tree = sampler.sample(g, &mut rng).expect("sample").tree;
        for (i, &(u, v, _)) in marginals.iter().enumerate() {
            if tree.contains_edge(u, v) {
                counts[i] += 1;
            }
        }
    }
    for (i, &(u, v, p)) in marginals.iter().enumerate() {
        let emp = counts[i] as f64 / trials as f64;
        let sigma = (p.clamp(1e-9, 1.0) * (1.0 - p).max(0.0) / trials as f64).sqrt();
        assert!(
            (emp - p).abs() < 5.0 * sigma + 0.01,
            "{label}: edge ({u},{v}): empirical {emp:.4} vs Kirchhoff {p:.4}"
        );
    }
}

#[test]
fn petersen_marginals() {
    // Edge-transitive: every marginal is exactly (n−1)/m = 9/15 = 0.6.
    let g = generators::petersen();
    let marginals = spanning_tree_edge_marginals(&g);
    for &(_, _, p) in &marginals {
        assert!((p - 0.6).abs() < 1e-9);
    }
    check_marginals(&g, 4000, 42, "petersen");
}

#[test]
fn lollipop_marginals() {
    // Wildly non-uniform marginals: tail edges are bridges (p = 1),
    // clique edges are interchangeable but far below 1.
    let g = generators::lollipop(5, 3);
    let marginals = spanning_tree_edge_marginals(&g);
    let bridges: Vec<_> = marginals
        .iter()
        .filter(|&&(_, _, p)| (p - 1.0).abs() < 1e-9)
        .collect();
    assert_eq!(bridges.len(), 3, "three tail edges are bridges");
    check_marginals(&g, 4000, 43, "lollipop");
}

#[test]
fn weighted_graph_marginals() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let base = generators::erdos_renyi_connected(9, 0.5, &mut rng);
    let g = generators::with_random_integer_weights(&base, 6, &mut rng).unwrap();
    check_marginals(&g, 4000, 44, "weighted-ER");
}

#[test]
fn dense_irregular_marginals() {
    // The paper's K_{n−√n,√n} example.
    check_marginals(&generators::k_dense_irregular(12), 4000, 45, "K_dense");
}
