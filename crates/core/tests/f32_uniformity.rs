//! Statistical uniformity of the opt-in `Precision::F32` mode: the
//! chi-square suites of `parallel_uniformity.rs` (unweighted K4, C4,
//! diamond) and the weighted layer (weighted K4 and diamond) rerun with
//! every transition-matrix entry truncated toward zero to the binary32
//! grid. The paper's Lemma 9 bound with δ = 2⁻²⁴ puts the induced
//! statistical distance many orders of magnitude below the chi-square
//! gate's resolution — these tests check that claim empirically rather
//! than trusting the algebra.
//!
//! Gates mirror the f64 suites: 8 000 trials, a generous `2 × crit`
//! threshold, < 1% Monte Carlo failure budget.

use cct_core::{CliqueTreeSampler, EngineChoice, Precision, SamplerConfig, WalkLength, Workers};
use cct_graph::{
    generators, spanning_tree_count_exact, spanning_tree_distribution, Graph, SpanningTree,
};
use cct_walks::stats;
use rand::SeedableRng;
use std::collections::HashMap;

const TRIALS: usize = 8_000;

fn f32_config(engine: EngineChoice) -> SamplerConfig {
    SamplerConfig::new()
        .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
        .engine(engine)
        .workers(Workers::Fixed(4))
        .precision(Precision::F32)
}

fn assert_f32_uniform(g: &Graph, engine: EngineChoice, seed: u64, label: &str) {
    let exact = spanning_tree_distribution(g);
    let sampler = CliqueTreeSampler::new(f32_config(engine));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts: HashMap<SpanningTree, usize> = HashMap::new();
    let mut failures = 0usize;
    for _ in 0..TRIALS {
        let report = sampler.sample(g, &mut rng).expect("sampling failed");
        if report.monte_carlo_failure {
            failures += 1;
            continue;
        }
        *counts.entry(report.tree).or_insert(0) += 1;
    }
    assert!(
        failures * 100 < TRIALS,
        "{label}: {failures}/{TRIALS} Monte Carlo failures"
    );
    let effective = TRIALS - failures;
    let (stat, crit) = stats::goodness_of_fit(&counts, &exact, effective);
    assert!(
        stat < 2.0 * crit,
        "{label}: chi² = {stat:.1} ≥ 2 × {crit:.1} over {} trees",
        exact.len()
    );
}

#[test]
fn f32_mode_is_uniform_on_k4() {
    let g = generators::complete(4);
    assert_eq!(spanning_tree_count_exact(&g).unwrap(), 16);
    assert_f32_uniform(&g, EngineChoice::UnitCost, 4100, "K4/f32");
}

#[test]
fn f32_mode_is_uniform_on_cycle4() {
    let g = generators::cycle(4);
    assert_eq!(spanning_tree_count_exact(&g).unwrap(), 4);
    assert_f32_uniform(&g, EngineChoice::UnitCost, 4101, "C4/f32");
}

#[test]
fn f32_mode_is_uniform_on_diamond() {
    // The diamond through the real semiring engine, so the
    // MachineProgram multiply runs on quantized entries too.
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    assert_eq!(spanning_tree_count_exact(&g).unwrap(), 8);
    assert_f32_uniform(&g, EngineChoice::Semiring, 4102, "diamond/f32");
}

#[test]
fn f32_mode_is_weight_proportional_on_k4() {
    // Footnote 1 under quantization: tree probability ∝ Π weights must
    // survive binary32 truncation of the weighted transition matrix.
    let g = Graph::from_weighted_edges(
        4,
        &[
            (0, 1, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 2, 4.0),
            (1, 3, 5.0),
            (2, 3, 6.0),
        ],
    )
    .unwrap();
    assert_f32_uniform(&g, EngineChoice::UnitCost, 4103, "K4-w/f32");
}

#[test]
fn f32_mode_is_weight_proportional_on_diamond() {
    let g = Graph::from_weighted_edges(
        4,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 0, 3.0),
            (0, 2, 5.0),
        ],
    )
    .unwrap();
    assert_f32_uniform(&g, EngineChoice::UnitCost, 4104, "diamond-w/f32");
}
