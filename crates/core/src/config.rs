//! Configuration for the phase-based Congested Clique spanning-tree
//! sampler.
//!
//! The defaults reproduce Theorem 1's setting: `ρ = ⌊√n⌋`,
//! `ℓ = ` smallest power of two `≥ log₂(4√n/ε)·n³`, Monte Carlo
//! semantics, matching-based midpoint placement, and the fast-matmul
//! oracle with `α = 0.157`. [`SamplerConfig::exact_variant`] switches to
//! the Appendix §5 setting (`ρ = ⌊n^{1/3}⌋`, Las Vegas, per-pair shuffle
//! placement).

use cct_graph::Graph;
use cct_linalg::{FixedPoint, Repr, Rounding};
use cct_sim::{Workers, ALPHA};

/// Which transition-matrix representation the pipeline uses
/// (`cct_linalg::PMatrix`).
///
/// All three backends produce **byte-identical trees and round
/// ledgers** for the same seed — the sparse kernels accumulate in the
/// same order as the dense ones (the `cct-linalg` bit-identity
/// contract), so the knob trades memory and wall-clock only. `Auto`
/// starts sparse exactly when the input graph is sparse enough for CSR
/// to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Pick per input graph: sparse for large low-density inputs,
    /// dense otherwise (the default).
    Auto,
    /// Always dense row-major storage (the pre-backend behavior).
    Dense,
    /// Start in CSR; the fill-in tracker still promotes densified
    /// powers to dense storage at the memory break-even.
    Sparse,
}

impl Backend {
    /// All backends, for sweeps.
    pub const ALL: [Backend; 3] = [Backend::Auto, Backend::Dense, Backend::Sparse];

    /// `Auto` only considers the sparse representation at or above this
    /// vertex count (below it, dense buffers are trivially small).
    pub const AUTO_MIN_N: usize = 64;

    /// The CLI/wire name (`auto` / `dense` / `sparse`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Auto => "auto",
            Backend::Dense => "dense",
            Backend::Sparse => "sparse",
        }
    }

    /// Parses a CLI/wire name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "auto" => Some(Backend::Auto),
            "dense" => Some(Backend::Dense),
            "sparse" => Some(Backend::Sparse),
            _ => None,
        }
    }

    /// The representation this backend starts `g`'s pipeline in.
    /// `Auto` goes sparse when `n ≥ `[`Backend::AUTO_MIN_N`] and the
    /// transition matrix's fill (one entry per directed edge plus
    /// isolated-vertex self-loops) is at most 1/8 — comfortably below
    /// CSR's ≈ 2/3 memory break-even, so the choice pays off even after
    /// a level or two of fill-in.
    pub fn resolve(self, g: &Graph) -> Repr {
        match self {
            Backend::Dense => Repr::Dense,
            Backend::Sparse => Repr::Sparse,
            Backend::Auto => {
                let n = g.n();
                let nnz = 2 * g.m() + n; // upper bound: every row gets its degree, +1 slack
                if n >= Backend::AUTO_MIN_N && nnz.saturating_mul(8) <= n * n {
                    Repr::Sparse
                } else {
                    Repr::Dense
                }
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How the target walk length `ℓ` is chosen per phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkLength {
    /// The paper's choice (§2.1): the smallest power of two at least
    /// `log₂(4√n/ε) · n³`, with `ε = 1/n^c` given by `epsilon`.
    Paper {
        /// Total-variation budget `ε` of Theorem 1.
        epsilon: f64,
    },
    /// A fixed power of two (tests and experiments).
    Fixed(u64),
    /// The smallest power of two at least `factor · n³`.
    ScaledCubic {
        /// Multiplier on `n³`.
        factor: f64,
    },
}

impl WalkLength {
    /// Resolves the target length for an `n`-vertex input. Lengths past
    /// `2⁶²` saturate there (still a power of two): they only arise for
    /// inputs far beyond the out-of-core escape, where `ℓ` is never used
    /// to size an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the policy yields a non-finite length or `Fixed` is not
    /// a power of two ≥ 2.
    pub fn resolve(&self, n: usize) -> u64 {
        let raw = match *self {
            WalkLength::Paper { epsilon } => {
                assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
                let n = n as f64;
                (4.0 * n.sqrt() / epsilon).log2().max(1.0) * n.powi(3)
            }
            WalkLength::Fixed(l) => {
                assert!(
                    l >= 2 && l.is_power_of_two(),
                    "Fixed length must be a power of two ≥ 2"
                );
                return l;
            }
            WalkLength::ScaledCubic { factor } => {
                assert!(factor > 0.0, "factor must be positive");
                factor * (n as f64).powi(3)
            }
        };
        assert!(raw.is_finite(), "walk length overflows");
        if raw >= 2.0f64.powi(62) {
            // The paper's ℓ = Θ̃(n³) leaves u64 range near n ≈ 10⁶. Such
            // an ℓ is astronomically past the out-of-core escape, where
            // no doubling table of depth log₂ ℓ is ever materialized and
            // phase budgets only compare against the realized τ — so
            // saturate at the largest representable power of two instead
            // of refusing million-vertex inputs.
            return 1 << 62;
        }
        ((raw.max(2.0)).ceil() as u64).next_power_of_two()
    }
}

/// Monte Carlo (Theorem 1) vs. Las Vegas (Appendix §5.1) semantics when a
/// phase's `ℓ`-length walk fails to visit `ρ` distinct vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Output an arbitrary spanning tree and flag the failure (happens
    /// with probability ≤ ε by the choice of `ℓ`).
    MonteCarlo,
    /// Double `ℓ`, sample a fresh endpoint from the current end, and
    /// keep walking until the budget is met.
    LasVegas,
}

/// How the leader places the collected midpoints (§2.1.3 vs. §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// §2.1.3: collect the *multiset* of midpoints and re-sample their
    /// positions via a weighted perfect matching (exact permanent sampler
    /// below [`cct_matching::MAX_EXACT_SLOTS`] slots, Metropolis swap
    /// chain above it).
    Matching,
    /// Appendix §5.3: collect each start–end pair's own multiset and
    /// place it via a uniform within-pair permutation (error-free).
    PerPairShuffle,
    /// Infinite-bandwidth reference: use the midpoint sequences `Π_{p,q}`
    /// directly. Exists to test Lemmas 3–4 (experiment E8); charges the
    /// bandwidth a real network could not afford.
    Oracle,
}

/// Which distributed matrix-multiplication engine the phases use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineChoice {
    /// The `O(n^α)` algebraic-algorithm cost oracle (paper's setting).
    FastOracle {
        /// Exponent (default [`cct_sim::ALPHA`] = 0.157).
        alpha: f64,
    },
    /// The real `O(n^{1/3})` semiring implementation (slower but fully
    /// simulated data movement).
    Semiring,
    /// One round per multiply (protocol-logic tests).
    UnitCost,
}

/// How Schur/shortcut matrices are computed numerically (round charges
/// always follow the paper's iterated-squaring count — see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchurComputation {
    /// Exact fundamental-matrix solve (default; fast and numerically
    /// clean — validated against squaring in `cct-schur`).
    ExactSolve,
    /// The paper's iterated squaring of the absorbing chain, run for
    /// real, stopping at transient mass `tol`.
    IteratedSquaring {
        /// Convergence tolerance on the residual transient mass.
        tol: f64,
    },
}

/// Numeric precision of the transition-matrix pipeline.
///
/// `F32` is the opt-in fast path: matrix entries are rounded toward
/// zero to the binary32 grid after every squaring (and once up front),
/// so binary32's 24-bit significand plays the role of Lemma 7's
/// truncation width with `δ = 2⁻²⁴`. Same seed ⇒ same tree at every
/// worker count and backend within a precision mode, but f32 trees are
/// **not** comparable to f64 trees — the mode changes the sampled
/// distribution by the (bounded) statistical distance of §2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// Plain `f64` (default; §2.5 precision effects off).
    Float64,
    /// Fixed-point truncation after every squaring, per Lemma 7.
    Fixed(FixedPoint),
    /// Binary32 truncation after every squaring (the f32 fast path).
    F32,
}

impl Precision {
    /// The CLI/wire name. `Fixed` is a programmatic setting with no
    /// wire spelling; it reports as `"fixed"` for display only.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::Float64 => "f64",
            Precision::F32 => "f32",
            Precision::Fixed(_) => "fixed",
        }
    }

    /// Parses a CLI/wire name (`f64` / `f32`).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::Float64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }

    /// The linalg rounding rule this precision applies between
    /// squarings.
    pub fn rounding(self) -> Rounding {
        match self {
            Precision::Float64 => Rounding::Exact,
            Precision::Fixed(fp) => Rounding::Fixed(fp),
            Precision::F32 => Rounding::F32,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Full sampler configuration. Construct with [`SamplerConfig::new`] /
/// [`SamplerConfig::exact_variant`] and adjust with the builder methods.
///
/// # Examples
///
/// ```
/// use cct_core::{Placement, SamplerConfig, WalkLength};
///
/// let config = SamplerConfig::new()
///     .walk_length(WalkLength::Fixed(1 << 12))
///     .placement(Placement::Matching);
/// assert_eq!(config.resolve_rho(64), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Distinct-vertex budget per phase; `None` = `⌊√n⌋` (Theorem 1).
    pub rho: Option<usize>,
    /// Exact-variant flag: `ρ = ⌊n^{1/3}⌋` when `rho` is `None`.
    pub cube_root_rho: bool,
    /// Walk-length policy.
    pub walk_length: WalkLength,
    /// Failure semantics.
    pub variant: Variant,
    /// Midpoint placement strategy.
    pub placement: Placement,
    /// Matrix-multiplication engine.
    pub engine: EngineChoice,
    /// Schur/shortcut numeric route.
    pub schur: SchurComputation,
    /// Precision model.
    pub precision: Precision,
    /// Worker-pool policy for the parallel round engine: per-machine
    /// local computation (matmul rows, midpoint fan-out) is sharded
    /// across this many threads, while the exchange/ledger barrier stays
    /// single-threaded. Same seed ⇒ same tree and same ledger at every
    /// worker count.
    pub workers: Workers,
    /// Local-compute threads for matrix work (the effective thread count
    /// is the max of this and the resolved `workers`).
    pub threads: usize,
    /// Transition-matrix representation backend (memory/speed only —
    /// trees and ledgers are byte-identical across backends).
    pub backend: Backend,
    /// Swap-chain steps per slot for large matching instances.
    pub swap_steps_per_slot: usize,
    /// Hard cap on materialized partial-walk entries (safety net; the
    /// degenerate bipartite cases fall back to local simulation first).
    pub max_grid_len: usize,
    /// Out-of-core threshold on the *dense-equivalent* bytes of one
    /// phase's power table — `(log₂ ℓ + 2)` levels of `n² × 8` bytes.
    /// Above it the sampler abandons the matrix pipeline entirely
    /// (nothing `Θ(n²)` is ever allocated) and takes the streaming
    /// route: tree inputs (`m = n − 1`) are recognized as their own
    /// unique spanning tree in `O(m)`, and other graphs run the phase
    /// walks step by step on `G` itself. The default (2 GiB) is far
    /// above anything the in-core test/bench suite touches, so the
    /// matrix route's bit-exact fixtures are unaffected. Backend-
    /// independent: the criterion is about what the *dense* pipeline
    /// would cost, so the same graph takes the same route under every
    /// backend.
    pub max_table_bytes: usize,
}

impl SamplerConfig {
    /// Theorem 1 defaults.
    pub fn new() -> Self {
        SamplerConfig {
            rho: None,
            cube_root_rho: false,
            walk_length: WalkLength::Paper { epsilon: 1e-2 },
            variant: Variant::MonteCarlo,
            placement: Placement::Matching,
            engine: EngineChoice::FastOracle { alpha: ALPHA },
            schur: SchurComputation::ExactSolve,
            precision: Precision::Float64,
            workers: Workers::Sequential,
            threads: 1,
            backend: Backend::Auto,
            swap_steps_per_slot: 64,
            max_grid_len: 8_000_000,
            max_table_bytes: 1 << 31,
        }
    }

    /// Appendix §5 defaults: exact sampling (`ρ = ⌊n^{1/3}⌋`, Las Vegas
    /// restarts, error-free per-pair placement).
    pub fn exact_variant() -> Self {
        SamplerConfig {
            cube_root_rho: true,
            variant: Variant::LasVegas,
            placement: Placement::PerPairShuffle,
            ..SamplerConfig::new()
        }
    }

    /// Overrides the per-phase distinct-vertex budget.
    pub fn rho(mut self, rho: usize) -> Self {
        assert!(rho >= 2, "rho must be at least 2");
        self.rho = Some(rho);
        self
    }

    /// Sets the walk-length policy.
    pub fn walk_length(mut self, w: WalkLength) -> Self {
        self.walk_length = w;
        self
    }

    /// Sets the failure semantics.
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the placement strategy.
    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    /// Sets the matmul engine.
    pub fn engine(mut self, e: EngineChoice) -> Self {
        self.engine = e;
        self
    }

    /// Sets the Schur computation route.
    pub fn schur(mut self, s: SchurComputation) -> Self {
        self.schur = s;
        self
    }

    /// Sets the precision model.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Sets local-compute threads.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Sets the transition-matrix representation backend.
    ///
    /// # Examples
    ///
    /// ```
    /// use cct_core::{Backend, SamplerConfig};
    ///
    /// let config = SamplerConfig::new().backend(Backend::Sparse);
    /// assert_eq!(config.backend, Backend::Sparse);
    /// ```
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Sets the parallel round engine's worker-pool policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use cct_core::{SamplerConfig, Workers};
    ///
    /// let config = SamplerConfig::new().workers(Workers::Fixed(4));
    /// assert_eq!(config.workers, Workers::Fixed(4));
    /// ```
    pub fn workers(mut self, w: Workers) -> Self {
        self.workers = w;
        self
    }

    /// Sets the out-of-core threshold on the dense-equivalent bytes of a
    /// phase power table (see the field docs; tests use tiny values to
    /// force the streaming route on small graphs).
    pub fn max_table_bytes(mut self, bytes: usize) -> Self {
        self.max_table_bytes = bytes;
        self
    }

    /// The phase budget for an `n`-vertex graph: the override, else
    /// `⌊n^{1/3}⌋` (exact variant) or `⌊√n⌋`, floored at 2.
    pub fn resolve_rho(&self, n: usize) -> usize {
        let base = match self.rho {
            Some(r) => r,
            None if self.cube_root_rho => (n as f64).cbrt().floor() as usize,
            None => (n as f64).sqrt().floor() as usize,
        };
        base.max(2)
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_length_paper_scales_cubically() {
        let w = WalkLength::Paper { epsilon: 0.01 };
        let l64 = w.resolve(64);
        let l128 = w.resolve(128);
        assert!(l64.is_power_of_two() && l128.is_power_of_two());
        assert!(l64 >= 64u64.pow(3));
        // Doubling n multiplies ℓ by ~8 (power-of-two rounding allows 4–16).
        assert!(l128 / l64 >= 4 && l128 / l64 <= 32);
    }

    #[test]
    fn walk_length_fixed_passthrough() {
        assert_eq!(WalkLength::Fixed(1024).resolve(99), 1024);
    }

    #[test]
    fn walk_length_saturates_for_million_vertex_inputs() {
        // The paper's ℓ at n = 10⁶ exceeds u64; the resolver saturates
        // at 2⁶² (a power of two) rather than rejecting the input — the
        // out-of-core route never materializes anything of depth log₂ ℓ.
        let l = WalkLength::Paper { epsilon: 0.1 }.resolve(1_000_000);
        assert_eq!(l, 1 << 62);
        // Well-inside-range values are untouched by the saturation arm.
        assert!(WalkLength::Paper { epsilon: 0.1 }.resolve(1024) < 1 << 62);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn walk_length_fixed_rejects_non_power() {
        let _ = WalkLength::Fixed(1000).resolve(10);
    }

    #[test]
    fn rho_resolution() {
        let c = SamplerConfig::new();
        assert_eq!(c.resolve_rho(64), 8);
        assert_eq!(c.resolve_rho(100), 10);
        assert_eq!(c.resolve_rho(3), 2); // floor at 2
        let e = SamplerConfig::exact_variant();
        assert_eq!(e.resolve_rho(64), 4);
        assert_eq!(e.resolve_rho(1000), 10);
        let o = SamplerConfig::new().rho(5);
        assert_eq!(o.resolve_rho(1000), 5);
    }

    #[test]
    fn exact_variant_presets() {
        let e = SamplerConfig::exact_variant();
        assert_eq!(e.variant, Variant::LasVegas);
        assert_eq!(e.placement, Placement::PerPairShuffle);
        assert!(e.cube_root_rho);
    }

    #[test]
    fn scaled_cubic_resolves() {
        let w = WalkLength::ScaledCubic { factor: 2.0 };
        let l = w.resolve(8);
        assert!(l >= 1024 && l.is_power_of_two());
    }

    #[test]
    fn precision_names_and_rounding() {
        assert_eq!(Precision::parse("f64"), Some(Precision::Float64));
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("fixed"), None, "not a wire mode");
        assert_eq!(Precision::Float64.as_str(), "f64");
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::Float64.rounding(), Rounding::Exact);
        assert_eq!(Precision::F32.rounding(), Rounding::F32);
        let fp = FixedPoint::new(8);
        assert_eq!(Precision::Fixed(fp).rounding(), Rounding::Fixed(fp));
        assert_eq!(Precision::Fixed(fp).as_str(), "fixed");
    }

    #[test]
    fn backend_resolution_and_names() {
        use cct_graph::generators;
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
        }
        assert_eq!(Backend::parse("csr"), None);
        // Forced backends ignore the graph.
        let k8 = generators::complete(8);
        assert_eq!(Backend::Sparse.resolve(&k8), Repr::Sparse);
        assert_eq!(Backend::Dense.resolve(&k8), Repr::Dense);
        // Auto: small graphs stay dense; large sparse graphs go sparse;
        // large dense graphs stay dense.
        assert_eq!(Backend::Auto.resolve(&generators::cycle(16)), Repr::Dense);
        assert_eq!(Backend::Auto.resolve(&generators::cycle(256)), Repr::Sparse);
        assert_eq!(
            Backend::Auto.resolve(&generators::complete(128)),
            Repr::Dense
        );
    }
}
