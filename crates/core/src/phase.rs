//! One phase of the distributed sampler (Outline 3): the top-down
//! truncated walk on the phase graph, built level by level with
//! distributed midpoint generation (Algorithm 2), distributed binary
//! search for the truncation point (Algorithm 3), and matching-based
//! midpoint placement (§2.1.3 / Lemma 3).
//!
//! Vertices are handled in **global** id space throughout: the phase
//! transition matrix is the `n × n` padded block matrix
//! `diag(Schur(G,S) transition, I)`, whose powers restrict to the Schur
//! block, so grid entries, midpoints, and first-visit bookkeeping never
//! need local reindexing.

use crate::config::{Placement, SamplerConfig, Variant};
use crate::report::PhaseMethod;
use cct_linalg::{sample_index, PMatrix};
use cct_matching::{
    sample_per_group_shuffle, Assignment, ExactPermanentSampler, MatchingInstance,
    SwapChainSampler, MAX_EXACT_SLOTS,
};
use cct_schur::VertexSubset;
use cct_sim::{machine_seed, par_map, Clique, CostCategory, DeferredPowers, MatMulEngine};
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

/// Error surfaced by the phase machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseError {
    /// A conditional distribution had no support — inconsistent power
    /// table (can only happen with extreme fixed-point truncation).
    DegenerateDistribution,
    /// The materialized partial walk exceeded the configured cap (the
    /// caller falls back to leader-local simulation).
    GridCapExceeded,
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseError::DegenerateDistribution => {
                write!(
                    f,
                    "midpoint distribution lost all support (precision too low)"
                )
            }
            PhaseError::GridCapExceeded => write!(f, "partial walk exceeded the grid cap"),
        }
    }
}

impl std::error::Error for PhaseError {}

/// What a phase walk produced.
#[derive(Debug, Clone)]
pub(crate) struct PhaseWalkResult {
    /// `(v, prev)` for each newly visited vertex, chronological, global
    /// ids. `prev` is the walk vertex immediately before `v`'s first
    /// visit (Algorithm 4's `W[i−1]`).
    pub first_visits: Vec<(usize, usize)>,
    /// Final vertex of the phase walk.
    pub last: usize,
    /// Steps taken.
    pub tau: u64,
    /// Distinct vertices in the phase walk.
    pub distinct: usize,
    /// Whether the `ρ` budget was met.
    pub reached: bool,
    /// Las Vegas extensions used.
    pub extensions: u32,
    /// Final target length after extensions.
    pub ell_final: u64,
    /// Words a verbatim `Π` shipment would have cost the leader (E12).
    pub pi_words: u64,
    /// Words actually received for placement.
    pub placement_words: u64,
    /// Which machinery generated the walk.
    pub method: PhaseMethod,
}

impl PhaseWalkResult {
    fn from_walk(
        walk: &[usize],
        rho: usize,
        extensions: u32,
        ell_final: u64,
        pi_words: u64,
        placement_words: u64,
        method: PhaseMethod,
    ) -> Self {
        let mut seen = HashSet::new();
        let mut first_visits = Vec::new();
        seen.insert(walk[0]);
        for w in walk.windows(2) {
            if seen.insert(w[1]) {
                first_visits.push((w[1], w[0]));
            }
        }
        PhaseWalkResult {
            first_visits,
            last: *walk.last().expect("non-empty walk"),
            tau: (walk.len() - 1) as u64,
            distinct: seen.len(),
            reached: seen.len() >= rho,
            extensions,
            ell_final,
            pi_words,
            placement_words,
            method,
        }
    }
}

/// The phase's power table: a borrowed *lazy* base (the prepared
/// phase-1 cache or this phase's freshly built [`DeferredPowers`] —
/// never cloned) plus the transient levels Las Vegas extensions append
/// per walk. Splitting the two keeps the prepared path allocation-free
/// for the common no-extension draw.
///
/// The base is a [`DeferredPowers`] table: its distributed-construction
/// cost was charged in full when it was built (the charge-up-front
/// contract), and reading `level(k)` here materializes the level's
/// *numeric* content on demand, memoized. A phase that never touches
/// the high levels (small `τ`, early truncation, or the out-of-core
/// route skipping the table entirely) therefore never pays their
/// `Θ(n²)`-or-`Θ(nnz)` storage — while the ledger stays bit-identical
/// to an eager build.
pub(crate) struct PowerTable<'a> {
    base: &'a DeferredPowers,
    extra: Vec<PMatrix>,
}

impl<'a> PowerTable<'a> {
    /// Wraps a borrowed base table.
    pub(crate) fn new(base: &'a DeferredPowers) -> Self {
        PowerTable {
            base,
            extra: Vec::new(),
        }
    }

    /// Level `k` holds `T^{2^k}`, materializing deferred base levels on
    /// first access.
    pub(crate) fn level(&self, k: usize) -> &PMatrix {
        if k < self.base.len() {
            self.base.level(k)
        } else {
            &self.extra[k - self.base.len()]
        }
    }

    /// Total levels (base + extensions).
    pub(crate) fn len(&self) -> usize {
        self.base.len() + self.extra.len()
    }

    /// The highest level.
    pub(crate) fn last(&self) -> &PMatrix {
        self.level(self.len() - 1)
    }

    /// Appends an extension level.
    pub(crate) fn push(&mut self, m: PMatrix) {
        self.extra.push(m);
    }
}

/// Leader-local walk generation after collecting the `|S| × |S|`
/// transition matrix — used when `|S| ≤ ρ` (final phases; the matrix fits
/// in the same `O(1)`-round budget as the paper's submatrix collection)
/// and as the fallback for degenerate bipartite phase graphs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn direct_local_phase<R: Rng + ?Sized>(
    clique: &mut Clique,
    t0: &PMatrix,
    s: &VertexSubset,
    start: usize,
    rho: usize,
    ell: u64,
    variant: Variant,
    rng: &mut R,
) -> Result<PhaseWalkResult, PhaseError> {
    let n = clique.n();
    // Leader collects the S-block of the transition matrix.
    let words = (s.len() * s.len()) as u64;
    clique
        .ledger_mut()
        .charge(CostCategory::Gather, Clique::rounds_for_load(n, words));
    clique.ledger_mut().add_words(CostCategory::Gather, words);

    let mut walk = vec![start];
    let mut seen = HashSet::new();
    seen.insert(start);
    let mut cur = start;
    let mut extensions = 0u32;
    let mut budget = ell;
    while seen.len() < rho {
        if walk.len() as u64 > budget {
            match variant {
                Variant::MonteCarlo => break,
                Variant::LasVegas => {
                    budget = budget.saturating_mul(2);
                    extensions += 1;
                }
            }
        }
        let next = t0
            .sample_row(rng, cur)
            .ok_or(PhaseError::DegenerateDistribution)?;
        walk.push(next);
        seen.insert(next);
        cur = next;
    }
    Ok(PhaseWalkResult::from_walk(
        &walk,
        rho,
        extensions,
        budget,
        0,
        words,
        PhaseMethod::DirectLocal,
    ))
}

/// The out-of-core phase route: the walk runs step by step on `G`
/// itself (the original transition matrix `P`, never a Schur
/// complement), skipping over globally visited vertices' budgets and
/// recording each unvisited vertex's actual entry edge directly — the
/// Aldous–Broder rule applied verbatim. Nothing `Θ(n²)` (or even
/// `Θ(n)`) is allocated per phase: state is the walk head, the phase's
/// new-vertex set, and the recorded edges.
///
/// Cost model: the walk token moves one edge per round (charged under
/// [`CostCategory::Routing`]) — this route trades the paper's sublinear
/// round bound for a memory footprint independent of `ℓ`, which is the
/// point of the out-of-core regime. Monte Carlo failure semantics are
/// unchanged: exhausting `ell` (or the safety `step_cap`) without
/// meeting `rho` reports `reached = false` and the caller emits the
/// flagged arbitrary tree. Las Vegas keeps doubling its budget and
/// walks until the budget is met (no table to extend — extensions are
/// free of matrix work here).
#[allow(clippy::too_many_arguments)]
pub(crate) fn streamed_local_phase<R: Rng + ?Sized>(
    clique: &mut Clique,
    p: &PMatrix,
    visited: &[bool],
    start: usize,
    rho: usize,
    ell: u64,
    variant: Variant,
    step_cap: u64,
    rng: &mut R,
) -> Result<PhaseWalkResult, PhaseError> {
    let mut first_visits: Vec<(usize, usize)> = Vec::new();
    let mut seen_new: HashSet<usize> = HashSet::new();
    let mut cur = start;
    let mut tau = 0u64;
    // `start` (= v_f) counts once toward the phase budget, exactly as
    // the matrix phases count the walk's first vertex; other globally
    // visited vertices the walk passes through do not count, mirroring
    // the Schur complement shortcutting them out of the phase graph.
    let mut distinct = 1usize;
    let mut budget = ell;
    let mut extensions = 0u32;
    let reached = loop {
        if distinct >= rho {
            break true;
        }
        if tau >= budget {
            match variant {
                Variant::MonteCarlo => break false,
                Variant::LasVegas => {
                    budget = budget.saturating_mul(2);
                    extensions += 1;
                }
            }
        }
        if variant == Variant::MonteCarlo && tau >= step_cap {
            break false; // safety net for astronomically large ℓ
        }
        let next = p
            .sample_row(rng, cur)
            .ok_or(PhaseError::DegenerateDistribution)?;
        tau += 1;
        if !visited[next] && seen_new.insert(next) {
            first_visits.push((next, cur));
            distinct += 1;
        }
        cur = next;
    };
    clique
        .ledger_mut()
        .charge(CostCategory::Routing, tau.max(1));
    clique.ledger_mut().add_words(CostCategory::Routing, tau);
    Ok(PhaseWalkResult {
        first_visits,
        last: cur,
        tau,
        distinct,
        reached,
        extensions,
        ell_final: budget,
        pi_words: 0,
        placement_words: 0,
        method: PhaseMethod::StreamedLocal,
    })
}

/// Returns `true` if the phase graph restricted to `S` is bipartite with
/// the start vertex's side smaller than `rho` — the degenerate case where
/// the even-granularity levels of the top-down filling can never reach
/// the distinct-vertex budget and the partial walk would balloon.
pub(crate) fn is_degenerate_bipartite(
    t0: &PMatrix,
    s: &VertexSubset,
    start: usize,
    rho: usize,
) -> bool {
    let n = t0.rows();
    // Undirected support graph: `u ~ v` iff either direction carries
    // mass above the threshold. One pass over the stored entries builds
    // the symmetric adjacency (sparse rows make this O(nnz), not O(n²));
    // the 2-coloring below is traversal-order independent, so this
    // computes exactly the answer of a dense double-sided scan.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in 0..n {
        t0.for_each_in_row(u, |v, val| {
            if val > 1e-15 {
                adj[u].push(v);
                if v != u {
                    adj[v].push(u);
                }
            }
        });
    }
    let mut color = vec![u8::MAX; n];
    color[start] = 0;
    let mut stack = vec![start];
    let mut side0 = 1usize;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !s.contains(v) {
                continue;
            }
            if color[v] == u8::MAX {
                color[v] = 1 - color[u];
                if color[v] == 0 {
                    side0 += 1;
                }
                stack.push(v);
            } else if color[v] == color[u] {
                return false; // odd cycle (or self-loop): not bipartite
            }
        }
    }
    side0 < rho
}

/// The full distributed top-down truncated walk (Outline 3, steps 4–5),
/// including Las Vegas extensions. `powers.level(k)` must hold the
/// padded `T^{2^k}` for `k = 0 ..= log₂ ell`; the table is extended
/// (through the engine, charging rounds) when Las Vegas doubles `ℓ`.
/// `workers` is the resolved worker-pool width for the midpoint fan-out
/// (the sampler resolves one width for every parallel section).
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_down_phase<R: Rng + ?Sized>(
    clique: &mut Clique,
    engine: &dyn MatMulEngine,
    powers: &mut PowerTable<'_>,
    s: &VertexSubset,
    start: usize,
    rho: usize,
    ell0: u64,
    config: &SamplerConfig,
    workers: usize,
    rng: &mut R,
) -> Result<PhaseWalkResult, PhaseError> {
    let mut preseen: HashSet<usize> = HashSet::new();
    let mut walk: Vec<usize> = Vec::new();
    let mut seg_start = start;
    let mut ell = ell0;
    let mut extensions = 0u32;
    let mut pi_words = 0u64;
    let mut placement_words = 0u64;
    loop {
        let seg = run_segment(
            clique,
            powers,
            s,
            seg_start,
            rho,
            ell,
            &preseen,
            config,
            workers,
            rng,
            &mut pi_words,
            &mut placement_words,
        )?;
        if walk.is_empty() {
            walk.extend_from_slice(&seg);
        } else {
            debug_assert_eq!(walk.last(), seg.first());
            walk.extend_from_slice(&seg[1..]);
        }
        preseen.extend(walk.iter().copied());
        if preseen.len() >= rho {
            break;
        }
        match config.variant {
            Variant::MonteCarlo => break,
            Variant::LasVegas => {
                // Appendix §5.1: double ℓ, sample a fresh endpoint from
                // the current end, continue the walk.
                seg_start = *walk.last().expect("non-empty");
                ell = ell.saturating_mul(2);
                extensions += 1;
                // Extend the power table by one squaring (charged).
                // Extensions land in the table's transient tail — the
                // borrowed base (e.g. the prepared phase-1 cache) is
                // never touched.
                let last = powers.last();
                let mut sq = engine.multiply_p(clique, last, last);
                sq.round_inplace(config.precision.rounding());
                powers.push(sq);
            }
        }
    }
    Ok(PhaseWalkResult::from_walk(
        &walk,
        rho,
        extensions,
        ell,
        pi_words,
        placement_words,
        PhaseMethod::TopDown,
    ))
}

/// Runs one target-length-`ell` segment of the top-down truncated walk,
/// returning the contiguous walk vertices (global ids).
#[allow(clippy::too_many_arguments)]
fn run_segment<R: Rng + ?Sized>(
    clique: &mut Clique,
    powers: &PowerTable<'_>,
    s: &VertexSubset,
    start: usize,
    rho: usize,
    ell: u64,
    preseen: &HashSet<usize>,
    config: &SamplerConfig,
    workers: usize,
    rng: &mut R,
    pi_words: &mut u64,
    placement_words: &mut u64,
) -> Result<Vec<usize>, PhaseError> {
    assert!(
        ell >= 2 && ell.is_power_of_two(),
        "ell must be a power of two ≥ 2"
    );
    let levels = ell.trailing_zeros() as usize;
    assert!(powers.len() > levels, "power table too short");
    let n = clique.n();

    // Step 4 of Outline 3: the leader samples W[ℓ] from T^ℓ[start, ·].
    let endpoint = powers
        .level(levels)
        .sample_row(rng, start)
        .ok_or(PhaseError::DegenerateDistribution)?;
    let mut grid: Vec<usize> = vec![start, endpoint];

    for level in 1..=levels {
        if grid.len() * 2 > config.max_grid_len {
            return Err(PhaseError::GridCapExceeded);
        }
        let th = powers.level(levels - level); // T^{δ/2}, δ = ell / 2^{level-1}

        // ── Algorithm 2: midpoint requests and generation. The leader
        // counts pair occurrences, designates machines M_{p,q} (at most
        // ρ² ≤ n distinct pairs since the partial walk has ≤ ρ distinct
        // vertices), and each M_{p,q} samples its sequence Π_{p,q} from
        // the distribution (T^{δ/2}[p,j]·T^{δ/2}[j,q])_j it acquires from
        // the row/column owners.
        let mut pair_ids: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut pair_of: Vec<usize> = Vec::with_capacity(grid.len() - 1);
        for w in grid.windows(2) {
            let key = (w[0], w[1]);
            let next_id = pair_ids.len();
            let id = *pair_ids.entry(key).or_insert(next_id);
            pair_of.push(id);
        }
        let pairs: Vec<(usize, usize)> = {
            let mut v: Vec<((usize, usize), usize)> =
                pair_ids.iter().map(|(&k, &id)| (k, id)).collect();
            v.sort_by_key(|&(_, id)| id);
            v.into_iter().map(|(k, _)| k).collect()
        };
        let num_pairs = pairs.len();
        // Leader scatters (p, q, c_{p,q}) requests: ≤ n words out of the
        // leader, one in per machine — 1 round by Lenzen routing.
        clique.ledger_mut().charge(
            CostCategory::Midpoints,
            Clique::rounds_for_load(n, 3 * num_pairs as u64),
        );
        clique
            .ledger_mut()
            .add_words(CostCategory::Midpoints, 3 * num_pairs as u64);
        // Each machine j sends T^{δ/2}[p,j]·T^{δ/2}[j,q] to M_{p,q} for
        // every pair: each machine sends ≤ num_pairs ≤ n words and each
        // M_{p,q} receives n — one round of Lenzen routing.
        clique.ledger_mut().charge(
            CostCategory::Midpoints,
            Clique::rounds_for_load(n, (num_pairs.max(n)) as u64),
        );
        clique
            .ledger_mut()
            .add_words(CostCategory::Midpoints, (num_pairs * n) as u64);

        // Generation: Π_{p,q} per pair. Each designated machine M_{p,q}
        // draws from its *own* stream, seeded hash(master, pair id) —
        // never dealt out of the caller's shared stream — so the pair
        // machines run concurrently on the worker pool and the sampled
        // sequences are identical at every worker count (the cct-sim
        // determinism contract). Draws across pairs stay independent.
        let mut pair_counts = vec![0usize; num_pairs];
        for &id in &pair_of {
            pair_counts[id] += 1;
        }
        let fan_seed: u64 = rng.gen();
        let sequences: Vec<Vec<usize>> = par_map(num_pairs, workers, |id| {
            let (p, q) = pairs[id];
            let weights: Vec<f64> = s
                .list()
                .iter()
                .map(|&j| th.get(p, j) * th.get(j, q))
                .collect();
            let total: f64 = weights.iter().sum();
            if total.is_nan() || total <= 0.0 {
                return Vec::new(); // degenerate — detected below
            }
            let mut machine_rng =
                rand::rngs::StdRng::seed_from_u64(machine_seed(fan_seed, id as u64));
            let mut seq = Vec::with_capacity(pair_counts[id]);
            for _ in 0..pair_counts[id] {
                let k = sample_index(&mut machine_rng, &weights).expect("positive total");
                seq.push(s.list()[k]);
            }
            seq
        });
        if sequences
            .iter()
            .zip(&pair_counts)
            .any(|(seq, &count)| seq.len() != count)
        {
            return Err(PhaseError::DegenerateDistribution);
        }
        // Chronological midpoint values ("true" walk W⁺).
        let mut occ_so_far = vec![0usize; num_pairs];
        let mids: Vec<usize> = pair_of
            .iter()
            .map(|&id| {
                let v = sequences[id][occ_so_far[id]];
                occ_so_far[id] += 1;
                v
            })
            .collect();
        *pi_words += mids.len() as u64;

        // ── Algorithm 3: distributed binary search for the truncation
        // point over the merged index space (even = old entries, odd =
        // new midpoints).
        let merged_len = grid.len() + mids.len();
        let merged = |k: usize| -> usize {
            if k % 2 == 0 {
                grid[k / 2]
            } else {
                mids[(k - 1) / 2]
            }
        };
        let check = |t: usize| -> bool {
            // Dist: distinct vertices of preseen ∪ merged[0..=t]; the
            // prefix is truncatable iff Dist < ρ, or Dist == ρ with the
            // final vertex being the ρ-th distinct vertex's first
            // occurrence.
            let mut seen: HashSet<usize> = preseen.clone();
            let mut last_count = 0usize;
            let last = merged(t);
            for k in 0..=t {
                let v = merged(k);
                seen.insert(v);
                if v == last {
                    last_count += 1;
                }
                if seen.len() > rho {
                    return false;
                }
            }
            seen.len() < rho || (!preseen.contains(&last) && last_count == 1)
        };
        // check(0) always holds (Dist ≤ |preseen| + 1 ≤ ρ since the phase
        // continues only while the budget is unmet).
        let mut lo = 0usize;
        let mut hi = merged_len - 1;
        let mut checks = 0u64;
        if check(hi) {
            lo = hi;
            checks += 1;
        } else {
            checks += 1;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if check(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
                checks += 1;
            }
        }
        let t_star = lo;
        // Each CheckTruncationPoint costs O(1) rounds: leader scatters
        // c_{p,q}(ℓ′) (1), pair machines send per-vertex counts (1),
        // vertex machines aggregate to the leader (1), plus the W⁺[ℓ′]
        // lookup (1).
        clique
            .ledger_mut()
            .charge(CostCategory::BinarySearch, 4 * checks);
        clique.ledger_mut().add_words(
            CostCategory::BinarySearch,
            checks * (num_pairs as u64 * (n as u64 + 1) + n as u64),
        );

        // ── Midpoint placement (§2.1.3 / §5.3 / oracle reference).
        let n_mids = t_star.div_ceil(2); // odd indices ≤ t_star
        let new_grid_len = t_star + 1;
        let placed: Vec<usize> = if n_mids == 0 {
            Vec::new()
        } else {
            place_midpoints(
                clique,
                th,
                &grid,
                &mids[..n_mids],
                &pair_of[..n_mids],
                &pairs,
                config,
                placement_words,
                rng,
            )?
        };
        let mut next_grid = Vec::with_capacity(new_grid_len);
        for k in 0..new_grid_len {
            if k % 2 == 0 {
                next_grid.push(grid[k / 2]);
            } else {
                next_grid.push(placed[(k - 1) / 2]);
            }
        }
        grid = next_grid;
    }
    Ok(grid)
}

/// Places the truncated prefix's midpoints according to the configured
/// strategy, returning the values for the odd merged indices in
/// chronological order. The chronologically final midpoint is always
/// placed exactly (Lemma 4's requirement).
#[allow(clippy::too_many_arguments)]
fn place_midpoints<R: Rng + ?Sized>(
    clique: &mut Clique,
    th: &PMatrix,
    grid: &[usize],
    mids: &[usize],
    pair_of: &[usize],
    pairs: &[(usize, usize)],
    config: &SamplerConfig,
    placement_words: &mut u64,
    rng: &mut R,
) -> Result<Vec<usize>, PhaseError> {
    let n_mids = mids.len();
    let n = clique.n();
    debug_assert!(n_mids >= 1);
    let final_value = mids[n_mids - 1];
    match config.placement {
        Placement::Oracle => {
            // Infinite-bandwidth reference: the leader receives every
            // Π_{p,q} verbatim (cost recorded, not affordable in the real
            // model).
            let words = n_mids as u64;
            *placement_words += words;
            clique
                .ledger_mut()
                .charge(CostCategory::Matching, Clique::rounds_for_load(n, words));
            clique.ledger_mut().add_words(CostCategory::Matching, words);
            Ok(mids.to_vec())
        }
        Placement::PerPairShuffle => {
            // Appendix §5.3: the leader receives each pair's own multiset
            // (the final midpoint separately) and shuffles within pairs.
            let rest = &mids[..n_mids - 1];
            let rest_pairs = &pair_of[..n_mids - 1];
            let num_groups = pairs.len();
            let mut group_slots: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
            for (&v, &g) in rest.iter().zip(rest_pairs) {
                group_slots[g].push(v);
            }
            let words: u64 = group_slots
                .iter()
                .map(|g| g.iter().collect::<HashSet<_>>().len() as u64)
                .sum::<u64>()
                + 1;
            *placement_words += words;
            clique
                .ledger_mut()
                .charge(CostCategory::Matching, Clique::rounds_for_load(n, words));
            clique.ledger_mut().add_words(CostCategory::Matching, words);
            let shuffled = sample_per_group_shuffle(group_slots, rng);
            Ok(reassemble(rest_pairs, shuffled, final_value))
        }
        Placement::Matching => {
            // §2.1.3: multiset + final midpoint to the leader; weighted
            // perfect matching between M∖{m_f} and the remaining
            // positions.
            let rest = &mids[..n_mids - 1];
            let rest_pairs = &pair_of[..n_mids - 1];
            if rest.is_empty() {
                *placement_words += 1;
                clique.ledger_mut().charge(CostCategory::Matching, 1);
                return Ok(vec![final_value]);
            }
            // Distinct values and multiplicities.
            let mut value_ids: BTreeMap<usize, usize> = BTreeMap::new();
            for &v in rest {
                let next = value_ids.len();
                value_ids.entry(v).or_insert(next);
            }
            let values: Vec<usize> = {
                let mut v: Vec<(usize, usize)> =
                    value_ids.iter().map(|(&k, &id)| (k, id)).collect();
                v.sort_by_key(|&(_, id)| id);
                v.into_iter().map(|(k, _)| k).collect()
            };
            let mut counts = vec![0usize; values.len()];
            for &v in rest {
                counts[value_ids[&v]] += 1;
            }
            // Groups in use (pairs with at least one non-final slot).
            let mut group_ids: BTreeMap<usize, usize> = BTreeMap::new();
            for &g in rest_pairs {
                let next = group_ids.len();
                group_ids.entry(g).or_insert(next);
            }
            let groups: Vec<usize> = {
                let mut v: Vec<(usize, usize)> =
                    group_ids.iter().map(|(&k, &id)| (k, id)).collect();
                v.sort_by_key(|&(_, id)| id);
                v.into_iter().map(|(k, _)| k).collect()
            };
            let mut group_sizes = vec![0usize; groups.len()];
            for &g in rest_pairs {
                group_sizes[group_ids[&g]] += 1;
            }
            let weights: Vec<Vec<f64>> = values
                .iter()
                .map(|&v| {
                    groups
                        .iter()
                        .map(|&g| {
                            let (p, q) = pairs[g];
                            th.get(p, v) * th.get(v, q)
                        })
                        .collect()
                })
                .collect();
            let inst = MatchingInstance::new(counts, group_sizes, weights)
                .expect("counts and slots agree by construction");
            // Bandwidth: the midpoint *multiset* (≤ 2ρ words — this is
            // the compression §2.1.3 buys over shipping Π verbatim),
            // plus the √n × √n submatrix of T^{δ/2} on the relevant
            // vertices (O(n) words → O(1) rounds; charged but not part
            // of the Π-compression comparison, experiment E12).
            let multiset_words = (values.len() * 2 + 1) as u64;
            let svert: HashSet<usize> = grid.iter().chain(rest.iter()).copied().collect();
            let submatrix_words = (svert.len() * svert.len()) as u64;
            *placement_words += multiset_words;
            let words = multiset_words + submatrix_words;
            clique.ledger_mut().charge(
                CostCategory::Matching,
                Clique::rounds_for_load(n, words) + 2,
            );
            clique.ledger_mut().add_words(CostCategory::Matching, words);
            // Sample the assignment: exact below the permanent limit,
            // Metropolis swap chain (warm-started from the true
            // arrangement) above it.
            let assignment = if inst.total_slots() <= MAX_EXACT_SLOTS {
                ExactPermanentSampler
                    .sample(&inst, rng)
                    .expect("true arrangement witnesses feasibility")
            } else {
                let mut hint_slots: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
                for (&v, &g) in rest.iter().zip(rest_pairs) {
                    hint_slots[group_ids[&g]].push(value_ids[&v]);
                }
                let hint = Assignment {
                    per_group: hint_slots,
                };
                SwapChainSampler {
                    steps_per_slot: config.swap_steps_per_slot,
                }
                .sample(&inst, Some(hint), rng)
                .expect("hinted start is feasible")
            };
            // Map value ids back to vertices and reassemble
            // chronologically.
            let shuffled = Assignment {
                per_group: assignment
                    .per_group
                    .into_iter()
                    .map(|slots| slots.into_iter().map(|id| values[id]).collect())
                    .collect(),
            };
            // Reassembly keys by *local* group ids.
            let local_pairs: Vec<usize> = rest_pairs.iter().map(|&g| group_ids[&g]).collect();
            Ok(reassemble(&local_pairs, shuffled, final_value))
        }
    }
}

/// Distributes per-group slot values back to chronological midpoint
/// positions (group slots are consumed in chronological order) and
/// appends the exactly-placed final midpoint.
fn reassemble(rest_groups: &[usize], assignment: Assignment, final_value: usize) -> Vec<usize> {
    let mut cursors = vec![0usize; assignment.per_group.len()];
    let mut out = Vec::with_capacity(rest_groups.len() + 1);
    for &g in rest_groups {
        out.push(assignment.per_group[g][cursors[g]]);
        cursors[g] += 1;
    }
    out.push(final_value);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use cct_sim::UnitCostEngine;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn padded_powers(t0: &cct_linalg::Matrix, levels: usize) -> DeferredPowers {
        DeferredPowers::from_materialized(
            cct_linalg::powers_of_two(t0, levels + 1, 1)
                .into_iter()
                .map(PMatrix::Dense)
                .collect(),
            1,
            cct_linalg::Rounding::Exact,
        )
    }

    #[test]
    fn top_down_phase_reaches_budget_on_clique() {
        let g = generators::complete(8);
        let s = VertexSubset::full(8);
        let t0 = g.transition_matrix();
        let ell = 256u64;
        let base = padded_powers(&t0, ell.trailing_zeros() as usize);
        let mut powers = PowerTable::new(&base);
        let mut clique = Clique::new(8);
        let config = SamplerConfig::new();
        let mut r = rng(1);
        let res = top_down_phase(
            &mut clique,
            &UnitCostEngine::default(),
            &mut powers,
            &s,
            0,
            4,
            ell,
            &config,
            2,
            &mut r,
        )
        .unwrap();
        assert!(res.reached);
        assert_eq!(res.distinct, 4);
        assert_eq!(res.first_visits.len(), 3);
        assert_eq!(res.method, PhaseMethod::TopDown);
        assert!(res.tau >= 3);
        // Rounds were charged in the expected categories.
        assert!(clique.ledger().rounds(CostCategory::BinarySearch) > 0);
        assert!(clique.ledger().rounds(CostCategory::Midpoints) > 0);
    }

    #[test]
    fn direct_local_phase_reaches_budget() {
        let g = generators::complete(6);
        let s = VertexSubset::full(6);
        let t0 = PMatrix::Dense(g.transition_matrix());
        let mut clique = Clique::new(6);
        let mut r = rng(2);
        let res = direct_local_phase(
            &mut clique,
            &t0,
            &s,
            0,
            6,
            1 << 20,
            Variant::LasVegas,
            &mut r,
        )
        .unwrap();
        assert!(res.reached);
        assert_eq!(res.distinct, 6);
        assert_eq!(res.first_visits.len(), 5);
        assert_eq!(res.method, PhaseMethod::DirectLocal);
        assert!(clique.ledger().rounds(CostCategory::Gather) > 0);
    }

    #[test]
    fn monte_carlo_failure_flagged_when_ell_too_small() {
        // A 2-step budget cannot visit 8 distinct vertices of a path.
        let g = generators::path(8);
        let s = VertexSubset::full(8);
        let t0 = PMatrix::Dense(g.transition_matrix());
        let mut clique = Clique::new(8);
        let mut r = rng(3);
        let res =
            direct_local_phase(&mut clique, &t0, &s, 0, 8, 2, Variant::MonteCarlo, &mut r).unwrap();
        assert!(!res.reached);
    }

    #[test]
    fn streamed_phase_records_real_entry_edges() {
        let g = generators::complete(8);
        let p = g.transition_pmatrix(cct_linalg::Repr::Sparse);
        let mut visited = vec![false; 8];
        visited[0] = true;
        let mut clique = Clique::new(8);
        let mut r = rng(21);
        let res = streamed_local_phase(
            &mut clique,
            &p,
            &visited,
            0,
            4,
            1 << 16,
            Variant::MonteCarlo,
            u64::MAX,
            &mut r,
        )
        .unwrap();
        assert!(res.reached);
        assert_eq!(res.method, PhaseMethod::StreamedLocal);
        assert_eq!(res.first_visits.len(), 3);
        for &(v, prev) in &res.first_visits {
            assert!(!visited[v]);
            assert!(g.has_edge(prev, v), "({prev},{v}) not a G-edge");
        }
        // Each walk step is one token move: one round, one word.
        assert_eq!(clique.ledger().rounds(CostCategory::Routing), res.tau);
        assert_eq!(clique.ledger().words(CostCategory::Routing), res.tau);
    }

    #[test]
    fn streamed_phase_skips_globally_visited_vertices() {
        // Mark half the cycle visited: only unvisited vertices may appear
        // in first_visits, and the phase budget counts start + new only.
        let g = generators::cycle(8);
        let p = g.transition_pmatrix(cct_linalg::Repr::Sparse);
        let mut visited = vec![false; 8];
        visited[..4].fill(true);
        let mut clique = Clique::new(8);
        let mut r = rng(22);
        let res = streamed_local_phase(
            &mut clique,
            &p,
            &visited,
            0,
            3,
            1 << 20,
            Variant::LasVegas,
            u64::MAX,
            &mut r,
        )
        .unwrap();
        assert!(res.reached);
        assert_eq!(res.distinct, 3);
        assert_eq!(res.first_visits.len(), 2);
        for &(v, _) in &res.first_visits {
            assert!(!visited[v], "{v} was already visited");
        }
    }

    #[test]
    fn streamed_phase_monte_carlo_budget_exhaustion() {
        // 2 steps cannot reach 8 distinct vertices on a path.
        let g = generators::path(8);
        let p = g.transition_pmatrix(cct_linalg::Repr::Sparse);
        let visited = {
            let mut v = vec![false; 8];
            v[0] = true;
            v
        };
        let mut clique = Clique::new(8);
        let mut r = rng(23);
        let res = streamed_local_phase(
            &mut clique,
            &p,
            &visited,
            0,
            8,
            2,
            Variant::MonteCarlo,
            u64::MAX,
            &mut r,
        )
        .unwrap();
        assert!(!res.reached);
        assert_eq!(res.tau, 2);
        // The step cap is a second failure trigger for huge ℓ.
        let mut clique = Clique::new(8);
        let res = streamed_local_phase(
            &mut clique,
            &p,
            &visited,
            0,
            8,
            u64::MAX,
            Variant::MonteCarlo,
            4,
            &mut r,
        )
        .unwrap();
        assert!(!res.reached);
        assert_eq!(res.tau, 4);
    }

    #[test]
    fn degenerate_bipartite_detection() {
        // Path graph: bipartite. From an end vertex, the start side of P4
        // is {0, 2}: degenerate iff rho > 2. Both representations must
        // answer identically.
        let g = generators::path(4);
        let s = VertexSubset::full(4);
        for repr in [cct_linalg::Repr::Dense, cct_linalg::Repr::Sparse] {
            let t0 = g.transition_pmatrix(repr);
            assert!(!is_degenerate_bipartite(&t0, &s, 0, 2), "{repr:?}");
            assert!(is_degenerate_bipartite(&t0, &s, 0, 3), "{repr:?}");
        }
        // Triangle: not bipartite, never degenerate.
        let g = generators::complete(3);
        let t0 = PMatrix::Dense(g.transition_matrix());
        let s = VertexSubset::full(3);
        assert!(!is_degenerate_bipartite(&t0, &s, 0, 3));
    }

    #[test]
    fn two_vertex_schur_is_degenerate() {
        // |S| = 2: a single edge, bipartite with side(start) = 1 < ρ = 2.
        let t0 = PMatrix::Dense(cct_linalg::Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ]));
        let s = VertexSubset::full(2);
        assert!(is_degenerate_bipartite(&t0, &s, 0, 2));
    }

    #[test]
    fn top_down_first_visits_are_walk_consistent() {
        let g = generators::petersen();
        let s = VertexSubset::full(10);
        let t0 = g.transition_matrix();
        let ell = 1024u64;
        let base = padded_powers(&t0, ell.trailing_zeros() as usize);
        let config = SamplerConfig::new();
        let mut r = rng(4);
        for _ in 0..10 {
            let mut powers = PowerTable::new(&base);
            let mut clique = Clique::new(10);
            let res = top_down_phase(
                &mut clique,
                &UnitCostEngine::default(),
                &mut powers,
                &s,
                0,
                3,
                ell,
                &config,
                2,
                &mut r,
            )
            .unwrap();
            assert!(res.reached);
            // Every (v, prev) must be an edge of the phase graph (S = V →
            // the walk is on G itself).
            for &(v, prev) in &res.first_visits {
                assert!(g.has_edge(prev, v), "({prev}, {v}) not an edge");
            }
        }
    }

    #[test]
    fn las_vegas_extends_until_budget() {
        // ℓ = 2 is far too short to see 5 distinct vertices of a path;
        // Las Vegas must extend.
        let g = generators::path(6);
        let s = VertexSubset::full(6);
        let t0 = g.transition_matrix();
        let base = padded_powers(&t0, 1);
        let mut powers = PowerTable::new(&base);
        let config = SamplerConfig {
            variant: Variant::LasVegas,
            ..SamplerConfig::new()
        };
        let mut clique = Clique::new(6);
        let mut r = rng(5);
        let res = top_down_phase(
            &mut clique,
            &UnitCostEngine::default(),
            &mut powers,
            &s,
            0,
            5, // rho
            2, // ell — hopelessly short; extensions required
            &config,
            2,
            &mut r,
        )
        .unwrap();
        assert!(res.reached);
        assert!(res.extensions >= 1, "expected Las Vegas extensions");
        assert!(res.ell_final > 2);
        assert_eq!(res.distinct, 5);
        // The power table was extended once per doubling.
        assert_eq!(powers.len(), 2 + res.extensions as usize);
    }
}
