//! The `Graph`-typed front end of `cct-sim`'s Borůvka MST protocol: the
//! weighted deterministic workload next to the randomized samplers.
//!
//! # Ledger accounting
//!
//! Each Borůvka phase charges exactly two [`cct_sim::CostCategory`]
//! buckets of the engine's own [`RoundLedger`]:
//!
//! * `Gather` — the candidate collection: every machine sends its
//!   vertex's minimum outgoing edge to the leader as a 3-word
//!   `(w, u, v)` triple, `⌈3n/n⌉ = 3` rounds.
//! * `Broadcast` — the merge scatter (leader → each machine, 1 word, 1
//!   round) and the label relay (each machine re-broadcasts its label
//!   to all `n`, 1 round) that replicate the new component labels.
//!
//! So a run costs `≈ 5` rounds per phase and `≤ ⌈log₂ n⌉ + 1` phases —
//! `O(log n)` rounds total, all measured from real routed traffic, never
//! asserted. The protocol is deterministic (no RNG), so tree, phase
//! count, *and* ledger are identical at every worker count.

use crate::SampleTreeError;
use cct_graph::{Graph, SpanningTree};
use cct_sim::{boruvka_mst, Clique, MstError, RoundLedger, Workers};

/// The result of [`MstEngine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct MstReport {
    /// The minimum spanning tree (unique under the `(w, u, v)` total
    /// order, so ties in the weights are harmless).
    pub tree: SpanningTree,
    /// The rounds the protocol charged, by category.
    pub rounds: RoundLedger,
    /// Number of Borůvka phases (`≤ ⌈log₂ n⌉`).
    pub phases: usize,
    /// Sum of the tree's edge weights.
    pub total_weight: f64,
}

/// The Congested Clique minimum-spanning-tree engine: Borůvka-style
/// merging driven by [`cct_sim::ParallelClique`].
///
/// Unlike the samplers this engine takes no RNG and no
/// [`crate::SamplerConfig`]: its output is a single deterministic tree,
/// reproducible bit-for-bit at any worker count.
///
/// # Examples
///
/// ```
/// use cct_core::MstEngine;
/// use cct_graph::Graph;
///
/// // A triangle with one heavy edge: the MST drops it.
/// let g = Graph::from_weighted_edges(
///     3,
///     &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)],
/// )
/// .unwrap();
/// let report = MstEngine::new().run(&g).unwrap();
/// assert_eq!(report.tree.edges(), &[(0, 1), (1, 2)]);
/// assert_eq!(report.total_weight, 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MstEngine {
    workers: Workers,
}

impl MstEngine {
    /// An engine with the default (sequential) worker policy.
    pub fn new() -> Self {
        MstEngine::default()
    }

    /// Sets the worker-pool policy for the parallel round engine. The
    /// result never depends on it — only wall-clock time does.
    pub fn workers(mut self, workers: Workers) -> Self {
        self.workers = workers;
        self
    }

    /// Computes the minimum spanning tree of `g` on a simulated
    /// `g.n()`-machine clique.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::EmptyGraph`] for a vertex-free graph,
    /// [`SampleTreeError::Disconnected`] when no spanning tree exists.
    pub fn run(&self, g: &Graph) -> Result<MstReport, SampleTreeError> {
        let n = g.n();
        if n == 0 {
            return Err(SampleTreeError::EmptyGraph);
        }
        let adjacency: Vec<Vec<(usize, f64)>> = (0..n).map(|u| g.neighbors(u).to_vec()).collect();
        let mut clique = Clique::new(n);
        let workers = self.workers.resolve(n);
        let outcome = boruvka_mst(&mut clique, &adjacency, workers).map_err(|e| match e {
            MstError::Disconnected => SampleTreeError::Disconnected,
            MstError::WrongMachineCount { .. } => {
                unreachable!("adjacency is built from the same graph")
            }
        })?;
        let total_weight = outcome.edges.iter().map(|&(_, _, w)| w).sum();
        let tree = SpanningTree::new_in(g, outcome.edges.iter().map(|&(u, v, _)| (u, v)).collect())
            .expect("the protocol returns a spanning tree of g");
        Ok(MstReport {
            tree,
            rounds: clique.take_ledger(),
            phases: outcome.phases,
            total_weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use cct_walks::kruskal_mst;

    #[test]
    fn matches_kruskal_on_fixed_graphs() {
        let weighted =
            generators::with_deterministic_integer_weights(&generators::grid(3, 4), 8, 99).unwrap();
        for g in [generators::petersen(), generators::complete(7), weighted] {
            let report = MstEngine::new().run(&g).unwrap();
            let reference = kruskal_mst(&g).unwrap();
            assert_eq!(report.tree, reference, "n = {}", g.n());
            assert_eq!(
                report.total_weight,
                reference.weight_sum_in(&g),
                "n = {}",
                g.n()
            );
        }
    }

    #[test]
    fn worker_policy_does_not_change_the_report() {
        let g =
            generators::with_deterministic_integer_weights(&generators::wheel(9), 8, 5).unwrap();
        let base = MstEngine::new().run(&g).unwrap();
        for workers in [Workers::Fixed(2), Workers::Fixed(4), Workers::Auto] {
            let report = MstEngine::new().workers(workers).run(&g).unwrap();
            assert_eq!(report, base, "{workers:?}");
        }
    }

    #[test]
    fn errors_are_typed() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            MstEngine::new().run(&g),
            Err(SampleTreeError::Disconnected)
        ));
    }
}
