//! Round and traffic reports produced by the sampler.

use cct_graph::SpanningTree;
use cct_sim::RoundLedger;
use std::fmt;

/// How a phase's walk was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseMethod {
    /// The full distributed top-down machinery (Outline 3).
    TopDown,
    /// Leader-local simulation after collecting the `|S| × |S|` Schur
    /// transition matrix — used for final phases with `|S| ≤ ρ` (where
    /// the matrix fits in `O(1)` rounds of bandwidth, matching the
    /// paper's submatrix-collection step) and as the safety fallback for
    /// degenerate bipartite phase graphs.
    DirectLocal,
    /// The input was recognized as its own unique spanning tree
    /// (`m = n − 1` on a connected graph) by the out-of-core route —
    /// no walk, no matrices, `O(m)` work.
    UniqueTree,
    /// Streaming step-by-step walk on `G` itself (the out-of-core
    /// route for non-tree graphs): first-visit edges are recorded
    /// directly from the walk, bypassing the Schur/power-table
    /// machinery and its `Θ(n²)` allocations at the price of the
    /// paper's sublinear round bound.
    StreamedLocal,
}

impl fmt::Display for PhaseMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseMethod::TopDown => write!(f, "top-down"),
            PhaseMethod::DirectLocal => write!(f, "direct-local"),
            PhaseMethod::UniqueTree => write!(f, "unique-tree"),
            PhaseMethod::StreamedLocal => write!(f, "streamed-local"),
        }
    }
}

/// Per-phase measurements.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// `|S|` at the start of the phase.
    pub s_size: usize,
    /// Distinct-vertex budget of the phase.
    pub rho: usize,
    /// How the walk was generated.
    pub method: PhaseMethod,
    /// Target walk length `ℓ` used (after Las Vegas doubling, the final
    /// value).
    pub ell: u64,
    /// Realized stopping time `τ` (steps in the phase walk).
    pub tau: u64,
    /// Newly visited vertices in this phase.
    pub new_vertices: usize,
    /// Las Vegas walk extensions performed.
    pub extensions: u32,
    /// Rounds charged during this phase, by category.
    pub rounds: RoundLedger,
    /// Words the leader *would* have received shipping every midpoint
    /// sequence `Π_{p,q}` verbatim (the bandwidth the multiset
    /// compression avoids — experiment E12).
    pub pi_words: u64,
    /// Words the leader actually received for midpoint placement
    /// (multisets / per-pair multisets).
    pub placement_words: u64,
}

/// The result of one full sampling run.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// The sampled spanning tree.
    pub tree: SpanningTree,
    /// Total rounds, merged across phases and setup.
    pub rounds: RoundLedger,
    /// Per-phase details.
    pub phases: Vec<PhaseReport>,
    /// `true` if the Monte Carlo variant failed to meet a phase budget
    /// and an arbitrary tree was emitted (probability ≤ ε).
    pub monte_carlo_failure: bool,
}

impl SampleReport {
    /// Total rounds across all categories.
    pub fn total_rounds(&self) -> u64 {
        self.rounds.total_rounds()
    }

    /// Number of phases executed.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Sum of realized walk lengths.
    pub fn total_walk_steps(&self) -> u64 {
        self.phases.iter().map(|p| p.tau).sum()
    }
}

impl fmt::Display for SampleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SampleReport: n = {}, {} phases, {} rounds{}",
            self.tree.n(),
            self.phases.len(),
            self.rounds.total_rounds(),
            if self.monte_carlo_failure {
                " (MONTE CARLO FAILURE)"
            } else {
                ""
            }
        )?;
        writeln!(f, "  breakdown: {}", self.rounds)?;
        for (i, p) in self.phases.iter().enumerate() {
            writeln!(
                f,
                "  phase {i}: |S| = {}, ρ = {}, {} , τ = {}, new = {}, rounds = {}",
                p.s_size,
                p.rho,
                p.method,
                p.tau,
                p.new_vertices,
                p.rounds.total_rounds()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_sim::CostCategory;

    #[test]
    fn report_aggregates() {
        let tree = SpanningTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let mut rounds = RoundLedger::new();
        rounds.charge(CostCategory::MatMul, 10);
        let phase = PhaseReport {
            s_size: 3,
            rho: 2,
            method: PhaseMethod::TopDown,
            ell: 64,
            tau: 5,
            new_vertices: 2,
            extensions: 0,
            rounds: rounds.clone(),
            pi_words: 100,
            placement_words: 10,
        };
        let report = SampleReport {
            tree,
            rounds,
            phases: vec![phase.clone(), phase],
            monte_carlo_failure: false,
        };
        assert_eq!(report.total_rounds(), 10);
        assert_eq!(report.num_phases(), 2);
        assert_eq!(report.total_walk_steps(), 10);
        let s = format!("{report}");
        assert!(s.contains("phase 0"));
        assert!(s.contains("top-down"));
    }
}
