//! The phase orchestrator: Theorem 1's `Õ(n^{1/2+α})`-round sampler and
//! the Appendix's exact `Õ(n^{2/3+α})` variant.
//!
//! Each phase (§2.2): build `S = {unvisited} ∪ {v_f}`, compute the
//! shortcut matrix `Q` and the Schur transition (Corollaries 2–3,
//! charged at the paper's iterated-squaring multiplication counts), run
//! the top-down truncated walk on `Schur(G, S)` (Outline 3), and sample
//! every newly visited vertex's first-visit edge in `G` via Algorithm 4.
//! The union of first-visit edges across phases is the Aldous–Broder
//! spanning tree.

use crate::config::{
    EngineChoice, Precision, SamplerConfig, SchurComputation, Variant, WalkLength,
};
use crate::phase::{
    direct_local_phase, is_degenerate_bipartite, top_down_phase, PhaseError, PhaseWalkResult,
    PowerTable,
};
use crate::report::{PhaseReport, SampleReport};
use cct_graph::{Graph, SpanningTree};
use cct_linalg::{CsrMatrix, Matrix, PMatrix, Repr};
use cct_schur::{
    sample_first_visit_edge_with, schur_transition_from_shortcut_p, shortcut_by_squaring_pmatrix,
    shortcut_exact, VertexSubset,
};
use cct_sim::{
    distributed_powers_p, Clique, CostCategory, FastOracleEngine, MatMulEngine, RoundLedger,
    SemiringEngine, UnitCostEngine,
};
use rand::Rng;
use std::borrow::Cow;

/// Error returned by [`CliqueTreeSampler::sample`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleTreeError {
    /// The graph has no vertices.
    EmptyGraph,
    /// The graph is disconnected — no spanning tree exists.
    Disconnected,
    /// A phase failed irrecoverably (degenerate precision).
    Phase(PhaseError),
}

impl std::fmt::Display for SampleTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleTreeError::EmptyGraph => write!(f, "graph has no vertices"),
            SampleTreeError::Disconnected => write!(f, "graph is disconnected"),
            SampleTreeError::Phase(e) => write!(f, "phase failure: {e}"),
        }
    }
}

impl std::error::Error for SampleTreeError {}

impl From<PhaseError> for SampleTreeError {
    fn from(e: PhaseError) -> Self {
        SampleTreeError::Phase(e)
    }
}

/// The Congested Clique spanning-tree sampler (the paper's primary
/// contribution).
///
/// # Examples
///
/// ```
/// use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
/// use cct_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::complete(8);
/// let sampler = CliqueTreeSampler::new(
///     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let report = sampler.sample(&g, &mut rng)?;
/// assert_eq!(report.tree.edges().len(), 7);
/// assert!(!report.monte_carlo_failure);
/// # Ok::<(), cct_core::SampleTreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CliqueTreeSampler {
    config: SamplerConfig,
}

impl CliqueTreeSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SamplerConfig) -> Self {
        CliqueTreeSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Samples a spanning tree of `g`, returning the tree together with
    /// the full round/traffic report.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::Disconnected`] / [`SampleTreeError::EmptyGraph`]
    /// for invalid inputs; [`SampleTreeError::Phase`] if fixed-point
    /// precision was configured too low to keep the distributions alive.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
    ) -> Result<SampleReport, SampleTreeError> {
        sample_with(&self.config, g, None, rng)
    }

    /// Preprocesses `g` for repeated sampling: validates the input once,
    /// builds the transition matrix, and precomputes the phase-1 power
    /// table (phase 1 always walks on `G` itself, since
    /// `Schur(G, V) = G`). The returned [`PreparedSampler`] serves
    /// `sample()` calls without redoing any graph-global work, with trees
    /// and ledgers bit-identical to this sampler's.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::EmptyGraph`] / [`SampleTreeError::Disconnected`]
    /// for invalid inputs.
    pub fn prepare(&self, g: &Graph) -> Result<PreparedSampler, SampleTreeError> {
        PreparedSampler::new(self.config.clone(), g)
    }
}

/// Resolved per-run pieces shared by the cold and prepared paths.
struct ResolvedConfig {
    workers: usize,
    engine: Box<dyn MatMulEngine>,
    fp: Option<cct_linalg::FixedPoint>,
    rho: usize,
    ell0: u64,
    /// The matrix representation the backend knob resolved to for this
    /// input graph (memory/speed only — results are backend-invariant).
    repr: Repr,
}

fn resolve_config(config: &SamplerConfig, g: &Graph) -> ResolvedConfig {
    let n = g.n();
    // `workers` drives every parallel section the round engine owns
    // (the phase fan-out); the matmul engines additionally honor the
    // legacy `threads` knob for their local kernels, which have
    // their own small-size sequential fallback. Results are
    // identical at any width (the cct-sim determinism contract) —
    // only wall-clock changes.
    let workers = config.workers.resolve(n);
    let threads = workers.max(config.threads);
    let engine: Box<dyn MatMulEngine> = match config.engine {
        EngineChoice::FastOracle { alpha } => {
            let wpe = match config.precision {
                Precision::Fixed(fp) => fp.words_per_entry(n),
                Precision::Float64 => 1,
            };
            Box::new(FastOracleEngine::new(alpha, wpe, threads))
        }
        EngineChoice::Semiring => Box::new(SemiringEngine::new(threads)),
        EngineChoice::UnitCost => Box::new(UnitCostEngine { threads }),
    };
    let fp = match config.precision {
        Precision::Fixed(fp) => Some(fp),
        Precision::Float64 => None,
    };
    let rho = config.resolve_rho(n);
    // Footnote 1: with integer weights ≤ W the cover time is
    // O(W·|V|·|E|), so the paper's ℓ budget scales by W (this is the
    // very reason the weights must be polynomially bounded).
    let ell0 = match config.walk_length {
        WalkLength::Paper { .. } => {
            let w = g.max_weight().max(1.0).round() as u64;
            (config.walk_length.resolve(n).saturating_mul(w)).next_power_of_two()
        }
        _ => config.walk_length.resolve(n),
    };
    ResolvedConfig {
        workers,
        engine,
        fp,
        rho,
        ell0,
        repr: config.backend.resolve(g),
    }
}

/// The phase-1 work a [`PreparedSampler`] hoists out of the per-sample
/// loop: the doubling table of `P` (phase 1 walks on `G` itself) and the
/// exact ledger charges its distributed construction incurred, replayed
/// verbatim on every sample so round counts stay bit-identical to the
/// cold path.
#[derive(Debug)]
struct Phase1Cache {
    /// The doubling table as [`PMatrix`] levels: on a sparse backend
    /// the early levels stay CSR — several orders of magnitude smaller
    /// than their dense shape — and only the fill-in-promoted tail pays
    /// dense storage. This is where the sparse backend's memory win
    /// lands.
    powers: Vec<PMatrix>,
    ledger: RoundLedger,
}

/// The shortcut matrix `Q` of a phase. Phase 1 has `S = V`, where a
/// walk's pre-`S` vertex is simply its previous vertex: `Q` is the
/// identity, represented symbolically instead of as a dense `n × n`
/// allocation that is read `O(deg)` times. Later phases hold `Q` in
/// either representation; Algorithm 4 reads it entry-wise (CSR rows are
/// never densified for it).
enum PhaseShortcut {
    Identity,
    Mat(PMatrix),
}

impl PhaseShortcut {
    fn weight(&self, u0: usize, u: usize) -> f64 {
        match self {
            PhaseShortcut::Identity => f64::from(u0 == u),
            PhaseShortcut::Mat(q) => q.get(u0, u),
        }
    }
}

/// What a [`PreparedSampler`] carries into the shared loop: the graph's
/// transition matrix and (when phase 1 takes the distributed top-down
/// route) the cached phase-1 doubling table.
#[derive(Debug)]
struct PreparedData {
    p: PMatrix,
    phase1: Option<Phase1Cache>,
}

/// The shared sampling loop. `prepared` carries a [`PreparedSampler`]'s
/// cached graph-global work (with its ledger charges); `None` is the
/// cold path that recomputes everything per call.
fn sample_with<R: Rng + ?Sized>(
    config: &SamplerConfig,
    g: &Graph,
    prepared: Option<&PreparedData>,
    rng: &mut R,
) -> Result<SampleReport, SampleTreeError> {
    let n = g.n();
    if n == 0 {
        return Err(SampleTreeError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(SampleTreeError::Disconnected);
    }
    if n == 1 {
        return Ok(SampleReport {
            tree: SpanningTree::new(1, Vec::new()).expect("trivial"),
            rounds: RoundLedger::new(),
            phases: Vec::new(),
            monte_carlo_failure: false,
        });
    }

    let ResolvedConfig {
        workers,
        engine,
        fp,
        rho,
        ell0,
        repr,
    } = resolve_config(config, g);
    let rounds_per_mult = engine.rounds_for_multiply(n);

    let mut clique = Clique::new(n);
    // The prepared path borrows the transition matrix computed once in
    // `prepare()`; the cold path builds it per call (in the backend's
    // representation — CSR straight from the adjacency lists, no n²).
    let p: Cow<'_, PMatrix> = match prepared {
        Some(d) => Cow::Borrowed(&d.p),
        None => Cow::Owned(g.transition_pmatrix(repr)),
    };
    let p = p.as_ref();
    let mut visited = vec![false; n];
    visited[0] = true; // W[0] = s: the leader's vertex (§2.1, Alg. 1)
    let mut vf = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut total = RoundLedger::new();
    let mut failure = false;

    while visited.iter().any(|&v| !v) {
        let s_vertices: Vec<usize> = (0..n)
            .filter(|&v| !visited[v])
            .chain(std::iter::once(vf))
            .collect();
        let s = VertexSubset::new(n, &s_vertices);
        let rho_phase = rho.min(s.len());

        // ── Derivative graphs for this phase (§2.4). Phase 1 uses G
        // itself: Schur(G, V) = G (the transition matrix is borrowed, not
        // cloned) and the shortcut matrix is the symbolic identity (a
        // walk's pre-S vertex is its previous vertex) — phase 1 allocates
        // no n² scratch at all.
        let (t0, q): (Cow<'_, PMatrix>, PhaseShortcut) = if s.len() == n {
            (Cow::Borrowed(p), PhaseShortcut::Identity)
        } else {
            let q = match config.schur {
                SchurComputation::ExactSolve => PMatrix::Dense(shortcut_exact(g, &s)),
                SchurComputation::IteratedSquaring { tol } => {
                    // The adaptive route: starts in the backend's
                    // representation, promoting per the fill-in tracker;
                    // bit-identical to the dense block route.
                    shortcut_by_squaring_pmatrix(g, &s, tol, 64, repr).0
                }
            };
            // Corollary 2's chain is 2n × 2n: charge the paper's
            // iterated-squaring count at 4× the n × n multiply cost.
            // This figure is *analytic* (the distributed protocol's
            // published bill), not measured from the local computation:
            // the local route exploits the chain's block structure
            // ([[T, A], [0, I]] squares in two n × n products — see
            // `cct_schur::shortcut_by_squaring`), an optimization of the
            // simulation, not of the simulated network algorithm.
            let squarings = charged_schur_squarings(n);
            clique
                .ledger_mut()
                .charge(CostCategory::MatMul, squarings * 4 * rounds_per_mult);
            let trans_local = schur_transition_from_shortcut_p(g, &s, &q);
            // Corollary 3: one more product (Q·R) plus local
            // normalization.
            clique
                .ledger_mut()
                .charge(CostCategory::MatMul, rounds_per_mult);
            (
                Cow::Owned(pad_to_global(&trans_local, &s, n, repr)),
                PhaseShortcut::Mat(q),
            )
        };

        // ── Walk generation: leader-local for final phases
        // (|S| ≤ ρ, where the whole S-matrix fits in the O(1)-round
        // submatrix budget) and for degenerate bipartite phase
        // graphs; the full top-down machinery otherwise.
        let use_direct = s.len() <= rho || is_degenerate_bipartite(&t0, &s, vf, rho_phase);
        let walk_res: PhaseWalkResult = if use_direct {
            direct_local_phase(
                &mut clique,
                &t0,
                &s,
                vf,
                rho_phase,
                ell0,
                config.variant,
                rng,
            )?
        } else {
            let levels = ell0.trailing_zeros() as usize;
            // Phase 1's table is the doubling table of P itself —
            // graph-global work the prepared path computed once.
            // Replaying the cached ledger keeps the round accounting
            // bit-identical to the cold recomputation. The cached levels
            // are *borrowed* (Las Vegas extensions land in the table's
            // transient tail), so a prepared draw allocates no copy of
            // the table at all.
            let cached = if s.len() == n {
                prepared.and_then(|d| d.phase1.as_ref())
            } else {
                None
            };
            let owned_powers;
            let base: &[PMatrix] = match cached {
                Some(cache) => {
                    clique.ledger_mut().merge(&cache.ledger);
                    &cache.powers
                }
                None => {
                    owned_powers =
                        distributed_powers_p(&mut clique, engine.as_ref(), &t0, levels + 1, fp);
                    &owned_powers
                }
            };
            let mut powers = PowerTable::new(base);
            match top_down_phase(
                &mut clique,
                engine.as_ref(),
                &mut powers,
                &s,
                vf,
                rho_phase,
                ell0,
                config,
                workers,
                rng,
            ) {
                Ok(r) => r,
                Err(PhaseError::GridCapExceeded) => direct_local_phase(
                    &mut clique,
                    &t0,
                    &s,
                    vf,
                    rho_phase,
                    ell0,
                    config.variant,
                    rng,
                )?,
                Err(e) => return Err(e.into()),
            }
        };

        // ── Algorithm 4: sample first-visit edges in G for every
        // newly visited vertex. O(1) rounds: the leader scatters each
        // v's predecessor, machine v polls its neighbors for
        // Q[prev,u]/deg_S(u), and the sampled edges are gathered.
        let mut fv_words = 2 * walk_res.first_visits.len() as u64;
        for &(v, _) in &walk_res.first_visits {
            fv_words += 2 * g.num_neighbors(v) as u64;
        }
        clique.ledger_mut().charge(CostCategory::FirstVisit, 3);
        clique
            .ledger_mut()
            .add_words(CostCategory::FirstVisit, fv_words);
        for &(v, prev) in &walk_res.first_visits {
            debug_assert!(!visited[v], "vertex {v} visited twice");
            let (u, vv) = sample_first_visit_edge_with(g, &s, |a, b| q.weight(a, b), prev, v, rng)
                .ok_or(SampleTreeError::Phase(PhaseError::DegenerateDistribution))?;
            debug_assert_eq!(vv, v);
            edges.push((u, vv));
            visited[v] = true;
        }
        vf = walk_res.last;
        debug_assert_eq!(
            walk_res.distinct,
            walk_res.first_visits.len() + 1,
            "every distinct non-start vertex must get a first-visit edge"
        );

        let phase_ledger = clique.take_ledger();
        total.merge(&phase_ledger);
        phases.push(PhaseReport {
            s_size: s.len(),
            rho: rho_phase,
            method: walk_res.method,
            ell: walk_res.ell_final,
            tau: walk_res.tau,
            new_vertices: walk_res.first_visits.len(),
            extensions: walk_res.extensions,
            rounds: phase_ledger,
            pi_words: walk_res.pi_words,
            placement_words: walk_res.placement_words,
        });

        if !walk_res.reached {
            debug_assert_eq!(config.variant, Variant::MonteCarlo);
            failure = true;
            break;
        }
    }

    let tree = if failure {
        // Theorem 1's Monte Carlo semantics: emit an arbitrary
        // spanning tree (flagged) when a phase misses its budget.
        bfs_tree(g)
    } else {
        SpanningTree::new(n, edges).expect("first-visit edges of a covering walk span")
    };
    Ok(SampleReport {
        tree,
        rounds: total,
        phases,
        monte_carlo_failure: failure,
    })
}

/// A prepare-once / sample-many handle: the graph-global preprocessing
/// (input validation, the transition matrix, and the phase-1 power table
/// where `Schur(G, V) = G`) is done once, and every [`PreparedSampler::sample`]
/// call reuses it. Trees and round ledgers are bit-identical to the cold
/// [`CliqueTreeSampler::sample`] path for the same seed — the cache also
/// replays the exact ledger charges its construction incurred.
///
/// This is the serving-path API: amortizing preprocessing across repeated
/// `sample()` calls on the same graph is a measured multi-× throughput
/// win (experiment `e18`, `BENCH_e18.json`).
///
/// # Examples
///
/// ```
/// use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
/// use cct_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::complete(8);
/// let sampler = CliqueTreeSampler::new(
///     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
/// );
/// let prepared = sampler.prepare(&g)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// for _ in 0..3 {
///     let report = prepared.sample(&mut rng)?;
///     assert_eq!(report.tree.edges().len(), 7);
/// }
/// # Ok::<(), cct_core::SampleTreeError>(())
/// ```
#[derive(Debug)]
pub struct PreparedSampler {
    config: SamplerConfig,
    graph: Graph,
    data: PreparedData,
}

impl PreparedSampler {
    /// Validates `g` and hoists the graph-global work out of the sampling
    /// loop. Prefer [`CliqueTreeSampler::prepare`].
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::EmptyGraph`] / [`SampleTreeError::Disconnected`]
    /// for invalid inputs.
    pub fn new(config: SamplerConfig, g: &Graph) -> Result<Self, SampleTreeError> {
        let n = g.n();
        if n == 0 {
            return Err(SampleTreeError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(SampleTreeError::Disconnected);
        }
        let repr = config.backend.resolve(g);
        let p = g.transition_pmatrix(repr);
        let phase1 = if n > 1 {
            let ResolvedConfig {
                engine,
                fp,
                rho,
                ell0,
                ..
            } = resolve_config(&config, g);
            // Phase 1 has S = V (all vertices unvisited except the
            // leader, which doubles as v_f), so whether it takes the
            // distributed top-down route is a pure function of the graph
            // and config — decided here exactly as the loop decides it.
            let s = VertexSubset::full(n);
            let rho_phase = rho.min(n);
            let use_direct = n <= rho || is_degenerate_bipartite(&p, &s, 0, rho_phase);
            if use_direct {
                None
            } else {
                // Build the phase-1 doubling table on a scratch clique and
                // capture the exact ledger charges for per-sample replay.
                let levels = ell0.trailing_zeros() as usize;
                let mut scratch = Clique::new(n);
                let powers =
                    distributed_powers_p(&mut scratch, engine.as_ref(), &p, levels + 1, fp);
                Some(Phase1Cache {
                    powers,
                    ledger: scratch.take_ledger(),
                })
            }
        } else {
            None
        };
        Ok(PreparedSampler {
            config,
            graph: g.clone(),
            data: PreparedData { p, phase1 },
        })
    }

    /// The prepared graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// The matrix representation the backend knob resolved to for this
    /// graph.
    pub fn repr(&self) -> Repr {
        self.data.p.repr()
    }

    /// Resident matrix bytes held by the prepared state: the transition
    /// matrix plus every cached phase-1 doubling-table level. This is
    /// the allocation that pins the practical size cap (a dense 8192²
    /// `f64` matrix is 512 MB, and the table retains `log₂ ℓ` of them);
    /// the sparse backend's whole memory win is visible here, and
    /// experiment `e19` reports it as `peak_matrix_bytes`.
    pub fn matrix_bytes(&self) -> usize {
        let table: usize = self
            .data
            .phase1
            .as_ref()
            .map_or(0, |c| c.powers.iter().map(PMatrix::memory_bytes).sum());
        self.data.p.memory_bytes() + table
    }

    /// Samples a spanning tree, reusing the prepared graph-global work.
    /// Same seed ⇒ same tree and same ledger as the cold path.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::Phase`] if fixed-point precision was configured
    /// too low to keep the distributions alive.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SampleReport, SampleTreeError> {
        sample_with(&self.config, &self.graph, Some(&self.data), rng)
    }

    /// Wraps the prepared state for sharing across threads — the serving
    /// path's shape, where many workers draw from one preparation.
    ///
    /// [`PreparedSampler`] holds only immutable plain data (the config,
    /// the graph, the transition matrix, and the phase-1 power table
    /// with its ledger); `sample` takes `&self` and every per-call
    /// mutation (Las Vegas extensions, scratch cliques) happens on
    /// clones. It is therefore `Send + Sync` by construction — a
    /// compile-time assertion in this crate keeps that true — and
    /// `Arc<PreparedSampler>` can be handed to any number of concurrent
    /// samplers.
    ///
    /// # Examples
    ///
    /// ```
    /// use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
    /// use cct_graph::generators;
    /// use rand::SeedableRng;
    ///
    /// let sampler = CliqueTreeSampler::new(
    ///     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
    /// );
    /// let shared = sampler.prepare(&generators::complete(8))?.into_shared();
    /// std::thread::scope(|s| {
    ///     for seed in 0..2u64 {
    ///         let shared = std::sync::Arc::clone(&shared);
    ///         s.spawn(move || {
    ///             let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ///             shared.sample(&mut rng).unwrap()
    ///         });
    ///     }
    /// });
    /// # Ok::<(), cct_core::SampleTreeError>(())
    /// ```
    pub fn into_shared(self) -> std::sync::Arc<PreparedSampler> {
        std::sync::Arc::new(self)
    }
}

/// Compile-time audit that the prepare-once/sample-many handle stays
/// shareable across threads: adding a `Cell`, `Rc`, or raw pointer to
/// any field (or to `Graph`/`Matrix`/`RoundLedger` below it) breaks this
/// function, not a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedSampler>();
    assert_send_sync::<CliqueTreeSampler>();
    assert_send_sync::<SampleTreeError>();
};

/// The iterated-squaring count charged for computing `Q` (Corollary 2):
/// `k = O(n³ log 1/δ)` steps of the absorbing chain need `⌈log₂ k⌉`
/// squarings ≈ `3 log₂ n + 6`.
fn charged_schur_squarings(n: usize) -> u64 {
    (3.0 * (n as f64).log2() + 6.0).ceil() as u64
}

/// Embeds the `|S| × |S|` local transition matrix into global `n × n`
/// space as `diag(T, I)`: powers restrict to the `S` block, so the walk
/// machinery can stay in global vertex ids.
///
/// The sparse representation stores one entry per identity row outside
/// `S` plus the (zero-dropped) `S` block — for late phases, where
/// `|S| ≪ n`, that is `n + |S|²` entries instead of `n²` slots. Values
/// are identical bit for bit in both representations.
fn pad_to_global(local: &Matrix, s: &VertexSubset, n: usize, repr: Repr) -> PMatrix {
    match repr {
        Repr::Dense => {
            let mut out = Matrix::identity(n);
            for (i, &u) in s.list().iter().enumerate() {
                out[(u, u)] = 0.0;
                for (j, &v) in s.list().iter().enumerate() {
                    out[(u, v)] = local[(i, j)];
                }
            }
            PMatrix::Dense(out)
        }
        Repr::Sparse => {
            // Column-sorted scatter of each S-row; `s.list()` is not
            // necessarily sorted, so sort each row's (global column,
            // value) pairs before pushing.
            let mut local_of = vec![usize::MAX; n];
            for (i, &u) in s.list().iter().enumerate() {
                local_of[u] = i;
            }
            let mut b = CsrMatrix::builder(n, n);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(s.len());
            for (u, &local_idx) in local_of.iter().enumerate() {
                if local_idx == usize::MAX {
                    b.push(u, 1.0);
                } else {
                    let i = local_idx;
                    row.clear();
                    for (j, &v) in s.list().iter().enumerate() {
                        row.push((v, local[(i, j)]));
                    }
                    row.sort_unstable_by_key(|&(v, _)| v);
                    for &(v, x) in &row {
                        b.push(v, x);
                    }
                }
                b.finish_row();
            }
            PMatrix::Sparse(b.build())
        }
    }
}

/// An arbitrary (BFS) spanning tree — the Monte Carlo failure output.
fn bfs_tree(g: &Graph) -> SpanningTree {
    let n = g.n();
    let mut parent = vec![usize::MAX; n];
    parent[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut edges = Vec::with_capacity(n - 1);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if parent[v] == usize::MAX {
                parent[v] = u;
                edges.push((u, v));
                queue.push_back(v);
            }
        }
    }
    SpanningTree::new(n, edges).expect("connected graph has a BFS tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Placement, WalkLength};
    use crate::report::PhaseMethod;
    use cct_graph::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn quick_config() -> SamplerConfig {
        SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost)
    }

    #[test]
    fn samples_valid_trees_on_suite() {
        let mut r = rng(100);
        for g in [
            generators::complete(9),
            generators::petersen(),
            generators::grid(3, 3),
            generators::lollipop(5, 4),
            generators::cycle(8),
            generators::k_dense_irregular(9),
            generators::wheel(9),
        ] {
            let sampler = CliqueTreeSampler::new(quick_config());
            let report = sampler.sample(&g, &mut r).unwrap();
            assert!(!report.monte_carlo_failure, "failure on n = {}", g.n());
            assert_eq!(report.tree.n(), g.n());
            for &(u, v) in report.tree.edges() {
                assert!(g.has_edge(u, v), "foreign edge ({u},{v})");
            }
            assert!(report.total_rounds() > 0);
            assert!(!report.phases.is_empty());
        }
    }

    #[test]
    fn phases_visit_rho_new_vertices() {
        let g = generators::complete(16);
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(101);
        let report = sampler.sample(&g, &mut r).unwrap();
        // ρ = 4: every non-final top-down phase contributes 3 new
        // vertices (ρ − 1, since v_f is already visited).
        for p in &report.phases[..report.phases.len() - 1] {
            assert_eq!(p.rho, 4);
            assert_eq!(p.new_vertices, 3, "phase: {p:?}");
        }
        // 15 vertices need first-visit edges in total.
        let total_new: usize = report.phases.iter().map(|p| p.new_vertices).sum();
        assert_eq!(total_new, 15);
    }

    #[test]
    fn prepared_sampler_is_bit_identical_to_cold() {
        // Same seed ⇒ same tree AND same ledger, across graphs, engines,
        // and repeated draws from one prepared handle.
        for engine in [
            EngineChoice::UnitCost,
            EngineChoice::FastOracle {
                alpha: cct_sim::ALPHA,
            },
            EngineChoice::Semiring,
        ] {
            for g in [
                generators::complete(12),
                generators::petersen(),
                generators::lollipop(5, 4),
            ] {
                let config = quick_config().engine(engine);
                let sampler = CliqueTreeSampler::new(config);
                let prepared = sampler.prepare(&g).unwrap();
                let mut r_cold = rng(300);
                let mut r_prep = rng(300);
                for draw in 0..3 {
                    let cold = sampler.sample(&g, &mut r_cold).unwrap();
                    let prep = prepared.sample(&mut r_prep).unwrap();
                    assert_eq!(cold.tree, prep.tree, "{engine:?}, draw {draw}");
                    assert_eq!(cold.rounds, prep.rounds, "{engine:?}, draw {draw}");
                    assert_eq!(
                        cold.phases.len(),
                        prep.phases.len(),
                        "{engine:?}, draw {draw}"
                    );
                }
            }
        }
    }

    #[test]
    fn prepared_sampler_works_at_every_worker_count() {
        let g = generators::complete(16);
        let reference = {
            let sampler = CliqueTreeSampler::new(quick_config());
            sampler.sample(&g, &mut rng(301)).unwrap()
        };
        for workers in [1usize, 4] {
            let sampler =
                CliqueTreeSampler::new(quick_config().workers(cct_sim::Workers::Fixed(workers)));
            let prepared = sampler.prepare(&g).unwrap();
            let report = prepared.sample(&mut rng(301)).unwrap();
            assert_eq!(report.tree, reference.tree, "workers = {workers}");
            assert_eq!(report.rounds, reference.rounds, "workers = {workers}");
        }
    }

    #[test]
    fn shared_prepared_sampler_is_bit_identical_across_threads() {
        // One Arc'd preparation, many concurrent samplers: each thread's
        // draw must equal the cold single-threaded run at its own seed.
        let g = generators::complete(12);
        let sampler = CliqueTreeSampler::new(quick_config());
        let shared = sampler.prepare(&g).unwrap().into_shared();
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let shared = std::sync::Arc::clone(&shared);
                    s.spawn(move || shared.sample(&mut rng(400 + i)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, prep) in results.iter().enumerate() {
            let cold = sampler.sample(&g, &mut rng(400 + i as u64)).unwrap();
            assert_eq!(cold.tree, prep.tree, "thread {i}");
            assert_eq!(cold.rounds, prep.rounds, "thread {i}");
        }
    }

    #[test]
    fn prepared_sampler_validates_input() {
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            CliqueTreeSampler::new(quick_config())
                .prepare(&disconnected)
                .unwrap_err(),
            SampleTreeError::Disconnected
        );
        let trivial = Graph::from_edges(1, &[]).unwrap();
        let prepared = CliqueTreeSampler::new(quick_config())
            .prepare(&trivial)
            .unwrap();
        assert!(prepared
            .sample(&mut rng(302))
            .unwrap()
            .tree
            .edges()
            .is_empty());
        assert_eq!(prepared.graph().n(), 1);
    }

    #[test]
    fn prepared_sampler_las_vegas_extensions_match_cold() {
        // Las Vegas phase-1 extensions mutate a *clone* of the cached
        // table; the cache must stay pristine and results identical.
        let g = generators::complete(12);
        let config = SamplerConfig::new()
            .rho(6)
            .walk_length(WalkLength::Fixed(4))
            .variant(Variant::LasVegas)
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let prepared = sampler.prepare(&g).unwrap();
        let mut r_cold = rng(303);
        let mut r_prep = rng(303);
        for _ in 0..2 {
            let cold = sampler.sample(&g, &mut r_cold).unwrap();
            let prep = prepared.sample(&mut r_prep).unwrap();
            assert!(prep.phases.iter().any(|p| p.extensions > 0));
            assert_eq!(cold.tree, prep.tree);
            assert_eq!(cold.rounds, prep.rounds);
        }
    }

    #[test]
    fn weighted_graphs_supported() {
        let mut r = rng(102);
        let g =
            cct_graph::generators::with_random_integer_weights(&generators::complete(7), 5, &mut r)
                .unwrap();
        let sampler = CliqueTreeSampler::new(quick_config());
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 6);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(103);
        assert_eq!(
            sampler.sample(&g, &mut r).unwrap_err(),
            SampleTreeError::Disconnected
        );
    }

    #[test]
    fn single_vertex_trivial() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(104);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(report.tree.edges().is_empty());
        assert_eq!(report.num_phases(), 0);
    }

    #[test]
    fn two_vertex_graph() {
        let g = generators::path(2);
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(105);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert_eq!(report.tree.edges(), &[(0, 1)]);
        // |S| = 2 is the degenerate bipartite case → direct-local.
        assert_eq!(report.phases[0].method, PhaseMethod::DirectLocal);
    }

    #[test]
    fn monte_carlo_failure_yields_arbitrary_tree() {
        // ℓ = 4 steps cannot cover a 16-path: the failure path must
        // produce a valid (BFS) tree with the flag set.
        let g = generators::path(16);
        let config = SamplerConfig::new()
            .walk_length(WalkLength::Fixed(4))
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rng(106);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 15);
    }

    #[test]
    fn las_vegas_never_fails() {
        // ℓ = 4 steps cannot visit ρ = 6 distinct vertices, so every
        // top-down phase must extend (Appendix §5.1).
        let g = generators::complete(12);
        let config = SamplerConfig::new()
            .rho(6)
            .walk_length(WalkLength::Fixed(4))
            .variant(Variant::LasVegas)
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rng(107);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert!(report.phases.iter().any(|p| p.extensions > 0));
        assert_eq!(report.tree.edges().len(), 11);
    }

    #[test]
    fn all_placements_produce_valid_trees() {
        let g = generators::complete(12);
        let mut r = rng(108);
        for placement in [
            Placement::Matching,
            Placement::PerPairShuffle,
            Placement::Oracle,
        ] {
            let sampler = CliqueTreeSampler::new(quick_config().placement(placement));
            let report = sampler.sample(&g, &mut r).unwrap();
            assert!(!report.monte_carlo_failure, "{placement:?}");
            assert_eq!(report.tree.edges().len(), 11, "{placement:?}");
        }
    }

    #[test]
    fn exact_variant_runs() {
        let g = generators::complete(10);
        let config = SamplerConfig::exact_variant()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rng(109);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 9);
    }

    #[test]
    fn fast_oracle_rounds_exceed_unit_cost() {
        let g = generators::complete(16);
        let mut r1 = rng(110);
        let mut r2 = rng(110);
        let unit = CliqueTreeSampler::new(quick_config())
            .sample(&g, &mut r1)
            .unwrap();
        let oracle = CliqueTreeSampler::new(quick_config().engine(EngineChoice::FastOracle {
            alpha: cct_sim::ALPHA,
        }))
        .sample(&g, &mut r2)
        .unwrap();
        assert!(oracle.total_rounds() > unit.total_rounds());
        // Same seed, same tree: the engine changes only the ledger.
        assert_eq!(unit.tree, oracle.tree);
    }

    #[test]
    fn report_phase_count_matches_sqrt_n_scaling() {
        let g = generators::complete(36);
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(111);
        let report = sampler.sample(&g, &mut r).unwrap();
        // ρ = 6 → ~35/5 = 7 phases.
        assert!(
            report.num_phases() >= 5 && report.num_phases() <= 10,
            "{}",
            report.num_phases()
        );
    }
}
