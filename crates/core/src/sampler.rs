//! The phase orchestrator: Theorem 1's `Õ(n^{1/2+α})`-round sampler and
//! the Appendix's exact `Õ(n^{2/3+α})` variant.
//!
//! Each phase (§2.2): build `S = {unvisited} ∪ {v_f}`, compute the
//! shortcut matrix `Q` and the Schur transition (Corollaries 2–3,
//! charged at the paper's iterated-squaring multiplication counts), run
//! the top-down truncated walk on `Schur(G, S)` (Outline 3), and sample
//! every newly visited vertex's first-visit edge in `G` via Algorithm 4.
//! The union of first-visit edges across phases is the Aldous–Broder
//! spanning tree.

use crate::config::{EngineChoice, SamplerConfig, SchurComputation, Variant, WalkLength};
use crate::phase::{
    direct_local_phase, is_degenerate_bipartite, streamed_local_phase, top_down_phase, PhaseError,
    PhaseWalkResult, PowerTable,
};
use crate::report::{PhaseMethod, PhaseReport, SampleReport};
use cct_graph::{Graph, SpanningTree};
use cct_linalg::{CsrMatrix, Matrix, PMatrix, Repr};
use cct_schur::{
    sample_first_visit_edge_with, schur_transition_from_shortcut_p, shortcut_by_squaring_pmatrix,
    shortcut_exact, VertexSubset,
};
use cct_sim::{
    distributed_powers_deferred, Clique, CostCategory, DeferredPowers, FastOracleEngine,
    MatMulEngine, RoundLedger, SemiringEngine, UnitCostEngine,
};
use rand::Rng;
use std::borrow::Cow;

/// Error returned by [`CliqueTreeSampler::sample`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleTreeError {
    /// The graph has no vertices.
    EmptyGraph,
    /// The graph is disconnected — no spanning tree exists.
    Disconnected,
    /// A phase failed irrecoverably (degenerate precision).
    Phase(PhaseError),
}

impl std::fmt::Display for SampleTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleTreeError::EmptyGraph => write!(f, "graph has no vertices"),
            SampleTreeError::Disconnected => write!(f, "graph is disconnected"),
            SampleTreeError::Phase(e) => write!(f, "phase failure: {e}"),
        }
    }
}

impl std::error::Error for SampleTreeError {}

impl From<PhaseError> for SampleTreeError {
    fn from(e: PhaseError) -> Self {
        SampleTreeError::Phase(e)
    }
}

/// The Congested Clique spanning-tree sampler (the paper's primary
/// contribution).
///
/// # Examples
///
/// ```
/// use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
/// use cct_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::complete(8);
/// let sampler = CliqueTreeSampler::new(
///     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let report = sampler.sample(&g, &mut rng)?;
/// assert_eq!(report.tree.edges().len(), 7);
/// assert!(!report.monte_carlo_failure);
/// # Ok::<(), cct_core::SampleTreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CliqueTreeSampler {
    config: SamplerConfig,
}

impl CliqueTreeSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SamplerConfig) -> Self {
        CliqueTreeSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Samples a spanning tree of `g`, returning the tree together with
    /// the full round/traffic report.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::Disconnected`] / [`SampleTreeError::EmptyGraph`]
    /// for invalid inputs; [`SampleTreeError::Phase`] if fixed-point
    /// precision was configured too low to keep the distributions alive.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
    ) -> Result<SampleReport, SampleTreeError> {
        sample_with(&self.config, g, None, rng)
    }

    /// Preprocesses `g` for repeated sampling: validates the input once,
    /// builds the transition matrix, and precomputes the phase-1 power
    /// table (phase 1 always walks on `G` itself, since
    /// `Schur(G, V) = G`). The returned [`PreparedSampler`] serves
    /// `sample()` calls without redoing any graph-global work, with trees
    /// and ledgers bit-identical to this sampler's.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::EmptyGraph`] / [`SampleTreeError::Disconnected`]
    /// for invalid inputs.
    pub fn prepare(&self, g: &Graph) -> Result<PreparedSampler, SampleTreeError> {
        PreparedSampler::new(self.config.clone(), g)
    }
}

/// Resolved per-run pieces shared by the cold and prepared paths.
struct ResolvedConfig {
    workers: usize,
    /// Local worker width for matrix kernels (max of `workers` and the
    /// legacy `threads` knob) — also the width deferred power levels
    /// square with.
    threads: usize,
    engine: Box<dyn MatMulEngine>,
    rounding: cct_linalg::Rounding,
    rho: usize,
    ell0: u64,
    /// The matrix representation the backend knob resolved to for this
    /// input graph (memory/speed only — results are backend-invariant).
    repr: Repr,
}

fn resolve_config(config: &SamplerConfig, g: &Graph) -> ResolvedConfig {
    let n = g.n();
    // `workers` drives every parallel section the round engine owns
    // (the phase fan-out); the matmul engines additionally honor the
    // legacy `threads` knob for their local kernels, which have
    // their own small-size sequential fallback. Results are
    // identical at any width (the cct-sim determinism contract) —
    // only wall-clock changes.
    let workers = config.workers.resolve(n);
    let threads = workers.max(config.threads);
    let engine: Box<dyn MatMulEngine> = match config.engine {
        EngineChoice::FastOracle { alpha } => {
            let wpe = config.precision.rounding().words_per_entry(n);
            Box::new(FastOracleEngine::new(alpha, wpe, threads))
        }
        EngineChoice::Semiring => Box::new(SemiringEngine::new(threads)),
        EngineChoice::UnitCost => Box::new(UnitCostEngine { threads }),
    };
    let rounding = config.precision.rounding();
    let rho = config.resolve_rho(n);
    // Footnote 1: with integer weights ≤ W the cover time is
    // O(W·|V|·|E|), so the paper's ℓ budget scales by W (this is the
    // very reason the weights must be polynomially bounded).
    let ell0 = match config.walk_length {
        WalkLength::Paper { .. } => {
            let w = g.max_weight().max(1.0).round() as u64;
            (config.walk_length.resolve(n).saturating_mul(w)).next_power_of_two()
        }
        _ => config.walk_length.resolve(n),
    };
    ResolvedConfig {
        workers,
        threads,
        engine,
        rounding,
        rho,
        ell0,
        repr: config.backend.resolve(g),
    }
}

/// The out-of-core criterion: `true` when the *dense-equivalent* power
/// table of a phase (`log₂ ℓ + 2` levels of `n² × 8`-byte matrices —
/// the `+2` covers the transition matrix itself and one Las Vegas
/// extension) would exceed the configured cap. Deliberately a function
/// of `n` and `ℓ` only — never of the backend or the realized sparsity —
/// so every backend routes the same graph the same way.
fn table_exceeds_cap(n: usize, ell0: u64, max_table_bytes: usize) -> bool {
    let levels = ell0.trailing_zeros() as u128;
    (levels + 2) * 8 * (n as u128) * (n as u128) > max_table_bytes as u128
}

/// The phase-1 work a [`PreparedSampler`] hoists out of the per-sample
/// loop: the doubling table of `P` (phase 1 walks on `G` itself) and the
/// exact ledger charges its distributed construction incurred, replayed
/// verbatim on every sample so round counts stay bit-identical to the
/// cold path.
#[derive(Debug)]
struct Phase1Cache {
    /// The doubling table as a *lazy* [`DeferredPowers`]: the
    /// distributed-construction cost is charged in full at `prepare()`
    /// time (captured in `ledger` below for per-sample replay), but a
    /// level's numeric content materializes only when a walk first
    /// reads it — memoized across samples. On a sparse backend the
    /// early levels additionally stay CSR until fill-in promotes them.
    /// Both effects land in [`PreparedSampler::matrix_bytes`]: a
    /// freshly prepared sampler holds little more than the transition
    /// matrix.
    powers: DeferredPowers,
    ledger: RoundLedger,
}

/// The shortcut matrix `Q` of a phase. Phase 1 has `S = V`, where a
/// walk's pre-`S` vertex is simply its previous vertex: `Q` is the
/// identity, represented symbolically instead of as a dense `n × n`
/// allocation that is read `O(deg)` times. Later phases hold `Q` in
/// either representation; Algorithm 4 reads it entry-wise (CSR rows are
/// never densified for it).
enum PhaseShortcut {
    Identity,
    Mat(PMatrix),
}

impl PhaseShortcut {
    fn weight(&self, u0: usize, u: usize) -> f64 {
        match self {
            PhaseShortcut::Identity => f64::from(u0 == u),
            PhaseShortcut::Mat(q) => q.get(u0, u),
        }
    }
}

/// What a [`PreparedSampler`] carries into the shared loop: the graph's
/// transition matrix and (when phase 1 takes the distributed top-down
/// route) the cached phase-1 doubling table.
#[derive(Debug)]
struct PreparedData {
    p: PMatrix,
    phase1: Option<Phase1Cache>,
}

/// The shared sampling loop. `prepared` carries a [`PreparedSampler`]'s
/// cached graph-global work (with its ledger charges); `None` is the
/// cold path that recomputes everything per call.
fn sample_with<R: Rng + ?Sized>(
    config: &SamplerConfig,
    g: &Graph,
    prepared: Option<&PreparedData>,
    rng: &mut R,
) -> Result<SampleReport, SampleTreeError> {
    let n = g.n();
    if n == 0 {
        return Err(SampleTreeError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(SampleTreeError::Disconnected);
    }
    if n == 1 {
        return Ok(SampleReport {
            tree: SpanningTree::new(1, Vec::new()).expect("trivial"),
            rounds: RoundLedger::new(),
            phases: Vec::new(),
            monte_carlo_failure: false,
        });
    }

    let ResolvedConfig {
        workers,
        threads,
        engine,
        rounding,
        rho,
        ell0,
        repr,
    } = resolve_config(config, g);
    let rounds_per_mult = engine.rounds_for_multiply(n);
    let out_of_core = table_exceeds_cap(n, ell0, config.max_table_bytes);

    let mut clique = Clique::new(n);
    if out_of_core && g.m() == n - 1 {
        // A connected graph with n − 1 edges *is* its unique spanning
        // tree: answer exactly in O(m), before any matrix exists.
        return Ok(unique_tree_report(g, rho, ell0, &mut clique));
    }
    // The prepared path borrows the transition matrix computed once in
    // `prepare()`; the cold path builds it per call (in the backend's
    // representation — CSR straight from the adjacency lists, no n²).
    // Out-of-core graphs force CSR regardless of backend: a dense P is
    // exactly the Θ(n²) allocation this regime exists to avoid, and
    // row sampling is bit-identical in both representations.
    let p: Cow<'_, PMatrix> = match prepared {
        Some(d) => Cow::Borrowed(&d.p),
        None => Cow::Owned(g.transition_pmatrix(if out_of_core { Repr::Sparse } else { repr })),
    };
    let p = p.as_ref();
    let mut visited = vec![false; n];
    visited[0] = true; // W[0] = s: the leader's vertex (§2.1, Alg. 1)
    let mut vf = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut total = RoundLedger::new();
    let mut failure = false;

    if out_of_core {
        // ── The streaming route: phase walks run step by step on G
        // itself, recording actual entry edges (Aldous–Broder verbatim,
        // so trees remain exactly distributed where the walk covers).
        // `remaining` replaces the per-phase Θ(n) visited scan.
        let mut remaining = n - 1;
        while remaining > 0 {
            let s_size = remaining + 1;
            let rho_phase = rho.min(s_size);
            let walk_res = streamed_local_phase(
                &mut clique,
                p,
                &visited,
                vf,
                rho_phase,
                ell0,
                config.variant,
                config.max_grid_len as u64,
                rng,
            )?;
            for &(v, prev) in &walk_res.first_visits {
                debug_assert!(!visited[v], "vertex {v} visited twice");
                edges.push((prev, v));
                visited[v] = true;
                remaining -= 1;
            }
            vf = walk_res.last;
            let phase_ledger = clique.take_ledger();
            total.merge(&phase_ledger);
            phases.push(PhaseReport {
                s_size,
                rho: rho_phase,
                method: walk_res.method,
                ell: walk_res.ell_final,
                tau: walk_res.tau,
                new_vertices: walk_res.first_visits.len(),
                extensions: walk_res.extensions,
                rounds: phase_ledger,
                pi_words: 0,
                placement_words: 0,
            });
            if !walk_res.reached {
                debug_assert_eq!(config.variant, Variant::MonteCarlo);
                failure = true;
                break;
            }
        }
        let tree = if failure {
            bfs_tree(g)
        } else {
            SpanningTree::new(n, edges).expect("entry edges of a covering walk span")
        };
        return Ok(SampleReport {
            tree,
            rounds: total,
            phases,
            monte_carlo_failure: failure,
        });
    }

    while visited.iter().any(|&v| !v) {
        let s_vertices: Vec<usize> = (0..n)
            .filter(|&v| !visited[v])
            .chain(std::iter::once(vf))
            .collect();
        let s = VertexSubset::new(n, &s_vertices);
        let rho_phase = rho.min(s.len());

        // ── Derivative graphs for this phase (§2.4). Phase 1 uses G
        // itself: Schur(G, V) = G (the transition matrix is borrowed, not
        // cloned) and the shortcut matrix is the symbolic identity (a
        // walk's pre-S vertex is its previous vertex) — phase 1 allocates
        // no n² scratch at all.
        let (t0, q): (Cow<'_, PMatrix>, PhaseShortcut) = if s.len() == n {
            (Cow::Borrowed(p), PhaseShortcut::Identity)
        } else {
            let q = match config.schur {
                SchurComputation::ExactSolve => PMatrix::Dense(shortcut_exact(g, &s)),
                SchurComputation::IteratedSquaring { tol } => {
                    // The adaptive route: starts in the backend's
                    // representation, promoting per the fill-in tracker;
                    // bit-identical to the dense block route.
                    shortcut_by_squaring_pmatrix(g, &s, tol, 64, repr).0
                }
            };
            // Corollary 2's chain is 2n × 2n: charge the paper's
            // iterated-squaring count at 4× the n × n multiply cost.
            // This figure is *analytic* (the distributed protocol's
            // published bill), not measured from the local computation:
            // the local route exploits the chain's block structure
            // ([[T, A], [0, I]] squares in two n × n products — see
            // `cct_schur::shortcut_by_squaring`), an optimization of the
            // simulation, not of the simulated network algorithm.
            let squarings = charged_schur_squarings(n);
            clique
                .ledger_mut()
                .charge(CostCategory::MatMul, squarings * 4 * rounds_per_mult);
            let trans_local = schur_transition_from_shortcut_p(g, &s, &q);
            // Corollary 3: one more product (Q·R) plus local
            // normalization.
            clique
                .ledger_mut()
                .charge(CostCategory::MatMul, rounds_per_mult);
            (
                Cow::Owned(pad_to_global(&trans_local, &s, n, repr)),
                PhaseShortcut::Mat(q),
            )
        };

        // ── Walk generation: leader-local for final phases
        // (|S| ≤ ρ, where the whole S-matrix fits in the O(1)-round
        // submatrix budget) and for degenerate bipartite phase
        // graphs; the full top-down machinery otherwise.
        let use_direct = s.len() <= rho || is_degenerate_bipartite(&t0, &s, vf, rho_phase);
        let walk_res: PhaseWalkResult = if use_direct {
            direct_local_phase(
                &mut clique,
                &t0,
                &s,
                vf,
                rho_phase,
                ell0,
                config.variant,
                rng,
            )?
        } else {
            let levels = ell0.trailing_zeros() as usize;
            // Phase 1's table is the doubling table of P itself —
            // graph-global work the prepared path computed once.
            // Replaying the cached ledger keeps the round accounting
            // bit-identical to the cold recomputation. The cached levels
            // are *borrowed* (Las Vegas extensions land in the table's
            // transient tail), so a prepared draw allocates no copy of
            // the table at all.
            let cached = if s.len() == n {
                prepared.and_then(|d| d.phase1.as_ref())
            } else {
                None
            };
            let owned_powers;
            let base: &DeferredPowers = match cached {
                Some(cache) => {
                    clique.ledger_mut().merge(&cache.ledger);
                    &cache.powers
                }
                None => {
                    owned_powers = distributed_powers_deferred(
                        &mut clique,
                        engine.as_ref(),
                        &t0,
                        levels + 1,
                        rounding,
                        threads,
                    );
                    &owned_powers
                }
            };
            let mut powers = PowerTable::new(base);
            match top_down_phase(
                &mut clique,
                engine.as_ref(),
                &mut powers,
                &s,
                vf,
                rho_phase,
                ell0,
                config,
                workers,
                rng,
            ) {
                Ok(r) => r,
                Err(PhaseError::GridCapExceeded) => direct_local_phase(
                    &mut clique,
                    &t0,
                    &s,
                    vf,
                    rho_phase,
                    ell0,
                    config.variant,
                    rng,
                )?,
                Err(e) => return Err(e.into()),
            }
        };

        // ── Algorithm 4: sample first-visit edges in G for every
        // newly visited vertex. O(1) rounds: the leader scatters each
        // v's predecessor, machine v polls its neighbors for
        // Q[prev,u]/deg_S(u), and the sampled edges are gathered.
        let mut fv_words = 2 * walk_res.first_visits.len() as u64;
        for &(v, _) in &walk_res.first_visits {
            fv_words += 2 * g.num_neighbors(v) as u64;
        }
        clique.ledger_mut().charge(CostCategory::FirstVisit, 3);
        clique
            .ledger_mut()
            .add_words(CostCategory::FirstVisit, fv_words);
        for &(v, prev) in &walk_res.first_visits {
            debug_assert!(!visited[v], "vertex {v} visited twice");
            let (u, vv) = sample_first_visit_edge_with(g, &s, |a, b| q.weight(a, b), prev, v, rng)
                .ok_or(SampleTreeError::Phase(PhaseError::DegenerateDistribution))?;
            debug_assert_eq!(vv, v);
            edges.push((u, vv));
            visited[v] = true;
        }
        vf = walk_res.last;
        debug_assert_eq!(
            walk_res.distinct,
            walk_res.first_visits.len() + 1,
            "every distinct non-start vertex must get a first-visit edge"
        );

        let phase_ledger = clique.take_ledger();
        total.merge(&phase_ledger);
        phases.push(PhaseReport {
            s_size: s.len(),
            rho: rho_phase,
            method: walk_res.method,
            ell: walk_res.ell_final,
            tau: walk_res.tau,
            new_vertices: walk_res.first_visits.len(),
            extensions: walk_res.extensions,
            rounds: phase_ledger,
            pi_words: walk_res.pi_words,
            placement_words: walk_res.placement_words,
        });

        if !walk_res.reached {
            debug_assert_eq!(config.variant, Variant::MonteCarlo);
            failure = true;
            break;
        }
    }

    let tree = if failure {
        // Theorem 1's Monte Carlo semantics: emit an arbitrary
        // spanning tree (flagged) when a phase misses its budget.
        bfs_tree(g)
    } else {
        SpanningTree::new(n, edges).expect("first-visit edges of a covering walk span")
    };
    Ok(SampleReport {
        tree,
        rounds: total,
        phases,
        monte_carlo_failure: failure,
    })
}

/// A prepare-once / sample-many handle: the graph-global preprocessing
/// (input validation, the transition matrix, and the phase-1 power table
/// where `Schur(G, V) = G`) is done once, and every [`PreparedSampler::sample`]
/// call reuses it. Trees and round ledgers are bit-identical to the cold
/// [`CliqueTreeSampler::sample`] path for the same seed — the cache also
/// replays the exact ledger charges its construction incurred.
///
/// This is the serving-path API: amortizing preprocessing across repeated
/// `sample()` calls on the same graph is a measured multi-× throughput
/// win (experiment `e18`, `BENCH_e18.json`).
///
/// # Examples
///
/// ```
/// use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
/// use cct_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::complete(8);
/// let sampler = CliqueTreeSampler::new(
///     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
/// );
/// let prepared = sampler.prepare(&g)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// for _ in 0..3 {
///     let report = prepared.sample(&mut rng)?;
///     assert_eq!(report.tree.edges().len(), 7);
/// }
/// # Ok::<(), cct_core::SampleTreeError>(())
/// ```
#[derive(Debug)]
pub struct PreparedSampler {
    config: SamplerConfig,
    graph: Graph,
    data: PreparedData,
}

impl PreparedSampler {
    /// Validates `g` and hoists the graph-global work out of the sampling
    /// loop. Prefer [`CliqueTreeSampler::prepare`].
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::EmptyGraph`] / [`SampleTreeError::Disconnected`]
    /// for invalid inputs.
    pub fn new(config: SamplerConfig, g: &Graph) -> Result<Self, SampleTreeError> {
        let n = g.n();
        if n == 0 {
            return Err(SampleTreeError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(SampleTreeError::Disconnected);
        }
        let ResolvedConfig {
            threads,
            engine,
            rounding,
            rho,
            ell0,
            repr,
            ..
        } = resolve_config(&config, g);
        let out_of_core = n > 1 && table_exceeds_cap(n, ell0, config.max_table_bytes);
        // Out-of-core graphs force CSR (the dense P is the Θ(n²)
        // allocation this regime eliminates) and never read a phase-1
        // table — `sample_with` takes the streaming route before the
        // matrix loop, exactly as decided here.
        let p = g.transition_pmatrix(if out_of_core { Repr::Sparse } else { repr });
        let phase1 = if n > 1 && !out_of_core {
            // Phase 1 has S = V (all vertices unvisited except the
            // leader, which doubles as v_f), so whether it takes the
            // distributed top-down route is a pure function of the graph
            // and config — decided here exactly as the loop decides it.
            let s = VertexSubset::full(n);
            let rho_phase = rho.min(n);
            let use_direct = n <= rho || is_degenerate_bipartite(&p, &s, 0, rho_phase);
            if use_direct {
                None
            } else {
                // Build the phase-1 doubling table on a scratch clique,
                // capturing the exact ledger charges for per-sample
                // replay. The table is *deferred*: its full distributed
                // cost is charged here, but level contents materialize
                // (memoized) only when a sample first reads them.
                let levels = ell0.trailing_zeros() as usize;
                let mut scratch = Clique::new(n);
                let powers = distributed_powers_deferred(
                    &mut scratch,
                    engine.as_ref(),
                    &p,
                    levels + 1,
                    rounding,
                    threads,
                );
                Some(Phase1Cache {
                    powers,
                    ledger: scratch.take_ledger(),
                })
            }
        } else {
            None
        };
        Ok(PreparedSampler {
            config,
            graph: g.clone(),
            data: PreparedData { p, phase1 },
        })
    }

    /// The prepared graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// The matrix representation the backend knob resolved to for this
    /// graph.
    pub fn repr(&self) -> Repr {
        self.data.p.repr()
    }

    /// Total resident bytes of the prepared state: the transition
    /// matrix, every **materialized** level of the cached phase-1
    /// doubling table, and the cached ledger delta replayed per draw.
    ///
    /// This is the allocation that pins the practical size cap (a dense
    /// 8192² `f64` matrix is 512 MB, and the table retains `log₂ ℓ` of
    /// them); the sparse backend's memory win is visible here, and
    /// experiments `e19`/`e20` report it as `peak_matrix_bytes` /
    /// `resident_bytes`. The serve layer exposes the same number in its
    /// `/cache` metadata, so the two always agree.
    ///
    /// # The lazy-table contract
    ///
    /// The phase-1 table is a [`cct_sim::DeferredPowers`]: `prepare()`
    /// charges its full distributed construction cost up front (so
    /// ledgers are bit-identical to an eager build — per-category
    /// totals don't care *when* a charge lands), but a level's numeric
    /// content materializes only when a sample first reads it, and is
    /// memoized thereafter. Consequently this figure **grows across the
    /// first samples** — from roughly the transition matrix alone after
    /// `prepare()` to the full table footprint once a walk has touched
    /// every level — and is a true point-in-time resident measurement,
    /// not an a-priori capacity bound.
    pub fn matrix_bytes(&self) -> usize {
        let cache: usize = self
            .data
            .phase1
            .as_ref()
            .map_or(0, |c| c.powers.resident_bytes() + c.ledger.memory_bytes());
        self.data.p.resident_bytes() + cache
    }

    /// Samples a spanning tree, reusing the prepared graph-global work.
    /// Same seed ⇒ same tree and same ledger as the cold path.
    ///
    /// # Errors
    ///
    /// [`SampleTreeError::Phase`] if fixed-point precision was configured
    /// too low to keep the distributions alive.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SampleReport, SampleTreeError> {
        sample_with(&self.config, &self.graph, Some(&self.data), rng)
    }

    /// Wraps the prepared state for sharing across threads — the serving
    /// path's shape, where many workers draw from one preparation.
    ///
    /// [`PreparedSampler`] holds only immutable plain data (the config,
    /// the graph, the transition matrix, and the phase-1 power table
    /// with its ledger); `sample` takes `&self` and every per-call
    /// mutation (Las Vegas extensions, scratch cliques) happens on
    /// clones. It is therefore `Send + Sync` by construction — a
    /// compile-time assertion in this crate keeps that true — and
    /// `Arc<PreparedSampler>` can be handed to any number of concurrent
    /// samplers.
    ///
    /// # Examples
    ///
    /// ```
    /// use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
    /// use cct_graph::generators;
    /// use rand::SeedableRng;
    ///
    /// let sampler = CliqueTreeSampler::new(
    ///     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
    /// );
    /// let shared = sampler.prepare(&generators::complete(8))?.into_shared();
    /// std::thread::scope(|s| {
    ///     for seed in 0..2u64 {
    ///         let shared = std::sync::Arc::clone(&shared);
    ///         s.spawn(move || {
    ///             let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ///             shared.sample(&mut rng).unwrap()
    ///         });
    ///     }
    /// });
    /// # Ok::<(), cct_core::SampleTreeError>(())
    /// ```
    pub fn into_shared(self) -> std::sync::Arc<PreparedSampler> {
        std::sync::Arc::new(self)
    }

    /// A borrowed view of the cached state a snapshot must persist: the
    /// transition matrix, the **materialized** phase-1 table levels
    /// (absent levels stay `None` — they cost nothing and rebuild on
    /// demand), and the exact ledger delta replayed per draw.
    ///
    /// This is the write half of warm-restart persistence; the read
    /// half is [`PreparedSampler::restore`].
    pub fn snapshot_state(&self) -> PreparedState<'_> {
        PreparedState {
            p: &self.data.p,
            phase1: self.data.phase1.as_ref().map(|cache| PreparedPhase1State {
                levels: (0..cache.powers.len())
                    .map(|k| cache.powers.materialized_level(k))
                    .collect(),
                ledger: &cache.ledger,
            }),
        }
    }

    /// Rebuilds a prepared sampler from snapshotted state, **verifying
    /// before trusting**: the skeleton is re-prepared from scratch via
    /// [`PreparedSampler::new`] (cheap for analytic engines — the
    /// doubling table is deferred), the fresh transition matrix and
    /// ledger are compared bit-for-bit against the snapshot, and only
    /// then are the snapshot's materialized table levels injected into
    /// the fresh lazy table. A snapshot taken under a different config,
    /// graph, or code version therefore fails closed — the caller
    /// rebuilds cold instead of serving corrupt bits.
    ///
    /// `levels[k]` is the snapshotted level `k` of the phase-1 table
    /// (`None` where the server never materialized it); level 0 is
    /// always rebuilt fresh and any snapshot entry for it is ignored.
    /// `ledger` must be `Some` exactly when the configuration builds a
    /// phase-1 cache.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch (or the
    /// underlying prepare error). Restore never returns a partially
    /// trusted sampler.
    pub fn restore(
        config: SamplerConfig,
        g: &Graph,
        p: &PMatrix,
        levels: Vec<Option<PMatrix>>,
        ledger: Option<&RoundLedger>,
    ) -> Result<Self, String> {
        let fresh = PreparedSampler::new(config, g).map_err(|e| format!("prepare failed: {e}"))?;
        if fresh.data.p != *p {
            return Err(
                "transition matrix mismatch (config, graph, or code version changed)".into(),
            );
        }
        match (&fresh.data.phase1, ledger) {
            (Some(cache), Some(snap_ledger)) => {
                if !cache.ledger.same_totals(snap_ledger) {
                    return Err("phase-1 ledger mismatch (config or code version changed)".into());
                }
                if levels.len() != cache.powers.len() {
                    return Err(format!(
                        "phase-1 table has {} levels, snapshot has {}",
                        cache.powers.len(),
                        levels.len()
                    ));
                }
                for (k, level) in levels.into_iter().enumerate() {
                    let Some(m) = level else { continue };
                    if k == 0 || cache.powers.materialized_level(k).is_some() {
                        // Level 0 (and every eagerly built level) was
                        // just recomputed from verified inputs; the
                        // snapshot copy is redundant.
                        continue;
                    }
                    cache.powers.set_level(k, m)?;
                }
            }
            (None, None) => {
                if levels.iter().any(Option::is_some) {
                    return Err(
                        "snapshot carries phase-1 levels but this configuration builds no table"
                            .into(),
                    );
                }
            }
            (Some(_), None) => {
                return Err(
                    "snapshot lacks a phase-1 ledger but this configuration builds a table".into(),
                )
            }
            (None, Some(_)) => {
                return Err(
                    "snapshot carries a phase-1 ledger but this configuration builds no table"
                        .into(),
                )
            }
        }
        Ok(fresh)
    }
}

/// Borrowed snapshot view of a [`PreparedSampler`] — see
/// [`PreparedSampler::snapshot_state`].
pub struct PreparedState<'a> {
    /// The graph's transition matrix in its resolved representation.
    pub p: &'a PMatrix,
    /// The phase-1 doubling-table state, when the configuration builds
    /// one.
    pub phase1: Option<PreparedPhase1State<'a>>,
}

/// The phase-1 half of [`PreparedState`].
pub struct PreparedPhase1State<'a> {
    /// `levels[k]` is table level `k` (`P^{2^k}`) if materialized.
    pub levels: Vec<Option<&'a PMatrix>>,
    /// The exact ledger delta the table's construction charged.
    pub ledger: &'a RoundLedger,
}

/// Compile-time audit that the prepare-once/sample-many handle stays
/// shareable across threads: adding a `Cell`, `Rc`, or raw pointer to
/// any field (or to `Graph`/`Matrix`/`RoundLedger` below it) breaks this
/// function, not a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedSampler>();
    assert_send_sync::<CliqueTreeSampler>();
    assert_send_sync::<SampleTreeError>();
};

/// The out-of-core answer for tree inputs: a connected graph with
/// `m = n − 1` is its own unique spanning tree, so the sampler answers
/// exactly (every seed yields the same — correct — tree) in `O(m)`
/// local work and `O(1)` rounds. Recognition is one degree gather at
/// the leader plus a broadcast verdict; the tree itself needs no data
/// movement, since every edge is already known to both endpoints.
fn unique_tree_report(g: &Graph, rho: usize, ell0: u64, clique: &mut Clique) -> SampleReport {
    let n = g.n();
    clique.ledger_mut().charge(CostCategory::Gather, 1);
    clique
        .ledger_mut()
        .add_words(CostCategory::Gather, n as u64);
    clique.ledger_mut().charge(CostCategory::Broadcast, 1);
    clique.ledger_mut().add_words(CostCategory::Broadcast, 1);
    let edges: Vec<(usize, usize)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    let tree = SpanningTree::new(n, edges).expect("connected with m = n − 1 is a tree");
    let ledger = clique.take_ledger();
    SampleReport {
        tree,
        rounds: ledger.clone(),
        phases: vec![PhaseReport {
            s_size: n,
            rho: rho.min(n),
            method: PhaseMethod::UniqueTree,
            ell: ell0,
            tau: 0,
            new_vertices: n - 1,
            extensions: 0,
            rounds: ledger,
            pi_words: 0,
            placement_words: 0,
        }],
        monte_carlo_failure: false,
    }
}

/// The iterated-squaring count charged for computing `Q` (Corollary 2):
/// `k = O(n³ log 1/δ)` steps of the absorbing chain need `⌈log₂ k⌉`
/// squarings ≈ `3 log₂ n + 6`.
fn charged_schur_squarings(n: usize) -> u64 {
    (3.0 * (n as f64).log2() + 6.0).ceil() as u64
}

/// Embeds the `|S| × |S|` local transition matrix into global `n × n`
/// space as `diag(T, I)`: powers restrict to the `S` block, so the walk
/// machinery can stay in global vertex ids.
///
/// The sparse representation stores one entry per identity row outside
/// `S` plus the (zero-dropped) `S` block — for late phases, where
/// `|S| ≪ n`, that is `n + |S|²` entries instead of `n²` slots. Values
/// are identical bit for bit in both representations.
fn pad_to_global(local: &Matrix, s: &VertexSubset, n: usize, repr: Repr) -> PMatrix {
    match repr {
        Repr::Dense => {
            let mut out = Matrix::identity(n);
            for (i, &u) in s.list().iter().enumerate() {
                out[(u, u)] = 0.0;
                for (j, &v) in s.list().iter().enumerate() {
                    out[(u, v)] = local[(i, j)];
                }
            }
            PMatrix::Dense(out)
        }
        Repr::Sparse => {
            // Column-sorted scatter of each S-row; `s.list()` is not
            // necessarily sorted, so sort each row's (global column,
            // value) pairs before pushing.
            let mut local_of = vec![usize::MAX; n];
            for (i, &u) in s.list().iter().enumerate() {
                local_of[u] = i;
            }
            let mut b = CsrMatrix::builder(n, n);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(s.len());
            for (u, &local_idx) in local_of.iter().enumerate() {
                if local_idx == usize::MAX {
                    b.push(u, 1.0);
                } else {
                    let i = local_idx;
                    row.clear();
                    for (j, &v) in s.list().iter().enumerate() {
                        row.push((v, local[(i, j)]));
                    }
                    row.sort_unstable_by_key(|&(v, _)| v);
                    for &(v, x) in &row {
                        b.push(v, x);
                    }
                }
                b.finish_row();
            }
            PMatrix::Sparse(b.build())
        }
    }
}

/// An arbitrary (BFS) spanning tree — the Monte Carlo failure output.
fn bfs_tree(g: &Graph) -> SpanningTree {
    let n = g.n();
    let mut parent = vec![usize::MAX; n];
    parent[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut edges = Vec::with_capacity(n - 1);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if parent[v] == usize::MAX {
                parent[v] = u;
                edges.push((u, v));
                queue.push_back(v);
            }
        }
    }
    SpanningTree::new(n, edges).expect("connected graph has a BFS tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Placement, WalkLength};
    use crate::report::PhaseMethod;
    use cct_graph::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn quick_config() -> SamplerConfig {
        SamplerConfig::new()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost)
    }

    #[test]
    fn samples_valid_trees_on_suite() {
        let mut r = rng(100);
        for g in [
            generators::complete(9),
            generators::petersen(),
            generators::grid(3, 3),
            generators::lollipop(5, 4),
            generators::cycle(8),
            generators::k_dense_irregular(9),
            generators::wheel(9),
        ] {
            let sampler = CliqueTreeSampler::new(quick_config());
            let report = sampler.sample(&g, &mut r).unwrap();
            assert!(!report.monte_carlo_failure, "failure on n = {}", g.n());
            assert_eq!(report.tree.n(), g.n());
            for &(u, v) in report.tree.edges() {
                assert!(g.has_edge(u, v), "foreign edge ({u},{v})");
            }
            assert!(report.total_rounds() > 0);
            assert!(!report.phases.is_empty());
        }
    }

    #[test]
    fn phases_visit_rho_new_vertices() {
        let g = generators::complete(16);
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(101);
        let report = sampler.sample(&g, &mut r).unwrap();
        // ρ = 4: every non-final top-down phase contributes 3 new
        // vertices (ρ − 1, since v_f is already visited).
        for p in &report.phases[..report.phases.len() - 1] {
            assert_eq!(p.rho, 4);
            assert_eq!(p.new_vertices, 3, "phase: {p:?}");
        }
        // 15 vertices need first-visit edges in total.
        let total_new: usize = report.phases.iter().map(|p| p.new_vertices).sum();
        assert_eq!(total_new, 15);
    }

    #[test]
    fn prepared_sampler_is_bit_identical_to_cold() {
        // Same seed ⇒ same tree AND same ledger, across graphs, engines,
        // and repeated draws from one prepared handle.
        for engine in [
            EngineChoice::UnitCost,
            EngineChoice::FastOracle {
                alpha: cct_sim::ALPHA,
            },
            EngineChoice::Semiring,
        ] {
            for g in [
                generators::complete(12),
                generators::petersen(),
                generators::lollipop(5, 4),
            ] {
                let config = quick_config().engine(engine);
                let sampler = CliqueTreeSampler::new(config);
                let prepared = sampler.prepare(&g).unwrap();
                let mut r_cold = rng(300);
                let mut r_prep = rng(300);
                for draw in 0..3 {
                    let cold = sampler.sample(&g, &mut r_cold).unwrap();
                    let prep = prepared.sample(&mut r_prep).unwrap();
                    assert_eq!(cold.tree, prep.tree, "{engine:?}, draw {draw}");
                    assert_eq!(cold.rounds, prep.rounds, "{engine:?}, draw {draw}");
                    assert_eq!(
                        cold.phases.len(),
                        prep.phases.len(),
                        "{engine:?}, draw {draw}"
                    );
                }
            }
        }
    }

    #[test]
    fn prepared_sampler_works_at_every_worker_count() {
        let g = generators::complete(16);
        let reference = {
            let sampler = CliqueTreeSampler::new(quick_config());
            sampler.sample(&g, &mut rng(301)).unwrap()
        };
        for workers in [1usize, 4] {
            let sampler =
                CliqueTreeSampler::new(quick_config().workers(cct_sim::Workers::Fixed(workers)));
            let prepared = sampler.prepare(&g).unwrap();
            let report = prepared.sample(&mut rng(301)).unwrap();
            assert_eq!(report.tree, reference.tree, "workers = {workers}");
            assert_eq!(report.rounds, reference.rounds, "workers = {workers}");
        }
    }

    #[test]
    fn shared_prepared_sampler_is_bit_identical_across_threads() {
        // One Arc'd preparation, many concurrent samplers: each thread's
        // draw must equal the cold single-threaded run at its own seed.
        let g = generators::complete(12);
        let sampler = CliqueTreeSampler::new(quick_config());
        let shared = sampler.prepare(&g).unwrap().into_shared();
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let shared = std::sync::Arc::clone(&shared);
                    s.spawn(move || shared.sample(&mut rng(400 + i)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, prep) in results.iter().enumerate() {
            let cold = sampler.sample(&g, &mut rng(400 + i as u64)).unwrap();
            assert_eq!(cold.tree, prep.tree, "thread {i}");
            assert_eq!(cold.rounds, prep.rounds, "thread {i}");
        }
    }

    #[test]
    fn prepared_sampler_validates_input() {
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            CliqueTreeSampler::new(quick_config())
                .prepare(&disconnected)
                .unwrap_err(),
            SampleTreeError::Disconnected
        );
        let trivial = Graph::from_edges(1, &[]).unwrap();
        let prepared = CliqueTreeSampler::new(quick_config())
            .prepare(&trivial)
            .unwrap();
        assert!(prepared
            .sample(&mut rng(302))
            .unwrap()
            .tree
            .edges()
            .is_empty());
        assert_eq!(prepared.graph().n(), 1);
    }

    #[test]
    fn prepared_sampler_las_vegas_extensions_match_cold() {
        // Las Vegas phase-1 extensions mutate a *clone* of the cached
        // table; the cache must stay pristine and results identical.
        let g = generators::complete(12);
        let config = SamplerConfig::new()
            .rho(6)
            .walk_length(WalkLength::Fixed(4))
            .variant(Variant::LasVegas)
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let prepared = sampler.prepare(&g).unwrap();
        let mut r_cold = rng(303);
        let mut r_prep = rng(303);
        for _ in 0..2 {
            let cold = sampler.sample(&g, &mut r_cold).unwrap();
            let prep = prepared.sample(&mut r_prep).unwrap();
            assert!(prep.phases.iter().any(|p| p.extensions > 0));
            assert_eq!(cold.tree, prep.tree);
            assert_eq!(cold.rounds, prep.rounds);
        }
    }

    #[test]
    fn weighted_graphs_supported() {
        let mut r = rng(102);
        let g =
            cct_graph::generators::with_random_integer_weights(&generators::complete(7), 5, &mut r)
                .unwrap();
        let sampler = CliqueTreeSampler::new(quick_config());
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 6);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(103);
        assert_eq!(
            sampler.sample(&g, &mut r).unwrap_err(),
            SampleTreeError::Disconnected
        );
    }

    #[test]
    fn single_vertex_trivial() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(104);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(report.tree.edges().is_empty());
        assert_eq!(report.num_phases(), 0);
    }

    #[test]
    fn two_vertex_graph() {
        let g = generators::path(2);
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(105);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert_eq!(report.tree.edges(), &[(0, 1)]);
        // |S| = 2 is the degenerate bipartite case → direct-local.
        assert_eq!(report.phases[0].method, PhaseMethod::DirectLocal);
    }

    #[test]
    fn out_of_core_tree_input_is_recognized_exactly() {
        // Forcing a tiny table cap routes even a small path out of core;
        // m = n − 1 → the unique spanning tree, identical for every seed
        // and every backend, no failure flag.
        let g = generators::path(64);
        for backend in crate::config::Backend::ALL {
            let config = quick_config().max_table_bytes(1).backend(backend);
            let sampler = CliqueTreeSampler::new(config);
            let report = sampler.sample(&g, &mut rng(500)).unwrap();
            assert!(!report.monte_carlo_failure, "{backend:?}");
            assert_eq!(report.phases.len(), 1, "{backend:?}");
            assert_eq!(report.phases[0].method, PhaseMethod::UniqueTree);
            assert_eq!(report.phases[0].new_vertices, 63);
            let mut edges: Vec<_> = report.tree.edges().to_vec();
            edges.sort_unstable();
            let expected: Vec<_> = (0..63).map(|i| (i, i + 1)).collect();
            assert_eq!(edges, expected, "{backend:?}");
            assert!(report.total_rounds() > 0);
        }
    }

    #[test]
    fn out_of_core_streamed_route_samples_valid_trees() {
        // A cycle has m = n: no unique-tree shortcut, so the escape takes
        // the streamed Aldous–Broder route. Las Vegas covers fully.
        let g = generators::cycle(48);
        let config = quick_config().max_table_bytes(1).variant(Variant::LasVegas);
        let sampler = CliqueTreeSampler::new(config);
        let report = sampler.sample(&g, &mut rng(501)).unwrap();
        assert!(!report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 47);
        for p in &report.phases {
            assert_eq!(p.method, PhaseMethod::StreamedLocal);
        }
        for &(u, v) in report.tree.edges() {
            assert!(g.has_edge(u, v), "foreign edge ({u},{v})");
        }
        // Monte Carlo with a hopeless budget fails into a flagged tree.
        let config = quick_config()
            .max_table_bytes(1)
            .walk_length(WalkLength::Fixed(4));
        let report = CliqueTreeSampler::new(config)
            .sample(&generators::cycle(48), &mut rng(502))
            .unwrap();
        assert!(report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 47);
    }

    #[test]
    fn out_of_core_prepared_matches_cold() {
        // The escape decision and the streamed walk are identical on the
        // cold and prepared paths: same seed ⇒ same tree, same ledger.
        let g = generators::cycle(32);
        let config = quick_config().max_table_bytes(1).variant(Variant::LasVegas);
        let sampler = CliqueTreeSampler::new(config);
        let prepared = sampler.prepare(&g).unwrap();
        assert_eq!(prepared.repr(), Repr::Sparse, "escape forces CSR");
        let mut r_cold = rng(503);
        let mut r_prep = rng(503);
        for draw in 0..3 {
            let cold = sampler.sample(&g, &mut r_cold).unwrap();
            let prep = prepared.sample(&mut r_prep).unwrap();
            assert_eq!(cold.tree, prep.tree, "draw {draw}");
            assert_eq!(cold.rounds, prep.rounds, "draw {draw}");
        }
        // No phase-1 table is retained for out-of-core graphs: the
        // prepared state is the CSR transition matrix alone.
        assert!(prepared.matrix_bytes() < 32 * 32 * 8);
    }

    #[test]
    fn default_cap_keeps_small_graphs_on_the_matrix_route() {
        let g = generators::petersen();
        let sampler = CliqueTreeSampler::new(quick_config());
        let report = sampler.sample(&g, &mut rng(504)).unwrap();
        for p in &report.phases {
            assert!(
                matches!(p.method, PhaseMethod::TopDown | PhaseMethod::DirectLocal),
                "{:?}",
                p.method
            );
        }
    }

    #[test]
    fn prepared_matrix_bytes_grow_as_the_lazy_table_materializes() {
        // After prepare() only level 0 of the deferred table exists; the
        // first sample walks the table top-down and materializes it.
        let g = generators::complete(24);
        let sampler = CliqueTreeSampler::new(quick_config());
        let prepared = sampler.prepare(&g).unwrap();
        let before = prepared.matrix_bytes();
        prepared.sample(&mut rng(505)).unwrap();
        let after = prepared.matrix_bytes();
        assert!(
            after > before,
            "materialization must show up: {before} → {after}"
        );
        // A second draw reuses the memoized levels.
        prepared.sample(&mut rng(506)).unwrap();
        assert_eq!(prepared.matrix_bytes(), after);
    }

    #[test]
    fn monte_carlo_failure_yields_arbitrary_tree() {
        // ℓ = 4 steps cannot cover a 16-path: the failure path must
        // produce a valid (BFS) tree with the flag set.
        let g = generators::path(16);
        let config = SamplerConfig::new()
            .walk_length(WalkLength::Fixed(4))
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rng(106);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 15);
    }

    #[test]
    fn las_vegas_never_fails() {
        // ℓ = 4 steps cannot visit ρ = 6 distinct vertices, so every
        // top-down phase must extend (Appendix §5.1).
        let g = generators::complete(12);
        let config = SamplerConfig::new()
            .rho(6)
            .walk_length(WalkLength::Fixed(4))
            .variant(Variant::LasVegas)
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rng(107);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert!(report.phases.iter().any(|p| p.extensions > 0));
        assert_eq!(report.tree.edges().len(), 11);
    }

    #[test]
    fn all_placements_produce_valid_trees() {
        let g = generators::complete(12);
        let mut r = rng(108);
        for placement in [
            Placement::Matching,
            Placement::PerPairShuffle,
            Placement::Oracle,
        ] {
            let sampler = CliqueTreeSampler::new(quick_config().placement(placement));
            let report = sampler.sample(&g, &mut r).unwrap();
            assert!(!report.monte_carlo_failure, "{placement:?}");
            assert_eq!(report.tree.edges().len(), 11, "{placement:?}");
        }
    }

    #[test]
    fn exact_variant_runs() {
        let g = generators::complete(10);
        let config = SamplerConfig::exact_variant()
            .walk_length(WalkLength::ScaledCubic { factor: 4.0 })
            .engine(EngineChoice::UnitCost);
        let sampler = CliqueTreeSampler::new(config);
        let mut r = rng(109);
        let report = sampler.sample(&g, &mut r).unwrap();
        assert!(!report.monte_carlo_failure);
        assert_eq!(report.tree.edges().len(), 9);
    }

    #[test]
    fn fast_oracle_rounds_exceed_unit_cost() {
        let g = generators::complete(16);
        let mut r1 = rng(110);
        let mut r2 = rng(110);
        let unit = CliqueTreeSampler::new(quick_config())
            .sample(&g, &mut r1)
            .unwrap();
        let oracle = CliqueTreeSampler::new(quick_config().engine(EngineChoice::FastOracle {
            alpha: cct_sim::ALPHA,
        }))
        .sample(&g, &mut r2)
        .unwrap();
        assert!(oracle.total_rounds() > unit.total_rounds());
        // Same seed, same tree: the engine changes only the ledger.
        assert_eq!(unit.tree, oracle.tree);
    }

    #[test]
    fn report_phase_count_matches_sqrt_n_scaling() {
        let g = generators::complete(36);
        let sampler = CliqueTreeSampler::new(quick_config());
        let mut r = rng(111);
        let report = sampler.sample(&g, &mut r).unwrap();
        // ρ = 6 → ~35/5 = 7 phases.
        assert!(
            report.num_phases() >= 5 && report.num_phases() <= 10,
            "{}",
            report.num_phases()
        );
    }
}
