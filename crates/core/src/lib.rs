//! # cct-core
//!
//! The primary contribution of Pemmaraju–Roy–Sobel, *Sublinear-Time
//! Sampling of Spanning Trees in the Congested Clique* (PODC 2025): an
//! `Õ(n^{1/2+α})`-round algorithm for sampling an approximately uniform
//! spanning tree, plus the Appendix's exact `Õ(n^{2/3+α})` variant.
//!
//! The sampler implements the Aldous–Broder algorithm phase by phase
//! (Outline 3): each phase takes a top-down-filled, truncated random walk
//! on the Schur complement of the unvisited region (skipping previously
//! visited vertices), discovers its truncation point by distributed
//! binary search (Algorithm 3), re-samples midpoint placements from the
//! collected multiset via weighted perfect matchings (Lemma 3), and
//! recovers first-visit edges in the input graph through the shortcut
//! graph (Algorithm 4). Rounds are charged by the `cct-sim` Congested
//! Clique simulator, with matrix multiplications priced by a pluggable
//! engine (`α = 0.157` fast-matmul oracle by default).
//!
//! # Examples
//!
//! Sampling a tree and inspecting where the rounds went:
//!
//! ```
//! use cct_core::{CliqueTreeSampler, SamplerConfig, WalkLength};
//! use cct_graph::generators;
//! use cct_sim::CostCategory;
//! use rand::SeedableRng;
//!
//! let g = generators::petersen();
//! let sampler = CliqueTreeSampler::new(
//!     SamplerConfig::new().walk_length(WalkLength::Fixed(1 << 12)),
//! );
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let report = sampler.sample(&g, &mut rng)?;
//! assert_eq!(report.tree.edges().len(), 9);
//! assert!(report.rounds.rounds(CostCategory::MatMul) > 0);
//! # Ok::<(), cct_core::SampleTreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod direction4;
mod mst;
mod phase;
mod report;
mod sampler;

pub use cct_sim::Workers;
pub use config::{
    Backend, EngineChoice, Placement, Precision, SamplerConfig, SchurComputation, Variant,
    WalkLength,
};
pub use direction4::{direction4_sample, Direction4Report};
pub use mst::{MstEngine, MstReport};
pub use phase::PhaseError;
pub use report::{PhaseMethod, PhaseReport, SampleReport};
pub use sampler::{
    CliqueTreeSampler, PreparedPhase1State, PreparedSampler, PreparedState, SampleTreeError,
};
