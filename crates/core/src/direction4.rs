//! "Direction 4" (§1.4): the conceptually simpler `o(n)`-round sampler
//! the paper sketches as future work — and this repository implements.
//!
//! The idea: Theorem 2 builds a length-`Θ(n)` random walk in
//! `O(log² n)` rounds via load-balanced doubling. By Barnes–Feige \[8\], a
//! length-`n` walk visits `Ω(n^{1/3})` distinct vertices, so running one
//! doubling walk per phase on the Schur complement of the unvisited
//! region should cover the graph in `O(n^{2/3})` phases — worse than
//! Theorem 1's `Õ(n^{1/2+α})`, but with no top-down filling, no
//! truncation search, and no matching machinery.
//!
//! The paper's caveat (which this implementation makes measurable): the
//! Barnes–Feige bound is only proven for *unweighted* graphs, and after
//! phase 1 the walk runs on the weighted `Schur(G, S)`. Experiment E14
//! measures the realized distinct-vertex harvest per phase.
//!
//! Correctness needs no truncation at fresh vertices: the concatenated
//! phase walks form one continuous walk on `G` watched on shrinking
//! sets, so the first-visit edges (recovered per phase through the
//! shortcut graph, Algorithm 4) are exactly Aldous–Broder's tree edges.

use crate::sampler::SampleTreeError;
use cct_doubling::{doubling_walks, Balancing};
use cct_graph::{Graph, SpanningTree};
use cct_schur::{sample_first_visit_edge, schur_graph, shortcut_exact, VertexSubset};
use cct_sim::{Clique, CostCategory, RoundLedger};
use rand::Rng;

/// Report of a Direction-4 run.
#[derive(Debug, Clone)]
pub struct Direction4Report {
    /// The sampled spanning tree.
    pub tree: SpanningTree,
    /// Total rounds charged.
    pub rounds: RoundLedger,
    /// Number of phases (claim: `O(n^{2/3})` if Barnes–Feige held on the
    /// weighted Schur graphs).
    pub phases: usize,
    /// New vertices harvested per phase (the Barnes–Feige quantity).
    pub new_per_phase: Vec<usize>,
}

/// Samples a uniform spanning tree with the Direction-4 strategy: per
/// phase, one length-`⌈walk_factor·|S|⌉` doubling walk on
/// `Schur(G, S)`, first-visit edges through Algorithm 4.
///
/// The walk runs on the clique through the load-balanced doubling of §3
/// (rounds measured); Schur/shortcut construction is charged at the same
/// iterated-squaring rate as the main sampler.
///
/// # Errors
///
/// Returns [`SampleTreeError::Disconnected`] / `EmptyGraph` on invalid
/// input.
///
/// # Panics
///
/// Panics if `walk_factor` is not positive or 64·n phases fail to cover
/// the graph (cannot happen for positive factors).
///
/// # Examples
///
/// ```
/// use cct_core::direction4_sample;
/// use cct_graph::generators;
/// use rand::SeedableRng;
///
/// let g = generators::complete(12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let report = direction4_sample(&g, 1.0, &mut rng)?;
/// assert_eq!(report.tree.edges().len(), 11);
/// # Ok::<(), cct_core::SampleTreeError>(())
/// ```
pub fn direction4_sample<R: Rng + ?Sized>(
    g: &Graph,
    walk_factor: f64,
    rng: &mut R,
) -> Result<Direction4Report, SampleTreeError> {
    assert!(walk_factor > 0.0, "walk_factor must be positive");
    let n = g.n();
    if n == 0 {
        return Err(SampleTreeError::EmptyGraph);
    }
    if !g.is_connected() {
        return Err(SampleTreeError::Disconnected);
    }
    let mut clique = Clique::new(n);
    if n == 1 {
        return Ok(Direction4Report {
            tree: SpanningTree::new(1, Vec::new()).expect("trivial"),
            rounds: RoundLedger::new(),
            phases: 0,
            new_per_phase: Vec::new(),
        });
    }
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut vf = 0usize;
    let mut edges = Vec::with_capacity(n - 1);
    let mut new_per_phase = Vec::new();
    let mut remaining = n - 1;
    let mut phases = 0usize;
    while remaining > 0 {
        phases += 1;
        assert!(
            phases <= 64 * n,
            "phase cap exceeded — walk_factor too small?"
        );
        let s_vertices: Vec<usize> = (0..n)
            .filter(|&v| !visited[v])
            .chain(std::iter::once(vf))
            .collect();
        let s = VertexSubset::new(n, &s_vertices);

        // Derivative graphs. Phase 1: S = V, the walk is on G itself and
        // the shortcut matrix is the identity.
        let (phase_graph, q) = if s.len() == n {
            (g.clone(), cct_linalg::Matrix::identity(n))
        } else {
            let q = shortcut_exact(g, &s);
            // Same charging rule as the main sampler: Corollary 2's
            // 2n × 2n squarings. Direction 4 exists to *remove* the
            // per-phase matmul of the walk itself, not of the Schur
            // construction (the paper's Direction 1 discusses that).
            let squarings = (3.0 * (n as f64).log2() + 6.0).ceil() as u64;
            clique
                .ledger_mut()
                .charge(CostCategory::MatMul, squarings * 4);
            let h = schur_graph(g, &s).expect("Schur of a Laplacian is a graph");
            (h, q)
        };

        // One doubling walk of length ~ walk_factor·|S| on the phase
        // graph, run on a |S|-machine sub-clique (machines hosting S).
        let tau = ((walk_factor * s.len() as f64).ceil() as u64).max(2);
        let mut sub = Clique::new(phase_graph.n().max(2));
        let start_local = if s.len() == n {
            vf
        } else {
            s.local_index(vf).expect("vf ∈ S")
        };
        if phase_graph.n() == 1 {
            break; // nothing left to walk to (cannot happen: remaining > 0)
        }
        let (walks, _) = doubling_walks(
            &mut sub,
            &phase_graph,
            tau,
            Balancing::Balanced { c: 1 },
            rng,
        );
        clique.ledger_mut().merge(sub.ledger());
        let walk = &walks[start_local];

        // Algorithm 4 on first visits (global ids).
        clique.ledger_mut().charge(CostCategory::FirstVisit, 3);
        let to_global = |local: usize| if s.len() == n { local } else { s.global(local) };
        let mut fresh = 0usize;
        for w in walk.windows(2) {
            let (prev, v) = (to_global(w[0]), to_global(w[1]));
            if visited[v] {
                continue;
            }
            let (u, vv) = sample_first_visit_edge(g, &s, &q, prev, v, rng).ok_or(
                SampleTreeError::Phase(crate::phase::PhaseError::DegenerateDistribution),
            )?;
            edges.push((u, vv));
            visited[v] = true;
            remaining -= 1;
            fresh += 1;
            if remaining == 0 {
                break;
            }
        }
        new_per_phase.push(fresh);
        vf = to_global(*walk.last().expect("non-empty walk"));
    }
    Ok(Direction4Report {
        tree: SpanningTree::new(n, edges).expect("first-visit edges span"),
        rounds: clique.take_ledger(),
        phases,
        new_per_phase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_graph::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn produces_valid_trees() {
        let mut r = rng(1);
        for g in [
            generators::complete(12),
            generators::petersen(),
            generators::grid(3, 4),
            generators::lollipop(6, 5),
            generators::k_dense_irregular(12),
        ] {
            let report = direction4_sample(&g, 1.0, &mut r).unwrap();
            assert_eq!(report.tree.n(), g.n());
            for &(u, v) in report.tree.edges() {
                assert!(g.has_edge(u, v));
            }
            assert_eq!(report.new_per_phase.iter().sum::<usize>(), g.n() - 1);
            assert!(report.rounds.total_rounds() > 0);
        }
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut r = rng(2);
        assert!(matches!(
            direction4_sample(&g, 1.0, &mut r),
            Err(SampleTreeError::Disconnected)
        ));
    }

    #[test]
    fn uniform_on_k4() {
        use cct_walks::stats;
        let g = generators::complete(4);
        let exact = cct_graph::spanning_tree_distribution(&g);
        let mut r = rng(3);
        let trials = 10_000;
        let counts = stats::empirical_counts(
            (0..trials).map(|_| direction4_sample(&g, 1.0, &mut r).unwrap().tree),
        );
        let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn uniform_on_weighted_triangle() {
        use cct_walks::stats;
        let g = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        let exact = cct_graph::spanning_tree_distribution(&g);
        let mut r = rng(4);
        let trials = 10_000;
        let counts = stats::empirical_counts(
            (0..trials).map(|_| direction4_sample(&g, 2.0, &mut r).unwrap().tree),
        );
        let (stat, crit) = stats::goodness_of_fit(&counts, &exact, trials);
        assert!(stat < crit, "chi² = {stat:.1} ≥ {crit:.1}");
    }

    #[test]
    fn phase_count_scales_sublinearly() {
        // Length-|S| walks harvest ≫ 1 vertex per phase, so phases ≪ n.
        let mut r = rng(5);
        let g = generators::random_regular(64, 4, &mut r);
        let report = direction4_sample(&g, 1.0, &mut r).unwrap();
        assert!(
            report.phases <= 24,
            "{} phases for n = 64 — harvest too small",
            report.phases
        );
    }
}
