//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! Used to validate spanning trees (acyclicity + connectivity) and to test
//! graph connectivity cheaply.

/// A disjoint-set forest over `0..n`.
///
/// # Examples
///
/// ```
/// use cct_graph::DisjointSet;
///
/// let mut dsu = DisjointSet::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(dsu.union(2, 3));
/// assert!(!dsu.union(1, 0)); // already joined
/// assert_eq!(dsu.components(), 2);
/// assert!(dsu.connected(0, 1));
/// assert!(!dsu.connected(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl DisjointSet {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Returns the representative of `x`'s set (path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, mut x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`.
    ///
    /// Returns `true` if they were previously in different sets.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_disjoint() {
        let mut d = DisjointSet::new(5);
        assert_eq!(d.components(), 5);
        for i in 0..5 {
            assert_eq!(d.find(i), i);
        }
    }

    #[test]
    fn union_reduces_components() {
        let mut d = DisjointSet::new(4);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(d.union(2, 3));
        assert_eq!(d.components(), 1);
        assert!(!d.union(3, 0));
    }

    #[test]
    fn chain_compresses() {
        let mut d = DisjointSet::new(100);
        for i in 0..99 {
            d.union(i, i + 1);
        }
        assert!(d.connected(0, 99));
        assert_eq!(d.components(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut d = DisjointSet::new(2);
        let _ = d.find(2);
    }
}
