//! Streaming edge-list I/O: road-network / web-graph-scale inputs as a
//! first-class graph source next to the generator families.
//!
//! The format is the lowest common denominator of SNAP, DIMACS-lite and
//! Matrix-Market-adjacent dumps: one edge per line, `u v` or `u v w`,
//! separated by whitespace and/or commas; blank lines and lines starting
//! with `#`, `%` or `//` are comments. Vertex ids are `0`-based and the
//! graph has `max(id) + 1` vertices — isolated trailing vertices cannot
//! be expressed (an edge list names only endpoints), which is fine for
//! the sampler: it requires connected inputs anyway.
//!
//! Reading is streaming — one `BufRead` line at a time, `O(m)` peak
//! memory for the edge triples — so a million-vertex path costs ~24 MB
//! of transient triples plus the final `O(nnz)` adjacency, never `Θ(n²)`
//! of anything. Validation (range, self-loops, duplicates, weight
//! domain) is delegated to [`Graph::from_weighted_edges`], so a file
//! rejects with the same typed [`GraphError`] a programmatic caller
//! would see.
//!
//! The spec form `file:PATH` ([`crate::spec`]) routes CLI `--graph` and
//! service `graph_spec` requests here.

use crate::{Graph, GraphError};
use std::io::BufRead;
use std::path::Path;

/// A failure to load an edge-list file.
#[derive(Debug)]
pub enum EdgeListError {
    /// The file could not be opened or read.
    Io(std::io::Error),
    /// A line failed to parse (1-based line number and explanation).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The edges parsed but do not form a valid simple weighted graph
    /// (out-of-range id, self-loop, duplicate, bad weight).
    Graph(GraphError),
    /// The file contained no edges at all.
    Empty,
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list unreadable: {e}"),
            EdgeListError::Parse { line, message } => {
                write!(f, "edge list line {line}: {message}")
            }
            EdgeListError::Graph(e) => write!(f, "edge list is not a valid graph: {e:?}"),
            EdgeListError::Empty => f.write_str("edge list contains no edges"),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

impl From<GraphError> for EdgeListError {
    fn from(e: GraphError) -> Self {
        EdgeListError::Graph(e)
    }
}

/// Parses an edge list from any buffered reader (see the module docs for
/// the format).
///
/// # Errors
///
/// [`EdgeListError`] on I/O failure, malformed lines, invalid edges, or
/// an edge-free input.
///
/// # Examples
///
/// ```
/// use cct_graph::io::parse_edge_list;
///
/// let g = parse_edge_list("# a 3-path\n0 1\n1,2 0.5\n".as_bytes()).unwrap();
/// assert_eq!((g.n(), g.m()), (3, 2));
/// ```
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<Graph, EdgeListError> {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_id = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty()
            || text.starts_with('#')
            || text.starts_with('%')
            || text.starts_with("//")
        {
            continue;
        }
        let lineno = idx + 1;
        let mut fields = text
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|f| !f.is_empty());
        let parse_id = |s: &str| -> Result<usize, EdgeListError> {
            s.parse::<usize>().map_err(|_| EdgeListError::Parse {
                line: lineno,
                message: format!("bad vertex id '{s}'"),
            })
        };
        let u = parse_id(fields.next().ok_or(EdgeListError::Parse {
            line: lineno,
            message: "missing source vertex".into(),
        })?)?;
        let v = parse_id(fields.next().ok_or(EdgeListError::Parse {
            line: lineno,
            message: "missing target vertex".into(),
        })?)?;
        let w = match fields.next() {
            None => 1.0,
            Some(s) => s.parse::<f64>().map_err(|_| EdgeListError::Parse {
                line: lineno,
                message: format!("bad weight '{s}'"),
            })?,
        };
        if let Some(extra) = fields.next() {
            return Err(EdgeListError::Parse {
                line: lineno,
                message: format!("unexpected trailing field '{extra}'"),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return Err(EdgeListError::Empty);
    }
    Ok(Graph::from_weighted_edges(max_id + 1, &edges)?)
}

/// Loads an edge-list file (see the module docs for the format).
///
/// # Errors
///
/// [`EdgeListError`] on I/O failure, malformed lines, invalid edges, or
/// an edge-free file.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_whitespace_and_comma_forms() {
        for text in ["0 1\n1 2\n2 3\n", "0,1\n1,2\n2,3\n", "0\t1\n1, 2\n2 , 3\n"] {
            let g = parse_edge_list(text.as_bytes()).unwrap();
            assert_eq!((g.n(), g.m()), (4, 3), "{text:?}");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn comments_blanks_and_weights() {
        let text = "# comment\n% more\n// and more\n\n0 1 2.5\n1 2\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
        let w: Vec<_> = g.edges().to_vec();
        assert_eq!(w[0], (0, 1, 2.5));
        assert_eq!(w[1], (1, 2, 1.0));
    }

    #[test]
    fn n_is_max_id_plus_one() {
        let g = parse_edge_list("5 9\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 1);
        assert!(!g.is_connected(), "ids 0..5 are isolated");
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        for (text, want_line) in [
            ("0 1\nx 2\n", 2),
            ("0\n", 1),
            ("0 1\n\n# c\n1 two\n", 4),
            ("0 1 1.0 extra\n", 1),
            ("0 1 heavy\n", 1),
        ] {
            match parse_edge_list(text.as_bytes()) {
                Err(EdgeListError::Parse { line, .. }) => {
                    assert_eq!(line, want_line, "{text:?}")
                }
                other => panic!("{text:?}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn graph_validation_is_delegated() {
        assert!(matches!(
            parse_edge_list("0 0\n".as_bytes()),
            Err(EdgeListError::Graph(GraphError::SelfLoop(0)))
        ));
        assert!(matches!(
            parse_edge_list("0 1\n1 0\n".as_bytes()),
            Err(EdgeListError::Graph(GraphError::DuplicateEdge(0, 1)))
        ));
        assert!(matches!(
            parse_edge_list("0 1 -2\n".as_bytes()),
            Err(EdgeListError::Graph(_))
        ));
        assert!(matches!(
            parse_edge_list("".as_bytes()),
            Err(EdgeListError::Empty)
        ));
        assert!(matches!(
            parse_edge_list("# only comments\n".as_bytes()),
            Err(EdgeListError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cct-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle4.el");
        std::fs::write(&path, "0 1\n1 2\n2 3\n0 3\n").unwrap();
        let g = read_edge_list(&path).unwrap();
        assert_eq!((g.n(), g.m()), (4, 4));
        assert!(read_edge_list(dir.join("missing.el")).is_err());
        std::fs::remove_file(&path).ok();
    }
}
