//! Streaming edge-list I/O: road-network / web-graph-scale inputs as a
//! first-class graph source next to the generator families.
//!
//! The format is the lowest common denominator of SNAP, DIMACS-lite and
//! Matrix-Market-adjacent dumps: one edge per line, `u v` or `u v w`,
//! separated by whitespace and/or commas; blank lines and lines starting
//! with `#`, `%` or `//` are comments. Vertex ids are `0`-based and the
//! graph has `max(id) + 1` vertices — isolated trailing vertices cannot
//! be expressed (an edge list names only endpoints), which is fine for
//! the sampler: it requires connected inputs anyway.
//!
//! The weight column is load-bearing: a file is either entirely `u v`
//! (every edge gets weight 1) or entirely `u v w` — a file that mixes
//! the two forms is rejected with a typed [`EdgeListError::MixedWeights`]
//! naming the first offending line, because silently defaulting some
//! rows to weight 1 turns a truncated column into a plausible-looking
//! but wrong weighting. Weight values are validated at parse time too:
//! `NaN`, infinities and non-positive weights fail with the 1-based line
//! number instead of surfacing later as a positionless [`GraphError`].
//!
//! Reading is streaming — one `BufRead` line at a time, `O(m)` peak
//! memory for the edge triples — so a million-vertex path costs ~24 MB
//! of transient triples plus the final `O(nnz)` adjacency, never `Θ(n²)`
//! of anything. Structural validation (range, self-loops, duplicates) is
//! delegated to [`Graph::from_weighted_edges`], so a file rejects with
//! the same typed [`GraphError`] a programmatic caller would see.
//!
//! The spec form `file:PATH` ([`crate::spec`]) routes CLI `--graph` and
//! service `graph_spec` requests here.

use crate::{Graph, GraphError};
use std::io::BufRead;
use std::path::Path;

/// A failure to load an edge-list file.
#[derive(Debug)]
pub enum EdgeListError {
    /// The file could not be opened or read.
    Io(std::io::Error),
    /// A line failed to parse (1-based line number and explanation).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file mixes `u v` and `u v w` lines. The payload is the
    /// 1-based line number of the first line whose form disagrees with
    /// the lines before it.
    MixedWeights {
        /// 1-based line number of the first inconsistent line.
        line: usize,
    },
    /// The edges parsed but do not form a valid simple weighted graph
    /// (out-of-range id, self-loop, duplicate, bad weight).
    Graph(GraphError),
    /// The file contained no edges at all.
    Empty,
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list unreadable: {e}"),
            EdgeListError::Parse { line, message } => {
                write!(f, "edge list line {line}: {message}")
            }
            EdgeListError::MixedWeights { line } => write!(
                f,
                "edge list line {line}: mixes weighted 'u v w' and unweighted 'u v' lines \
                 (the weight column must be all-present or all-absent)"
            ),
            EdgeListError::Graph(e) => write!(f, "edge list is not a valid graph: {e:?}"),
            EdgeListError::Empty => f.write_str("edge list contains no edges"),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

impl From<GraphError> for EdgeListError {
    fn from(e: GraphError) -> Self {
        EdgeListError::Graph(e)
    }
}

/// Parses an edge list from any buffered reader (see the module docs for
/// the format).
///
/// # Errors
///
/// [`EdgeListError`] on I/O failure, malformed lines, invalid edges, or
/// an edge-free input.
///
/// # Examples
///
/// ```
/// use cct_graph::io::parse_edge_list;
///
/// let g = parse_edge_list("# a weighted 3-path\n0 1 2\n1,2 0.5\n".as_bytes()).unwrap();
/// assert_eq!((g.n(), g.m()), (3, 2));
/// assert_eq!(g.edge_weight(0, 1), Some(2.0));
/// ```
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<Graph, EdgeListError> {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_id = 0usize;
    // Whether the file's data lines carry a weight column — set by the
    // first data line, enforced on every later one.
    let mut weighted: Option<bool> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty()
            || text.starts_with('#')
            || text.starts_with('%')
            || text.starts_with("//")
        {
            continue;
        }
        let lineno = idx + 1;
        let mut fields = text
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|f| !f.is_empty());
        let parse_id = |s: &str| -> Result<usize, EdgeListError> {
            s.parse::<usize>().map_err(|_| EdgeListError::Parse {
                line: lineno,
                message: format!("bad vertex id '{s}'"),
            })
        };
        let u = parse_id(fields.next().ok_or(EdgeListError::Parse {
            line: lineno,
            message: "missing source vertex".into(),
        })?)?;
        let v = parse_id(fields.next().ok_or(EdgeListError::Parse {
            line: lineno,
            message: "missing target vertex".into(),
        })?)?;
        let w = match fields.next() {
            None => {
                if weighted == Some(true) {
                    return Err(EdgeListError::MixedWeights { line: lineno });
                }
                weighted = Some(false);
                1.0
            }
            Some(s) => {
                if weighted == Some(false) {
                    return Err(EdgeListError::MixedWeights { line: lineno });
                }
                weighted = Some(true);
                let w = s.parse::<f64>().map_err(|_| EdgeListError::Parse {
                    line: lineno,
                    message: format!("bad weight '{s}'"),
                })?;
                // `f64::parse` accepts "nan"/"inf"; reject the weight
                // domain here so the error carries a line number instead
                // of a positionless GraphError::BadWeight later.
                if !w.is_finite() || w <= 0.0 {
                    return Err(EdgeListError::Parse {
                        line: lineno,
                        message: format!("weight '{s}' is not a finite positive number"),
                    });
                }
                w
            }
        };
        if let Some(extra) = fields.next() {
            return Err(EdgeListError::Parse {
                line: lineno,
                message: format!("unexpected trailing field '{extra}'"),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return Err(EdgeListError::Empty);
    }
    Ok(Graph::from_weighted_edges(max_id + 1, &edges)?)
}

/// Loads an edge-list file (see the module docs for the format).
///
/// # Errors
///
/// [`EdgeListError`] on I/O failure, malformed lines, invalid edges, or
/// an edge-free file.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_whitespace_and_comma_forms() {
        for text in ["0 1\n1 2\n2 3\n", "0,1\n1,2\n2,3\n", "0\t1\n1, 2\n2 , 3\n"] {
            let g = parse_edge_list(text.as_bytes()).unwrap();
            assert_eq!((g.n(), g.m()), (4, 3), "{text:?}");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn comments_blanks_and_weights() {
        let text = "# comment\n% more\n// and more\n\n0 1 2.5\n1 2 1\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
        let w: Vec<_> = g.edges().to_vec();
        assert_eq!(w[0], (0, 1, 2.5));
        assert_eq!(w[1], (1, 2, 1.0));
    }

    #[test]
    fn weight_column_surfaces_in_graph() {
        let g = parse_edge_list("0,1,3\n1,2,0.25\n".as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(1, 2), Some(0.25));
        assert!(!g.has_integer_weights());
        assert_eq!(g.total_weight(), 3.25);
    }

    #[test]
    fn mixed_weighted_and_unweighted_lines_rejected() {
        // Unweighted first, weighted later — and the reverse; comments
        // and blank lines must not reset the tracked form.
        for (text, want_line) in [
            ("0 1\n1 2 2.0\n", 2),
            ("0 1 2.0\n1 2\n", 2),
            ("# c\n0 1\n\n% c\n1 2 2.0\n", 5),
            ("0,1,1.5\n# c\n1 2\n", 3),
        ] {
            match parse_edge_list(text.as_bytes()) {
                Err(EdgeListError::MixedWeights { line }) => {
                    assert_eq!(line, want_line, "{text:?}")
                }
                other => panic!("{text:?}: expected MixedWeights, got {other:?}"),
            }
        }
        let msg = parse_edge_list("0 1\n1 2 2.0\n".as_bytes())
            .unwrap_err()
            .to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("mixes weighted"), "{msg}");
    }

    #[test]
    fn weight_domain_rejected_at_parse_time_with_line_numbers() {
        // "nan"/"inf" parse as f64, and negatives/zero are syntactically
        // fine — all must still fail here, with the line number.
        for (text, want_line) in [
            ("0 1 nan\n", 1),
            ("0 1 NaN\n", 1),
            ("0 1 2.0\n1 2 inf\n", 2),
            ("0 1 1.0\n1 2 -inf\n", 2),
            ("0 1 -2\n", 1),
            ("0 1 0\n", 1),
            ("0 1 0.0\n", 1),
        ] {
            match parse_edge_list(text.as_bytes()) {
                Err(EdgeListError::Parse { line, message }) => {
                    assert_eq!(line, want_line, "{text:?}");
                    assert!(message.contains("finite positive"), "{message}");
                }
                other => panic!("{text:?}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn n_is_max_id_plus_one() {
        let g = parse_edge_list("5 9\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 1);
        assert!(!g.is_connected(), "ids 0..5 are isolated");
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        for (text, want_line) in [
            ("0 1\nx 2\n", 2),
            ("0\n", 1),
            ("0 1\n\n# c\n1 two\n", 4),
            ("0 1 1.0 extra\n", 1),
            ("0 1 heavy\n", 1),
        ] {
            match parse_edge_list(text.as_bytes()) {
                Err(EdgeListError::Parse { line, .. }) => {
                    assert_eq!(line, want_line, "{text:?}")
                }
                other => panic!("{text:?}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn graph_validation_is_delegated() {
        assert!(matches!(
            parse_edge_list("0 0\n".as_bytes()),
            Err(EdgeListError::Graph(GraphError::SelfLoop(0)))
        ));
        assert!(matches!(
            parse_edge_list("0 1\n1 0\n".as_bytes()),
            Err(EdgeListError::Graph(GraphError::DuplicateEdge(0, 1)))
        ));
        assert!(matches!(
            parse_edge_list("".as_bytes()),
            Err(EdgeListError::Empty)
        ));
        assert!(matches!(
            parse_edge_list("# only comments\n".as_bytes()),
            Err(EdgeListError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cct-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle4.el");
        std::fs::write(&path, "0 1\n1 2\n2 3\n0 3\n").unwrap();
        let g = read_edge_list(&path).unwrap();
        assert_eq!((g.n(), g.m()), (4, 4));
        assert!(read_edge_list(dir.join("missing.el")).is_err());
        std::fs::remove_file(&path).ok();
    }
}
