//! Effective resistance and Kirchhoff edge marginals.
//!
//! The theory behind the paper (random walks ↔ electrical networks,
//! §1's opening) gives an independent, exact check on any spanning-tree
//! sampler: by Kirchhoff's theorem, the probability that edge `e`
//! appears in a (weighted-)uniform spanning tree equals
//! `w(e) · R_eff(e)`. The experiment suite uses these marginals to
//! validate the distributed sampler on graphs far too large to
//! enumerate.

use crate::Graph;
use cct_linalg::Lu;

/// The effective resistance between `u` and `v` when every edge of
/// weight `w` is a conductor of conductance `w`.
///
/// Computed by grounding vertex 0 and solving the reduced Laplacian
/// system `L̃ x = (e_u − e_v)̃`.
///
/// # Panics
///
/// Panics if the graph is disconnected, `u == v`, or either vertex is
/// out of range.
///
/// # Examples
///
/// ```
/// use cct_graph::{effective_resistance, generators};
///
/// // A 3-edge path is three unit resistors in series.
/// let g = generators::path(4);
/// assert!((effective_resistance(&g, 0, 3) - 3.0).abs() < 1e-10);
/// ```
pub fn effective_resistance(g: &Graph, u: usize, v: usize) -> f64 {
    assert!(u < g.n() && v < g.n(), "vertex out of range");
    assert_ne!(u, v, "resistance between a vertex and itself is 0");
    assert!(
        g.is_connected(),
        "effective resistance needs a connected graph"
    );
    let lu = reduced_laplacian(g);
    resistance_from_factor(&lu, u, v)
}

/// For every edge `e = {u, v, w}`: `(u, v, w·R_eff(u,v))` — the exact
/// probability that `e` belongs to a weighted-uniform spanning tree
/// (Kirchhoff). The marginals of any correct sampler must match these.
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 vertices.
pub fn spanning_tree_edge_marginals(g: &Graph) -> Vec<(usize, usize, f64)> {
    assert!(g.n() >= 2, "need at least two vertices");
    assert!(g.is_connected(), "marginals need a connected graph");
    let lu = reduced_laplacian(g);
    g.edges()
        .iter()
        .map(|&(u, v, w)| {
            (
                u,
                v,
                (w * resistance_from_factor(&lu, u, v)).clamp(0.0, 1.0),
            )
        })
        .collect()
}

/// Factorizes the Laplacian with vertex 0 grounded (rows/columns `1..n`).
fn reduced_laplacian(g: &Graph) -> Lu {
    let l = g.laplacian();
    let keep: Vec<usize> = (1..g.n()).collect();
    Lu::new(&l.submatrix(&keep, &keep)).expect("reduced Laplacian of a connected graph")
}

/// `R(u,v) = (e_u − e_v)ᵀ L̃⁻¹ (e_u − e_v)` in the grounded coordinates
/// (coordinate `i` represents vertex `i + 1`; vertex 0 is the ground).
fn resistance_from_factor(lu: &Lu, u: usize, v: usize) -> f64 {
    let mut rhs = vec![0.0; lu.dim()];
    if u != 0 {
        rhs[u - 1] += 1.0;
    }
    if v != 0 {
        rhs[v - 1] -= 1.0;
    }
    let x = lu.solve(&rhs);
    let mut r = 0.0;
    if u != 0 {
        r += x[u - 1];
    }
    if v != 0 {
        r -= x[v - 1];
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spanning_tree_distribution;

    #[test]
    fn series_and_parallel_resistors() {
        // Series: path of k unit edges → R = k.
        for k in 1..=5usize {
            let g = generators::path(k + 1);
            assert!((effective_resistance(&g, 0, k) - k as f64).abs() < 1e-10);
        }
        // Parallel: triangle → R(u,v) = (1 · 2) / (1 + 2) = 2/3.
        let g = generators::cycle(3);
        assert!((effective_resistance(&g, 0, 1) - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn weighted_resistance() {
        // Two parallel conductors of conductance 3 and 1 → R = 1/4.
        let g =
            crate::Graph::from_weighted_edges(3, &[(0, 1, 3.0), (0, 2, 1.0), (1, 2, 1.0)]).unwrap();
        // R(0,1): direct conductance 3 in parallel with the 0-2-1 path
        // (two unit resistors in series = 1/2 conductance) → 1/(3+0.5).
        assert!((effective_resistance(&g, 0, 1) - 1.0 / 3.5).abs() < 1e-10);
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n: R(u,v) = 2/n.
        for n in [3usize, 5, 8] {
            let g = generators::complete(n);
            assert!((effective_resistance(&g, 0, n - 1) - 2.0 / n as f64).abs() < 1e-10);
        }
    }

    #[test]
    fn marginals_sum_to_n_minus_one() {
        // Foster's theorem / Kirchhoff: Σ_e w_e·R_e = n − 1.
        for g in [
            generators::petersen(),
            generators::grid(3, 3),
            generators::lollipop(5, 3),
            crate::Graph::from_weighted_edges(
                4,
                &[
                    (0, 1, 2.0),
                    (1, 2, 1.0),
                    (2, 3, 3.0),
                    (3, 0, 1.0),
                    (0, 2, 2.0),
                ],
            )
            .unwrap(),
        ] {
            let total: f64 = spanning_tree_edge_marginals(&g)
                .iter()
                .map(|&(_, _, p)| p)
                .sum();
            assert!(
                (total - (g.n() as f64 - 1.0)).abs() < 1e-8,
                "n = {}: Σ = {total}",
                g.n()
            );
        }
    }

    #[test]
    fn marginals_match_enumeration() {
        let g = crate::Graph::from_weighted_edges(
            4,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 0, 1.0),
                (0, 2, 2.0),
            ],
        )
        .unwrap();
        let dist = spanning_tree_distribution(&g);
        let marginals = spanning_tree_edge_marginals(&g);
        for &(u, v, p) in &marginals {
            let exact: f64 = dist
                .iter()
                .filter(|(t, _)| t.contains_edge(u, v))
                .map(|(_, q)| q)
                .sum();
            assert!(
                (p - exact).abs() < 1e-9,
                "edge ({u},{v}): Kirchhoff {p} vs enumeration {exact}"
            );
        }
    }

    #[test]
    fn bridge_has_marginal_one() {
        let g = generators::barbell(4);
        let marginals = spanning_tree_edge_marginals(&g);
        // The bridge (3, 4) is in every spanning tree.
        let bridge = marginals
            .iter()
            .find(|&&(u, v, _)| (u, v) == (3, 4))
            .unwrap();
        assert!((bridge.2 - 1.0).abs() < 1e-9);
    }
}
