//! Textual graph specs (`complete:16`, `er:64:0.2`, …) — the one parser
//! behind the CLI's `--graph` flag and the sampling service's
//! `graph_spec` request field.
//!
//! A spec names a generator plus its size parameters, separated by `:`.
//! Sizes are validated here (domain checks and the [`MAX_SPEC_SIZE`]
//! cap) so bad user input becomes a [`SpecError`], never a generator
//! panic. Randomized families (`er:N:P`, `regular:N:D`) draw from the
//! caller-supplied RNG; callers that need a spec to denote *one* fixed
//! graph (the service's cache does) should seed that RNG as a pure
//! function of the spec string.

use crate::{generators, Graph};
use rand::Rng;

/// Largest size parameter (and largest built graph) a spec may produce.
/// The Congested Clique simulator does `Θ(n²)` work per round and the
/// dense generators allocate `Θ(n²)` edges, so larger requests would
/// stall or exhaust memory rather than fail cleanly.
pub const MAX_SPEC_SIZE: usize = 8192;

/// A malformed or out-of-domain graph spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

/// The spec grammar, for help texts.
pub const SPEC_HELP: &str = "\
complete:N  cycle:N  path:N  star:N  wheel:N
grid:RxC  torus:RxC  hypercube:D  binarytree:D
petersen  diamond  barbell:K  lollipop:K:T  bipartite:AxB
kdense:N  er:N:P  regular:N:D";

/// Builds the graph a spec describes.
///
/// # Errors
///
/// [`SpecError`] for unknown families, malformed numbers, out-of-domain
/// sizes, anything (including product shapes like `grid:RxC`) exceeding
/// [`MAX_SPEC_SIZE`] vertices, and randomized families whose retry
/// budget failed to produce a connected graph.
///
/// # Examples
///
/// ```
/// use cct_graph::spec::parse_spec;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = parse_spec("grid:3x4", &mut rng).unwrap();
/// assert_eq!(g.n(), 12);
/// assert!(parse_spec("grid:0x4", &mut rng).is_err());
/// assert!(parse_spec("no-such-family:3", &mut rng).is_err());
/// ```
pub fn parse_spec<R: Rng + ?Sized>(spec: &str, rng: &mut R) -> Result<Graph, SpecError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, SpecError> {
        let v = s
            .parse::<usize>()
            .map_err(|_| SpecError::new(format!("bad number '{s}'")))?;
        if v > MAX_SPEC_SIZE {
            return Err(SpecError::new(format!(
                "size {v} is too large for the simulated clique (max {MAX_SPEC_SIZE})"
            )));
        }
        Ok(v)
    };
    let pair = |s: &str| -> Result<(usize, usize), SpecError> {
        let (a, b) = s
            .split_once('x')
            .ok_or_else(|| SpecError::new(format!("expected RxC in '{s}'")))?;
        Ok((num(a)?, num(b)?))
    };
    // The generators assert on their domains (library contract); specs
    // check user input up front so bad input becomes an error, not a
    // panic.
    let at_least = |v: usize, min: usize, what: &str| -> Result<usize, SpecError> {
        if v < min {
            Err(SpecError::new(format!(
                "{what} must be at least {min}, got {v}"
            )))
        } else {
            Ok(v)
        }
    };
    let g = match (
        parts.first().copied().unwrap_or(""),
        parts.get(1),
        parts.get(2),
    ) {
        ("complete", Some(n), _) => generators::complete(at_least(num(n)?, 1, "N")?),
        ("cycle", Some(n), _) => generators::cycle(at_least(num(n)?, 3, "N")?),
        ("path", Some(n), _) => generators::path(at_least(num(n)?, 1, "N")?),
        ("star", Some(n), _) => generators::star(at_least(num(n)?, 2, "N")?),
        ("wheel", Some(n), _) => generators::wheel(at_least(num(n)?, 4, "N")?),
        ("grid", Some(d), _) => {
            let (r, c) = pair(d)?;
            generators::grid(at_least(r, 1, "R")?, at_least(c, 1, "C")?)
        }
        ("torus", Some(d), _) => {
            let (r, c) = pair(d)?;
            generators::torus(at_least(r, 3, "R")?, at_least(c, 3, "C")?)
        }
        ("bipartite", Some(d), _) => {
            let (a, b) = pair(d)?;
            generators::complete_bipartite(at_least(a, 1, "A")?, at_least(b, 1, "B")?)
        }
        ("hypercube", Some(d), _) => {
            let d = num(d)?;
            if !(1..=20).contains(&d) {
                return Err(SpecError::new(format!(
                    "hypercube dimension must be in 1..=20, got {d}"
                )));
            }
            generators::hypercube(d as u32)
        }
        ("binarytree", Some(d), _) => {
            let d = num(d)?;
            if d > 20 {
                return Err(SpecError::new(format!(
                    "binary tree depth must be at most 20, got {d}"
                )));
            }
            generators::binary_tree(d as u32)
        }
        ("petersen", _, _) => generators::petersen(),
        // The 4-vertex diamond (K4 minus one edge): the smallest graph
        // with non-uniform tree marginals, used throughout the
        // uniformity suites (8 spanning trees).
        ("diamond", _, _) => Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .expect("the diamond is a fixed valid graph"),
        ("barbell", Some(k), _) => generators::barbell(at_least(num(k)?, 2, "K")?),
        ("lollipop", Some(k), Some(t)) => generators::lollipop(at_least(num(k)?, 2, "K")?, num(t)?),
        ("kdense", Some(n), _) => generators::k_dense_irregular(at_least(num(n)?, 4, "N")?),
        ("er", Some(n), Some(p)) => {
            let p: f64 = p
                .parse()
                .map_err(|_| SpecError::new(format!("bad probability '{p}'")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(SpecError::new(format!(
                    "probability must be in [0,1], got {p}"
                )));
            }
            let n = at_least(num(n)?, 1, "N")?;
            if p == 0.0 && n > 1 {
                return Err(SpecError::new(format!(
                    "G({n}, 0) can never be connected; use P > 0"
                )));
            }
            generators::try_erdos_renyi_connected(n, p, rng).ok_or_else(|| {
                SpecError::new(format!(
                    "G({n}, {p}) failed to come out connected in 1000 attempts; \
                     P is far below the connectivity threshold ln(N)/N"
                ))
            })?
        }
        ("regular", Some(n), Some(d)) => {
            let (n, d) = (at_least(num(n)?, 2, "N")?, num(d)?);
            if d == 0 || d >= n {
                return Err(SpecError::new(format!(
                    "regular graph needs 1 ≤ D < N, got D={d}, N={n}"
                )));
            }
            if n.checked_mul(d).is_none_or(|nd| nd % 2 != 0) {
                return Err(SpecError::new(format!(
                    "regular graph needs N·D even, got N={n}, D={d}"
                )));
            }
            generators::try_random_regular(n, d, rng).ok_or_else(|| {
                SpecError::new(format!(
                    "failed to sample a connected {d}-regular graph on {n} vertices"
                ))
            })?
        }
        _ => return Err(SpecError::new(format!("unknown graph spec '{spec}'"))),
    };
    // Product (grid:RxC) and exponential (hypercube:D) specs can satisfy
    // the per-parameter cap yet still blow past what the O(n²) simulator
    // can hold — bound the built graph too, before any sampler allocates.
    if g.n() > MAX_SPEC_SIZE {
        return Err(SpecError::new(format!(
            "graph '{spec}' has {} vertices — too large for the simulated clique (max {MAX_SPEC_SIZE})",
            g.n()
        )));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn fixed_families_build() {
        let cases = [
            ("complete:9", 9),
            ("cycle:5", 5),
            ("path:4", 4),
            ("star:6", 6),
            ("wheel:7", 7),
            ("grid:2x5", 10),
            ("torus:3x3", 9),
            ("bipartite:2x3", 5),
            ("hypercube:3", 8),
            ("binarytree:2", 7),
            ("petersen", 10),
            ("diamond", 4),
            ("barbell:3", 6),
            ("lollipop:4:3", 7),
            ("kdense:8", 8),
        ];
        for (spec, n) in cases {
            let g = parse_spec(spec, &mut rng()).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.n(), n, "{spec}");
            assert!(g.is_connected(), "{spec}");
        }
    }

    #[test]
    fn diamond_is_k4_minus_an_edge() {
        let g = parse_spec("diamond", &mut rng()).unwrap();
        assert_eq!(g.m(), 5);
        assert!(g.has_edge(0, 2), "the chord is 0-2");
        assert!(!g.has_edge(1, 3), "1-3 is the removed edge");
        assert_eq!(crate::spanning_tree_count_exact(&g).unwrap(), 8);
    }

    #[test]
    fn randomized_families_build_connected() {
        for spec in ["er:24:0.3", "regular:12:3"] {
            let g = parse_spec(spec, &mut rng()).unwrap();
            assert!(g.is_connected(), "{spec}");
        }
    }

    #[test]
    fn bad_specs_error_instead_of_panicking() {
        for bad in [
            "",
            "nope",
            "nope:3",
            "complete:0",
            "complete:abc",
            "complete:9999999",
            "cycle:2",
            "wheel:3",
            "grid:0x4",
            "grid:9",
            "hypercube:0",
            "hypercube:21",
            "binarytree:21",
            "er:8:1.5",
            "er:8:-0.1",
            "er:8:zzz",
            "er:8:0",
            "regular:8:0",
            "regular:8:8",
            "regular:5:3",
        ] {
            assert!(parse_spec(bad, &mut rng()).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn built_graph_size_is_capped_even_when_parameters_pass() {
        // 128 × 128 = 16384 > MAX_SPEC_SIZE although each side is fine.
        let err = parse_spec("grid:128x128", &mut rng()).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        // 2^13 = 8192 passes exactly; 2^14 would be silly to build here,
        // but the dimension cap (20) already admits it — the n-cap must
        // catch it.
        assert!(parse_spec("hypercube:14", &mut rng()).is_err());
    }
}
