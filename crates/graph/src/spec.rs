//! Textual graph specs (`complete:16`, `er:64:0.2`, …) — the one parser
//! behind the CLI's `--graph` flag and the sampling service's
//! `graph_spec` request field.
//!
//! A spec names a generator plus its size parameters, separated by `:`.
//! Sizes are validated here (domain checks and the size caps of
//! [`SpecLimits`]) so bad user input becomes a [`SpecError`], never a
//! generator panic. Randomized families (`er:N:P`, `regular:N:D`) draw
//! from the caller-supplied RNG; callers that need a spec to denote
//! *one* fixed graph (the service's cache does) should seed that RNG as
//! a pure function of the spec string.
//!
//! Every generator family also has a weighted twin named by a `-w`
//! suffix (`er-w:64:0.2`, `grid-w:3x4`, `complete-w:9`, `diamond-w`):
//! same topology, but each edge `{u, v}` carries the deterministic
//! integer weight [`generators::deterministic_edge_weight`]`(`
//! [`WEIGHTED_SPEC_STREAM`]`, u, v, `[`WEIGHTED_SPEC_MAX_WEIGHT`]`)` —
//! a pure function of the edge, independent of the RNG, so the
//! spec-denotes-one-graph contract extends to weights.
//!
//! # Size caps
//!
//! The default cap is [`MAX_SPEC_SIZE`] vertices; the `CCT_MAX_N`
//! environment variable overrides it (see [`max_spec_size`]). When the
//! caller has selected the **sparse** matrix backend, sparse-friendly
//! families — `cycle`, `path`, `star`, and `er` below
//! [`SPARSE_ER_MAX_EXPECTED_DEGREE`] expected degree — are admitted up
//! to [`SPARSE_CAP_FACTOR`]× the cap, because their `O(n)`-edge graphs
//! and `O(nnz)` matrices never materialize the `Θ(n²)` buffers the cap
//! protects against. A sparse-friendly spec rejected only because the
//! *dense* backend is active gets the dedicated
//! [`SpecError::DenseOnlyTooLarge`] variant, which names the fix.

use crate::{generators, Graph};
use rand::Rng;

/// Default largest size parameter (and largest built graph) a spec may
/// produce. The Congested Clique simulator does `Θ(n²)` work per round
/// and the dense generators allocate `Θ(n²)` edges, so larger requests
/// would stall or exhaust memory rather than fail cleanly. Overridable
/// via `CCT_MAX_N` ([`max_spec_size`]) and relaxed for sparse-friendly
/// specs under the sparse backend ([`SpecLimits`]).
pub const MAX_SPEC_SIZE: usize = 8192;

/// How much further sparse-friendly specs may go when the sparse
/// backend is selected: `sparse cap = dense cap × this factor`.
pub const SPARSE_CAP_FACTOR: usize = 8;

/// `er:N:P` counts as sparse-friendly only while its expected degree
/// `P·N` stays below this bound (edges scale as `N·deg/2`, so a large-N
/// admission must not smuggle in `Θ(n²)` edges through P).
pub const SPARSE_ER_MAX_EXPECTED_DEGREE: f64 = 64.0;

/// Largest integer weight the weighted (`-w`) spec families assign —
/// footnote 1's bounded positive-integer-weight setting. Weights are
/// drawn from `1..=WEIGHTED_SPEC_MAX_WEIGHT`.
pub const WEIGHTED_SPEC_MAX_WEIGHT: u64 = 8;

/// The SplitMix64 stream the `-w` families feed to
/// [`generators::deterministic_edge_weight`] (`"cct_wght"` in ASCII).
/// Weights are a pure function of `(this stream, u, v)` — no RNG state
/// is consumed, so a weighted spec denotes one fixed weighting however
/// the caller seeded the generator RNG, preserving the service's
/// spec-keyed cache contract for the randomized families too.
pub const WEIGHTED_SPEC_STREAM: u64 = 0x6363_745f_7767_6874;

/// The active size caps for spec parsing.
///
/// # Examples
///
/// ```
/// use cct_graph::spec::{parse_spec_with_limits, SpecLimits, MAX_SPEC_SIZE};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let sparse = SpecLimits::from_env().with_sparse_backend(true);
/// // A cycle past the dense cap builds fine under the sparse backend…
/// let g = parse_spec_with_limits("cycle:10000", &mut rng, &sparse).unwrap();
/// assert_eq!(g.n(), 10_000);
/// // …but a clique of that size is dense-only and stays rejected.
/// assert!(parse_spec_with_limits("complete:10000", &mut rng, &sparse).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecLimits {
    /// Cap for dense-only families (and for everything when the dense
    /// backend is active).
    pub dense_cap: usize,
    /// `true` when the caller selected the sparse matrix backend, which
    /// admits sparse-friendly families up to [`SpecLimits::sparse_cap`]
    /// and `file:` specs without a family cap.
    pub sparse_backend: bool,
    /// Cap for graphs loaded via `file:PATH` specs. `None` (the default
    /// when `CCT_MAX_N` is unset) means *uncapped under the sparse
    /// backend*: a loaded edge list is an `O(m)` object and the sparse
    /// pipeline keeps it that way, so the `Θ(n²)` rationale behind the
    /// family caps does not apply. An explicitly set `CCT_MAX_N` is the
    /// single override that bounds loaded graphs too.
    pub file_cap: Option<usize>,
}

impl SpecLimits {
    /// The default limits: [`max_spec_size`] (i.e. `CCT_MAX_N` or
    /// [`MAX_SPEC_SIZE`]), dense backend; `file:` specs capped only by
    /// an explicitly set `CCT_MAX_N`.
    pub fn from_env() -> Self {
        let explicit = std::env::var("CCT_MAX_N")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 4);
        SpecLimits {
            dense_cap: explicit.unwrap_or(MAX_SPEC_SIZE),
            sparse_backend: false,
            file_cap: explicit,
        }
    }

    /// Selects or deselects the sparse backend.
    pub fn with_sparse_backend(mut self, on: bool) -> Self {
        self.sparse_backend = on;
        self
    }

    /// The cap applied to sparse-friendly specs under the sparse
    /// backend.
    pub fn sparse_cap(&self) -> usize {
        self.dense_cap.saturating_mul(SPARSE_CAP_FACTOR)
    }

    fn cap_for(&self, sparse_friendly: bool) -> usize {
        if sparse_friendly && self.sparse_backend {
            self.sparse_cap()
        } else {
            self.dense_cap
        }
    }
}

impl Default for SpecLimits {
    fn default() -> Self {
        SpecLimits::from_env()
    }
}

/// The effective default size cap: `CCT_MAX_N` (when set to an integer
/// ≥ 4) or [`MAX_SPEC_SIZE`].
pub fn max_spec_size() -> usize {
    std::env::var("CCT_MAX_N")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 4)
        .unwrap_or(MAX_SPEC_SIZE)
}

/// A malformed or out-of-domain graph spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Unknown family, malformed number, or out-of-domain parameter.
    Invalid(String),
    /// The spec exceeds the cap for its family under the active limits.
    TooLarge {
        /// The offending spec string.
        spec: String,
        /// The requested size (parameter or built-graph vertex count).
        n: usize,
        /// The cap that rejected it.
        cap: usize,
    },
    /// The spec exceeds the dense cap but a sparse-friendly family
    /// would fit under the sparse backend — the error names the fix.
    DenseOnlyTooLarge {
        /// The offending spec string.
        spec: String,
        /// The requested size.
        n: usize,
        /// The dense cap that rejected it.
        cap: usize,
        /// What the sparse backend would admit.
        sparse_cap: usize,
    },
}

impl SpecError {
    fn invalid(message: impl Into<String>) -> Self {
        SpecError::Invalid(message.into())
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Invalid(m) => f.write_str(m),
            SpecError::TooLarge { spec, n, cap } => write!(
                f,
                "graph '{spec}' asks for {n} vertices — too large for the simulated clique (max {cap})"
            ),
            SpecError::DenseOnlyTooLarge {
                spec,
                n,
                cap,
                sparse_cap,
            } => {
                write!(
                    f,
                    "graph '{spec}' asks for {n} vertices — too large for the dense matrix \
                     backend (max {cap}); "
                )?;
                if *sparse_cap == usize::MAX {
                    write!(
                        f,
                        "loaded edge lists are accepted without a size cap with the sparse \
                         backend (--backend sparse)"
                    )
                } else {
                    write!(
                        f,
                        "this sparse-friendly family is accepted up to {sparse_cap} with the \
                         sparse backend (--backend sparse)"
                    )
                }
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The spec grammar, for help texts.
pub const SPEC_HELP: &str = "\
complete:N  cycle:N  path:N  star:N  wheel:N
grid:RxC  torus:RxC  hypercube:D  binarytree:D
petersen  diamond  barbell:K  lollipop:K:T  bipartite:AxB
kdense:N  er:N:P  regular:N:D  file:PATH
any family but file takes a -w suffix (er-w:N:P, grid-w:RxC, ...):
same topology, deterministic integer edge weights in 1..=8";

/// Builds the graph a spec describes, under the default [`SpecLimits`]
/// (dense backend, `CCT_MAX_N`-overridable cap).
///
/// # Errors
///
/// [`SpecError`] for unknown families, malformed numbers, out-of-domain
/// sizes, anything (including product shapes like `grid:RxC`) exceeding
/// the size cap, and randomized families whose retry budget failed to
/// produce a connected graph.
///
/// # Examples
///
/// ```
/// use cct_graph::spec::parse_spec;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = parse_spec("grid:3x4", &mut rng).unwrap();
/// assert_eq!(g.n(), 12);
/// assert!(parse_spec("grid:0x4", &mut rng).is_err());
/// assert!(parse_spec("no-such-family:3", &mut rng).is_err());
/// ```
pub fn parse_spec<R: Rng + ?Sized>(spec: &str, rng: &mut R) -> Result<Graph, SpecError> {
    parse_spec_with_limits(spec, rng, &SpecLimits::from_env())
}

/// [`parse_spec`] under explicit [`SpecLimits`] (the CLI and service
/// pass backend-aware limits here).
///
/// # Errors
///
/// As [`parse_spec`]; size violations come back as the typed
/// [`SpecError::TooLarge`] / [`SpecError::DenseOnlyTooLarge`] variants.
pub fn parse_spec_with_limits<R: Rng + ?Sized>(
    spec: &str,
    rng: &mut R,
    limits: &SpecLimits,
) -> Result<Graph, SpecError> {
    // `file:PATH` is resolved before the `:` split — paths may contain
    // colons, and the family caps do not apply to loaded graphs (see
    // [`SpecLimits::file_cap`]).
    if let Some(path) = spec.strip_prefix("file:") {
        if path.is_empty() {
            return Err(SpecError::invalid("file: needs a path, e.g. file:graph.el"));
        }
        let g = crate::io::read_edge_list(path)
            .map_err(|e| SpecError::invalid(format!("'{spec}': {e}")))?;
        let n = g.n();
        // The single override: an explicitly set CCT_MAX_N bounds loaded
        // graphs under every backend.
        if let Some(cap) = limits.file_cap {
            if n > cap {
                return Err(SpecError::TooLarge {
                    spec: spec.to_string(),
                    n,
                    cap,
                });
            }
        }
        // The dense pipeline still allocates Θ(n²); past the dense cap
        // the typed error names the fix, and the sparse backend admits
        // the load uncapped.
        if !limits.sparse_backend && n > limits.dense_cap {
            return Err(SpecError::DenseOnlyTooLarge {
                spec: spec.to_string(),
                n,
                cap: limits.dense_cap,
                sparse_cap: limits.file_cap.unwrap_or(usize::MAX),
            });
        }
        return Ok(g);
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, SpecError> {
        s.parse::<usize>()
            .map_err(|_| SpecError::invalid(format!("bad number '{s}'")))
    };
    // Size-cap check, applied *before* any generator allocates. The cap
    // depends on whether this spec's family is sparse-friendly and
    // whether the sparse backend is active.
    let capped = |v: usize, sparse_friendly: bool| -> Result<usize, SpecError> {
        let cap = limits.cap_for(sparse_friendly);
        if v <= cap {
            return Ok(v);
        }
        if sparse_friendly && !limits.sparse_backend && v <= limits.sparse_cap() {
            return Err(SpecError::DenseOnlyTooLarge {
                spec: spec.to_string(),
                n: v,
                cap,
                sparse_cap: limits.sparse_cap(),
            });
        }
        Err(SpecError::TooLarge {
            spec: spec.to_string(),
            n: v,
            cap,
        })
    };
    let pair = |s: &str| -> Result<(usize, usize), SpecError> {
        let (a, b) = s
            .split_once('x')
            .ok_or_else(|| SpecError::invalid(format!("expected RxC in '{s}'")))?;
        Ok((capped(num(a)?, false)?, capped(num(b)?, false)?))
    };
    // The generators assert on their domains (library contract); specs
    // check user input up front so bad input becomes an error, not a
    // panic.
    let at_least = |v: usize, min: usize, what: &str| -> Result<usize, SpecError> {
        if v < min {
            Err(SpecError::invalid(format!(
                "{what} must be at least {min}, got {v}"
            )))
        } else {
            Ok(v)
        }
    };
    // A `-w` suffix on any generator family keeps the topology and
    // replaces every weight with a deterministic integer in
    // `1..=WEIGHTED_SPEC_MAX_WEIGHT` (`file:` carries its own weight
    // column and takes no suffix — `file-w` falls through to the
    // unknown-spec error).
    let family = parts.first().copied().unwrap_or("");
    let (family, weighted) = match family.strip_suffix("-w") {
        Some(base) if !base.is_empty() => (base, true),
        _ => (family, false),
    };
    // `(built graph, family is sparse-friendly)`.
    let (g, sparse_friendly) = match (family, parts.get(1), parts.get(2)) {
        ("complete", Some(n), _) => (
            generators::complete(at_least(capped(num(n)?, false)?, 1, "N")?),
            false,
        ),
        ("cycle", Some(n), _) => (
            generators::cycle(at_least(capped(num(n)?, true)?, 3, "N")?),
            true,
        ),
        ("path", Some(n), _) => (
            generators::path(at_least(capped(num(n)?, true)?, 1, "N")?),
            true,
        ),
        ("star", Some(n), _) => (
            generators::star(at_least(capped(num(n)?, true)?, 2, "N")?),
            true,
        ),
        ("wheel", Some(n), _) => (
            generators::wheel(at_least(capped(num(n)?, false)?, 4, "N")?),
            false,
        ),
        ("grid", Some(d), _) => {
            let (r, c) = pair(d)?;
            (
                generators::grid(at_least(r, 1, "R")?, at_least(c, 1, "C")?),
                false,
            )
        }
        ("torus", Some(d), _) => {
            let (r, c) = pair(d)?;
            (
                generators::torus(at_least(r, 3, "R")?, at_least(c, 3, "C")?),
                false,
            )
        }
        ("bipartite", Some(d), _) => {
            let (a, b) = pair(d)?;
            (
                generators::complete_bipartite(at_least(a, 1, "A")?, at_least(b, 1, "B")?),
                false,
            )
        }
        ("hypercube", Some(d), _) => {
            let d = num(d)?;
            if !(1..=20).contains(&d) {
                return Err(SpecError::invalid(format!(
                    "hypercube dimension must be in 1..=20, got {d}"
                )));
            }
            (generators::hypercube(d as u32), false)
        }
        ("binarytree", Some(d), _) => {
            let d = num(d)?;
            if d > 20 {
                return Err(SpecError::invalid(format!(
                    "binary tree depth must be at most 20, got {d}"
                )));
            }
            (generators::binary_tree(d as u32), false)
        }
        ("petersen", _, _) => (generators::petersen(), false),
        // The 4-vertex diamond (K4 minus one edge): the smallest graph
        // with non-uniform tree marginals, used throughout the
        // uniformity suites (8 spanning trees).
        ("diamond", _, _) => (
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
                .expect("the diamond is a fixed valid graph"),
            false,
        ),
        ("barbell", Some(k), _) => (
            generators::barbell(at_least(capped(num(k)?, false)?, 2, "K")?),
            false,
        ),
        ("lollipop", Some(k), Some(t)) => (
            generators::lollipop(
                at_least(capped(num(k)?, false)?, 2, "K")?,
                capped(num(t)?, false)?,
            ),
            false,
        ),
        ("kdense", Some(n), _) => (
            generators::k_dense_irregular(at_least(capped(num(n)?, false)?, 4, "N")?),
            false,
        ),
        ("er", Some(n), Some(p)) => {
            let p: f64 = p
                .parse()
                .map_err(|_| SpecError::invalid(format!("bad probability '{p}'")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(SpecError::invalid(format!(
                    "probability must be in [0,1], got {p}"
                )));
            }
            let n_raw = num(n)?;
            // Sparse-friendly only while the expected degree stays
            // bounded: edges ≈ N·P·N/2, so a large-N admission must not
            // smuggle Θ(n²) edges in through P.
            let sparse_ok = p * (n_raw as f64) <= SPARSE_ER_MAX_EXPECTED_DEGREE;
            let n = at_least(capped(n_raw, sparse_ok)?, 1, "N")?;
            if p == 0.0 && n > 1 {
                return Err(SpecError::invalid(format!(
                    "G({n}, 0) can never be connected; use P > 0"
                )));
            }
            let g = generators::try_erdos_renyi_connected(n, p, rng).ok_or_else(|| {
                SpecError::invalid(format!(
                    "G({n}, {p}) failed to come out connected in 1000 attempts; \
                     P is far below the connectivity threshold ln(N)/N"
                ))
            })?;
            (g, sparse_ok)
        }
        ("regular", Some(n), Some(d)) => {
            let (n, d) = (at_least(capped(num(n)?, false)?, 2, "N")?, num(d)?);
            if d == 0 || d >= n {
                return Err(SpecError::invalid(format!(
                    "regular graph needs 1 ≤ D < N, got D={d}, N={n}"
                )));
            }
            if n.checked_mul(d).is_none_or(|nd| nd % 2 != 0) {
                return Err(SpecError::invalid(format!(
                    "regular graph needs N·D even, got N={n}, D={d}"
                )));
            }
            let g = generators::try_random_regular(n, d, rng).ok_or_else(|| {
                SpecError::invalid(format!(
                    "failed to sample a connected {d}-regular graph on {n} vertices"
                ))
            })?;
            (g, false)
        }
        _ => return Err(SpecError::invalid(format!("unknown graph spec '{spec}'"))),
    };
    // Product (grid:RxC) and exponential (hypercube:D) specs can satisfy
    // the per-parameter cap yet still blow past what the O(n²) simulator
    // can hold — bound the built graph too, before any sampler allocates.
    capped(g.n(), sparse_friendly)?;
    if weighted {
        return Ok(generators::with_deterministic_integer_weights(
            &g,
            WEIGHTED_SPEC_MAX_WEIGHT,
            WEIGHTED_SPEC_STREAM,
        )
        .expect("reweighting a valid graph with positive integers cannot fail"));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn fixed_families_build() {
        let cases = [
            ("complete:9", 9),
            ("cycle:5", 5),
            ("path:4", 4),
            ("star:6", 6),
            ("wheel:7", 7),
            ("grid:2x5", 10),
            ("torus:3x3", 9),
            ("bipartite:2x3", 5),
            ("hypercube:3", 8),
            ("binarytree:2", 7),
            ("petersen", 10),
            ("diamond", 4),
            ("barbell:3", 6),
            ("lollipop:4:3", 7),
            ("kdense:8", 8),
        ];
        for (spec, n) in cases {
            let g = parse_spec(spec, &mut rng()).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.n(), n, "{spec}");
            assert!(g.is_connected(), "{spec}");
        }
    }

    #[test]
    fn diamond_is_k4_minus_an_edge() {
        let g = parse_spec("diamond", &mut rng()).unwrap();
        assert_eq!(g.m(), 5);
        assert!(g.has_edge(0, 2), "the chord is 0-2");
        assert!(!g.has_edge(1, 3), "1-3 is the removed edge");
        assert_eq!(crate::spanning_tree_count_exact(&g).unwrap(), 8);
    }

    #[test]
    fn weighted_families_build_with_deterministic_weights() {
        for (spec, n) in [
            ("complete-w:9", 9),
            ("grid-w:2x5", 10),
            ("cycle-w:5", 5),
            ("diamond-w", 4),
            ("er-w:24:0.3", 24),
        ] {
            let g = parse_spec(spec, &mut rng()).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.n(), n, "{spec}");
            assert!(g.has_integer_weights(), "{spec}");
            assert!(
                g.edges()
                    .iter()
                    .all(|&(_, _, w)| (1.0..=WEIGHTED_SPEC_MAX_WEIGHT as f64).contains(&w)),
                "{spec}: weights out of 1..=max range"
            );
            assert!(
                g.edges().iter().any(|&(_, _, w)| w != 1.0),
                "{spec}: all weights 1 — the weighting did not apply"
            );
        }
    }

    #[test]
    fn weighted_twin_keeps_topology_and_is_reproducible() {
        let base = parse_spec("grid:3x4", &mut rng()).unwrap();
        let a = parse_spec("grid-w:3x4", &mut rng()).unwrap();
        let b = parse_spec("grid-w:3x4", &mut rng()).unwrap();
        assert_eq!(a.edges(), b.edges(), "same spec, same weighting");
        assert_eq!(a.unweighted().edges(), base.edges(), "same topology");
        // Per-edge weights match the exported pure function.
        for &(u, v, w) in a.edges() {
            let want = generators::deterministic_edge_weight(
                WEIGHTED_SPEC_STREAM,
                u,
                v,
                WEIGHTED_SPEC_MAX_WEIGHT,
            );
            assert_eq!(w, want as f64, "edge ({u},{v})");
        }
    }

    #[test]
    fn weighted_er_weights_do_not_depend_on_the_rng() {
        // Different RNG seeds can change er-w's topology, but any edge
        // present in both draws must carry the same weight.
        let a = parse_spec("er-w:24:0.4", &mut rand::rngs::StdRng::seed_from_u64(1)).unwrap();
        let b = parse_spec("er-w:24:0.4", &mut rand::rngs::StdRng::seed_from_u64(2)).unwrap();
        for &(u, v, w) in a.edges() {
            if let Some(wb) = b.edge_weight(u, v) {
                assert_eq!(w, wb, "edge ({u},{v}) weight depends on RNG state");
            }
        }
    }

    #[test]
    fn bogus_weighted_specs_rejected() {
        for bad in [
            "file-w:whatever.el",
            "-w",
            "nope-w:3",
            "er-w:8:1.5",
            "grid-w:0x4",
        ] {
            assert!(parse_spec(bad, &mut rng()).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn randomized_families_build_connected() {
        for spec in ["er:24:0.3", "regular:12:3"] {
            let g = parse_spec(spec, &mut rng()).unwrap();
            assert!(g.is_connected(), "{spec}");
        }
    }

    #[test]
    fn bad_specs_error_instead_of_panicking() {
        for bad in [
            "",
            "nope",
            "nope:3",
            "complete:0",
            "complete:abc",
            "complete:9999999",
            "cycle:2",
            "wheel:3",
            "grid:0x4",
            "grid:9",
            "hypercube:0",
            "hypercube:21",
            "binarytree:21",
            "er:8:1.5",
            "er:8:-0.1",
            "er:8:zzz",
            "er:8:0",
            "regular:8:0",
            "regular:8:8",
            "regular:5:3",
        ] {
            assert!(parse_spec(bad, &mut rng()).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn built_graph_size_is_capped_even_when_parameters_pass() {
        // 128 × 128 = 16384 > MAX_SPEC_SIZE although each side is fine.
        let err = parse_spec("grid:128x128", &mut rng()).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        // 2^13 = 8192 passes exactly; 2^14 would be silly to build here,
        // but the dimension cap (20) already admits it — the n-cap must
        // catch it.
        assert!(parse_spec("hypercube:14", &mut rng()).is_err());
    }

    #[test]
    fn sparse_backend_admits_sparse_families_past_the_dense_cap() {
        let base = SpecLimits {
            dense_cap: MAX_SPEC_SIZE,
            sparse_backend: false,
            file_cap: None,
        };
        let sparse = base.with_sparse_backend(true);
        assert_eq!(sparse.sparse_cap(), MAX_SPEC_SIZE * SPARSE_CAP_FACTOR);
        for spec in ["cycle:20000", "path:20000", "star:20000"] {
            // Dense backend: typed dense-only rejection naming the fix.
            match parse_spec_with_limits(spec, &mut rng(), &base).unwrap_err() {
                SpecError::DenseOnlyTooLarge {
                    n, cap, sparse_cap, ..
                } => {
                    assert_eq!((n, cap), (20_000, MAX_SPEC_SIZE));
                    assert_eq!(sparse_cap, MAX_SPEC_SIZE * SPARSE_CAP_FACTOR);
                }
                other => panic!("{spec}: expected DenseOnlyTooLarge, got {other:?}"),
            }
            // Sparse backend: builds.
            let g = parse_spec_with_limits(spec, &mut rng(), &sparse).unwrap();
            assert_eq!(g.n(), 20_000, "{spec}");
        }
        // Dense-only families stay capped even under the sparse backend.
        match parse_spec_with_limits("complete:20000", &mut rng(), &sparse).unwrap_err() {
            SpecError::TooLarge { n, cap, .. } => assert_eq!((n, cap), (20_000, MAX_SPEC_SIZE)),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Beyond even the sparse cap: plain TooLarge, no false promise.
        let way_past = MAX_SPEC_SIZE * SPARSE_CAP_FACTOR + 1;
        match parse_spec_with_limits(&format!("cycle:{way_past}"), &mut rng(), &base).unwrap_err() {
            SpecError::TooLarge { n, .. } => assert_eq!(n, way_past),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn er_sparse_friendliness_depends_on_expected_degree() {
        let sparse = SpecLimits {
            dense_cap: MAX_SPEC_SIZE,
            sparse_backend: true,
            file_cap: None,
        };
        // p·n = 0.001·16384 = 16.4 ≤ 64: sparse-friendly, admitted.
        let g = parse_spec_with_limits("er:16384:0.001", &mut rng(), &sparse).unwrap();
        assert_eq!(g.n(), 16_384);
        // p·n = 0.2·16384 ≫ 64: Θ(n·deg) edges too dense — rejected.
        assert!(matches!(
            parse_spec_with_limits("er:16384:0.2", &mut rng(), &sparse).unwrap_err(),
            SpecError::TooLarge { .. }
        ));
    }

    fn write_temp_el(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cct-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn file_spec_loads_an_edge_list() {
        let path = write_temp_el("p4.el", "0 1\n1 2\n2 3\n");
        let spec = format!("file:{}", path.display());
        let g = parse_spec(&spec, &mut rng()).unwrap();
        assert_eq!((g.n(), g.m()), (4, 3));
        assert!(g.is_connected());
    }

    #[test]
    fn file_spec_errors_are_typed_not_panics() {
        assert!(matches!(
            parse_spec("file:", &mut rng()).unwrap_err(),
            SpecError::Invalid(_)
        ));
        assert!(matches!(
            parse_spec("file:/no/such/file.el", &mut rng()).unwrap_err(),
            SpecError::Invalid(_)
        ));
        let bad = write_temp_el("bad.el", "0 zero\n");
        let err = parse_spec(&format!("file:{}", bad.display()), &mut rng()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn file_specs_are_uncapped_under_the_sparse_backend() {
        // A loaded graph past the dense cap: the dense backend rejects
        // with the typed fix-naming error, the sparse backend admits it
        // with no family cap at all.
        let mut text = String::new();
        let n = MAX_SPEC_SIZE + 8;
        for u in 0..n - 1 {
            text.push_str(&format!("{u} {}\n", u + 1));
        }
        let path = write_temp_el("big_path.el", &text);
        let spec = format!("file:{}", path.display());
        let base = SpecLimits {
            dense_cap: MAX_SPEC_SIZE,
            sparse_backend: false,
            file_cap: None,
        };
        match parse_spec_with_limits(&spec, &mut rng(), &base).unwrap_err() {
            SpecError::DenseOnlyTooLarge { n: got, cap, .. } => {
                assert_eq!((got, cap), (n, MAX_SPEC_SIZE));
            }
            other => panic!("expected DenseOnlyTooLarge, got {other:?}"),
        }
        let g = parse_spec_with_limits(&spec, &mut rng(), &base.with_sparse_backend(true)).unwrap();
        assert_eq!(g.n(), n);
        // An explicitly set CCT_MAX_N (file_cap) is the single override:
        // it bounds file loads even under the sparse backend…
        let capped = SpecLimits {
            dense_cap: MAX_SPEC_SIZE,
            sparse_backend: true,
            file_cap: Some(64),
        };
        assert!(matches!(
            parse_spec_with_limits(&spec, &mut rng(), &capped).unwrap_err(),
            SpecError::TooLarge { cap: 64, .. }
        ));
        // …and a raised one admits the load under the dense backend too.
        let raised = SpecLimits {
            dense_cap: n,
            sparse_backend: false,
            file_cap: Some(n),
        };
        assert!(parse_spec_with_limits(&spec, &mut rng(), &raised).is_ok());
    }

    #[test]
    fn custom_dense_cap_is_honored() {
        let tiny = SpecLimits {
            dense_cap: 16,
            sparse_backend: false,
            file_cap: None,
        };
        assert!(parse_spec_with_limits("complete:16", &mut rng(), &tiny).is_ok());
        assert!(matches!(
            parse_spec_with_limits("complete:17", &mut rng(), &tiny).unwrap_err(),
            SpecError::TooLarge { n: 17, cap: 16, .. }
        ));
        // A raised cap admits what the default rejects.
        let raised = SpecLimits {
            dense_cap: 10_000,
            sparse_backend: false,
            file_cap: None,
        };
        assert!(parse_spec_with_limits("path:9000", &mut rng(), &raised).is_ok());
    }
}
