//! Validated spanning trees and their canonical encodings.
//!
//! Every sampler in this repository returns a [`SpanningTree`]; the
//! constructor proves the n−1 edges really do span (acyclic + connected via
//! union–find), so downstream statistics can trust the type.

use crate::{DisjointSet, Graph};
use std::fmt;

/// Error returned when an edge set is not a spanning tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Wrong number of edges: a spanning tree of `n` vertices needs `n−1`.
    WrongEdgeCount {
        /// Expected number of edges (`n − 1`).
        expected: usize,
        /// Actual number supplied.
        actual: usize,
    },
    /// An endpoint was `>= n`.
    VertexOutOfRange(usize),
    /// The edges contain a cycle (equivalently, the tree is disconnected).
    CycleOrDisconnected,
    /// An edge is absent from the host graph.
    EdgeNotInGraph(usize, usize),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::WrongEdgeCount { expected, actual } => {
                write!(f, "spanning tree needs {expected} edges, got {actual}")
            }
            TreeError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
            TreeError::CycleOrDisconnected => write!(f, "edge set contains a cycle"),
            TreeError::EdgeNotInGraph(u, v) => write!(f, "edge ({u}, {v}) not in host graph"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A validated spanning tree of an `n`-vertex graph.
///
/// Edges are stored canonically: each as `(min, max)`, the list sorted.
/// Two trees compare equal iff they have the same edge set, which makes
/// `SpanningTree` usable directly as a `HashMap` key for empirical
/// distribution tests.
///
/// # Examples
///
/// ```
/// use cct_graph::SpanningTree;
///
/// let t = SpanningTree::new(4, vec![(1, 0), (1, 2), (3, 2)])?;
/// assert_eq!(t.edges(), &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(t.n(), 4);
/// # Ok::<(), cct_graph::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanningTree {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl SpanningTree {
    /// Validates and canonicalizes an edge set as a spanning tree on
    /// `0..n`.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the edge count is not `n−1`, an endpoint
    /// is out of range, or the edges contain a cycle.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Result<SpanningTree, TreeError> {
        let expected = n.saturating_sub(1);
        if edges.len() != expected {
            return Err(TreeError::WrongEdgeCount {
                expected,
                actual: edges.len(),
            });
        }
        let mut dsu = DisjointSet::new(n);
        let mut canon = Vec::with_capacity(edges.len());
        for (u, v) in edges {
            if u >= n {
                return Err(TreeError::VertexOutOfRange(u));
            }
            if v >= n {
                return Err(TreeError::VertexOutOfRange(v));
            }
            if !dsu.union(u, v) {
                return Err(TreeError::CycleOrDisconnected);
            }
            canon.push((u.min(v), u.max(v)));
        }
        canon.sort_unstable();
        Ok(SpanningTree { n, edges: canon })
    }

    /// Like [`SpanningTree::new`], additionally checking that every edge
    /// exists in `g`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::EdgeNotInGraph`] on a foreign edge, plus all
    /// the errors of [`SpanningTree::new`].
    pub fn new_in(g: &Graph, edges: Vec<(usize, usize)>) -> Result<SpanningTree, TreeError> {
        for &(u, v) in &edges {
            if !g.has_edge(u, v) {
                return Err(TreeError::EdgeNotInGraph(u, v));
            }
        }
        SpanningTree::new(g.n(), edges)
    }

    /// Number of vertices spanned.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The canonical sorted edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Returns `true` if `{u, v}` is a tree edge.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).is_ok()
    }

    /// Product of the host graph's weights over the tree edges — the
    /// unnormalized probability of this tree under the weighted uniform
    /// distribution (footnote 1).
    ///
    /// # Panics
    ///
    /// Panics if a tree edge is missing from `g`.
    pub fn weight_in(&self, g: &Graph) -> f64 {
        self.edges
            .iter()
            .map(|&(u, v)| g.edge_weight(u, v).expect("tree edge must exist in graph"))
            .product()
    }

    /// Sum of the host graph's weights over the tree edges — the
    /// objective a minimum spanning tree minimizes.
    ///
    /// # Panics
    ///
    /// Panics if a tree edge is missing from `g`.
    pub fn weight_sum_in(&self, g: &Graph) -> f64 {
        self.edges
            .iter()
            .map(|&(u, v)| g.edge_weight(u, v).expect("tree edge must exist in graph"))
            .sum()
    }

    /// Any-order parent array rooted at `root` (parent of root is root).
    ///
    /// # Panics
    ///
    /// Panics if `root >= n`.
    pub fn parents(&self, root: usize) -> Vec<usize> {
        assert!(root < self.n, "root out of range");
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut parent = vec![usize::MAX; self.n];
        parent[root] = root;
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    stack.push(v);
                }
            }
        }
        parent
    }
}

impl fmt::Display for SpanningTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanningTree(n={}, edges=[", self.n)?;
        for (i, (u, v)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::complete;

    #[test]
    fn valid_tree_canonicalizes() {
        let t = SpanningTree::new(3, vec![(2, 1), (0, 2)]).unwrap();
        assert_eq!(t.edges(), &[(0, 2), (1, 2)]);
        assert!(t.contains_edge(1, 2));
        assert!(t.contains_edge(2, 1));
        assert!(!t.contains_edge(0, 1));
    }

    #[test]
    fn trivial_trees() {
        assert!(SpanningTree::new(1, vec![]).is_ok());
        assert!(SpanningTree::new(0, vec![]).is_ok());
    }

    #[test]
    fn wrong_edge_count() {
        assert_eq!(
            SpanningTree::new(3, vec![(0, 1)]),
            Err(TreeError::WrongEdgeCount {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn cycle_detected() {
        assert_eq!(
            SpanningTree::new(4, vec![(0, 1), (1, 2), (2, 0)]),
            Err(TreeError::CycleOrDisconnected)
        );
    }

    #[test]
    fn out_of_range_detected() {
        assert_eq!(
            SpanningTree::new(2, vec![(0, 5)]),
            Err(TreeError::VertexOutOfRange(5))
        );
    }

    #[test]
    fn self_loop_is_cycle() {
        assert_eq!(
            SpanningTree::new(2, vec![(1, 1)]),
            Err(TreeError::CycleOrDisconnected)
        );
    }

    #[test]
    fn new_in_checks_membership() {
        let g = crate::generators::path(3);
        assert!(SpanningTree::new_in(&g, vec![(0, 1), (1, 2)]).is_ok());
        assert_eq!(
            SpanningTree::new_in(&g, vec![(0, 2), (1, 2)]),
            Err(TreeError::EdgeNotInGraph(0, 2))
        );
    }

    #[test]
    fn equality_ignores_edge_order() {
        let a = SpanningTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let b = SpanningTree::new(3, vec![(2, 1), (1, 0)]).unwrap();
        assert_eq!(a, b);
        use std::collections::HashMap;
        let mut map = HashMap::new();
        map.insert(a, 1);
        assert_eq!(map.len(), 1);
        assert!(map.contains_key(&b));
    }

    #[test]
    fn weight_product() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 2, 5.0)]).unwrap();
        let t = SpanningTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(t.weight_in(&g), 6.0);
    }

    #[test]
    fn parents_rooted() {
        let t = SpanningTree::new(4, vec![(0, 1), (1, 2), (1, 3)]).unwrap();
        let p = t.parents(0);
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 1);
        assert_eq!(p[3], 1);
    }

    #[test]
    fn star_trees_in_complete_graph() {
        let g = complete(4);
        let t = SpanningTree::new_in(&g, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(t.n(), 4);
    }
}
