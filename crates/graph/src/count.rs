//! Spanning-tree counting and exhaustive enumeration — the Matrix–Tree
//! theorem (§1's historical motivation) and the ground truths for every
//! uniformity experiment.

use crate::{DisjointSet, Graph, SpanningTree};
use cct_linalg::{det, det_exact, ExactOverflowError};

/// Weighted spanning-tree count via the Matrix–Tree theorem: the
/// determinant of the Laplacian with row/column 0 deleted. For weighted
/// graphs this is `Σ_T Π_{e∈T} w(e)`, the normalizing constant of the
/// weighted uniform distribution.
///
/// Returns `0.0` for disconnected graphs.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use cct_graph::{generators, spanning_tree_count};
///
/// // Cayley's formula: K5 has 5^3 = 125 spanning trees.
/// assert!((spanning_tree_count(&generators::complete(5)) - 125.0).abs() < 1e-6);
/// ```
pub fn spanning_tree_count(g: &Graph) -> f64 {
    assert!(g.n() > 0, "need at least one vertex");
    if g.n() == 1 {
        return 1.0;
    }
    let l = g.laplacian();
    let keep: Vec<usize> = (1..g.n()).collect();
    det(&l.submatrix(&keep, &keep))
}

/// Exact integer spanning-tree count (requires integer weights).
///
/// # Errors
///
/// Returns [`ExactOverflowError`] if the count exceeds `i128`.
///
/// # Panics
///
/// Panics if `n == 0` or the graph has non-integer weights.
pub fn spanning_tree_count_exact(g: &Graph) -> Result<i128, ExactOverflowError> {
    assert!(g.n() > 0, "need at least one vertex");
    assert!(
        g.has_integer_weights() || g.m() == 0,
        "exact count requires integer weights"
    );
    if g.n() == 1 {
        return Ok(1);
    }
    let n = g.n();
    let mut l = vec![vec![0i128; n]; n];
    for &(u, v, w) in g.edges() {
        let w = w.round() as i128;
        l[u][u] += w;
        l[v][v] += w;
        l[u][v] -= w;
        l[v][u] -= w;
    }
    let minor: Vec<Vec<i128>> = (1..n).map(|i| (1..n).map(|j| l[i][j]).collect()).collect();
    det_exact(&minor)
}

/// Enumerates every spanning tree of a small graph by exhaustive search
/// over `(n−1)`-edge subsets.
///
/// Intended for the statistical ground truths (graphs with at most a few
/// thousand trees); cost is `C(m, n−1)` union–find checks.
///
/// # Panics
///
/// Panics if `C(m, n−1)` exceeds 20 million (refuse rather than hang).
///
/// # Examples
///
/// ```
/// use cct_graph::{enumerate_spanning_trees, generators};
///
/// let trees = enumerate_spanning_trees(&generators::cycle(4));
/// assert_eq!(trees.len(), 4); // remove any one of the 4 edges
/// ```
pub fn enumerate_spanning_trees(g: &Graph) -> Vec<SpanningTree> {
    let n = g.n();
    if n <= 1 {
        return vec![SpanningTree::new(n, Vec::new()).expect("trivial tree")];
    }
    let k = n - 1;
    let m = g.m();
    if m < k {
        return Vec::new();
    }
    let combos = binomial(m, k);
    assert!(
        combos <= 20_000_000.0,
        "C({m}, {k}) = {combos} subsets is too many to enumerate"
    );
    let edges = g.edges();
    let mut out = Vec::new();
    // Iterate k-subsets of 0..m in lexicographic order.
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        let mut dsu = DisjointSet::new(n);
        let mut ok = true;
        for &i in &idx {
            let (u, v, _) = edges[i];
            if !dsu.union(u, v) {
                ok = false;
                break;
            }
        }
        if ok && dsu.components() == 1 {
            let tree_edges: Vec<(usize, usize)> =
                idx.iter().map(|&i| (edges[i].0, edges[i].1)).collect();
            out.push(SpanningTree::new(n, tree_edges).expect("verified spanning"));
        }
        // Advance to the next k-subset.
        let mut pos = k;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            if idx[pos] != m - k + pos {
                break;
            }
        }
        idx[pos] += 1;
        for j in pos + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The exact weighted-uniform distribution over spanning trees of a small
/// graph: pairs `(tree, probability)` with probabilities summing to 1.
///
/// For unweighted graphs this is the uniform distribution the paper's
/// Theorem 1 targets.
///
/// # Panics
///
/// Panics if the graph has no spanning tree (disconnected) or is too large
/// to enumerate.
pub fn spanning_tree_distribution(g: &Graph) -> Vec<(SpanningTree, f64)> {
    let trees = enumerate_spanning_trees(g);
    assert!(!trees.is_empty(), "graph has no spanning tree");
    let weights: Vec<f64> = trees.iter().map(|t| t.weight_in(g)).collect();
    let total: f64 = weights.iter().sum();
    trees
        .into_iter()
        .zip(weights)
        .map(|(t, w)| (t, w / total))
        .collect()
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::*;

    #[test]
    fn cayley_formula() {
        for n in 2..=7usize {
            let expect = (n as f64).powi(n as i32 - 2);
            assert!(
                (spanning_tree_count(&complete(n)) - expect).abs() < 1e-6 * expect,
                "K_{n}"
            );
            assert_eq!(
                spanning_tree_count_exact(&complete(n)).unwrap(),
                (n as i128).pow(n as u32 - 2)
            );
        }
    }

    #[test]
    fn trees_have_one_tree() {
        assert_eq!(spanning_tree_count_exact(&path(6)).unwrap(), 1);
        assert_eq!(spanning_tree_count_exact(&star(6)).unwrap(), 1);
    }

    #[test]
    fn cycle_has_n_trees() {
        for n in 3..=8usize {
            assert_eq!(spanning_tree_count_exact(&cycle(n)).unwrap(), n as i128);
        }
    }

    #[test]
    fn disconnected_has_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(spanning_tree_count(&g).abs() < 1e-9);
        assert_eq!(spanning_tree_count_exact(&g).unwrap(), 0);
    }

    #[test]
    fn complete_bipartite_formula() {
        // τ(K_{a,b}) = a^{b−1} · b^{a−1}.
        for (a, b) in [(2usize, 3usize), (3, 3), (2, 4)] {
            let expect = (a as i128).pow(b as u32 - 1) * (b as i128).pow(a as u32 - 1);
            assert_eq!(
                spanning_tree_count_exact(&complete_bipartite(a, b)).unwrap(),
                expect,
                "K_{a},{b}"
            );
        }
    }

    #[test]
    fn weighted_count_is_weight_sum() {
        // Triangle with weights 1, 2, 3: trees are the 3 edge pairs with
        // weights 1·2 + 1·3 + 2·3 = 11.
        let g = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        assert!((spanning_tree_count(&g) - 11.0).abs() < 1e-9);
        assert_eq!(spanning_tree_count_exact(&g).unwrap(), 11);
    }

    #[test]
    fn enumeration_matches_matrix_tree() {
        for g in [
            complete(5),
            cycle(6),
            wheel(5),
            petersen(),
            grid(2, 3),
            complete_bipartite(2, 3),
        ] {
            let trees = enumerate_spanning_trees(&g);
            let exact = spanning_tree_count_exact(&g).unwrap();
            assert_eq!(trees.len() as i128, exact);
            // All enumerated trees are distinct.
            let mut unique = trees.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), trees.len());
        }
    }

    #[test]
    fn distribution_sums_to_one_and_respects_weights() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        let dist = spanning_tree_distribution(&g);
        assert_eq!(dist.len(), 3);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Tree {12, 02} has weight 6 of 11 total.
        let heavy = dist
            .iter()
            .find(|(t, _)| t.contains_edge(1, 2) && t.contains_edge(0, 2))
            .unwrap();
        assert!((heavy.1 - 6.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(spanning_tree_count(&g), 1.0);
        assert_eq!(enumerate_spanning_trees(&g).len(), 1);
    }

    #[test]
    fn matrix_tree_float_vs_exact_on_random() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(10, 0.5, &mut rng);
        let f = spanning_tree_count(&g);
        let e = spanning_tree_count_exact(&g).unwrap() as f64;
        assert!((f - e).abs() < 1e-6 * e.max(1.0));
    }
}
