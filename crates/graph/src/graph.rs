//! The input-graph type: simple, undirected, positive edge weights.
//!
//! The paper's main theorem is stated for unweighted graphs, with
//! footnote 1 extending it to positive integer weights bounded by
//! `W = O(n^β)`; [`Graph`] supports both (unweighted graphs simply have
//! all weights 1).

use crate::DisjointSet;
use cct_linalg::{CsrMatrix, Matrix, PMatrix, Repr};
use std::collections::BTreeMap;
use std::fmt;

/// Error returned when a graph construction is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices.
        n: usize,
    },
    /// A self-loop `(u, u)` was supplied.
    SelfLoop(usize),
    /// The same undirected edge was supplied twice.
    DuplicateEdge(usize, usize),
    /// A non-positive or non-finite weight was supplied.
    BadWeight(f64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for n = {n}")
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop at vertex {u}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::BadWeight(w) => write!(f, "edge weight {w} is not positive and finite"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph with positive edge weights.
///
/// Vertices are `0..n`. Random walks leave a vertex along an incident edge
/// chosen with probability proportional to its weight (§1.1).
///
/// # Examples
///
/// ```
/// use cct_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 3);
/// assert!(g.is_connected());
/// assert_eq!(g.degree(0), 2.0);
/// # Ok::<(), cct_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    /// Adjacency: `adj[u]` lists `(v, weight)` sorted by `v`.
    adj: Vec<Vec<(usize, f64)>>,
    /// Canonical edge list: `(u, v, w)` with `u < v`, sorted.
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// Builds an unweighted graph (all weights 1) from an edge list.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for out-of-range endpoints, self-loops, or
    /// duplicate edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Graph, GraphError> {
        let weighted: Vec<(usize, usize, f64)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Graph::from_weighted_edges(n, &weighted)
    }

    /// Builds a weighted graph from `(u, v, weight)` triples.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for out-of-range endpoints, self-loops,
    /// duplicate edges, or non-positive/non-finite weights.
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(usize, usize, f64)],
    ) -> Result<Graph, GraphError> {
        let mut canon: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for &(u, v, w) in edges {
            for x in [u, v] {
                if x >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: x, n });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if !(w > 0.0 && w.is_finite()) {
                return Err(GraphError::BadWeight(w));
            }
            let key = (u.min(v), u.max(v));
            if canon.insert(key, w).is_some() {
                return Err(GraphError::DuplicateEdge(key.0, key.1));
            }
        }
        let mut adj = vec![Vec::new(); n];
        let mut edge_list = Vec::with_capacity(canon.len());
        for (&(u, v), &w) in &canon {
            adj[u].push((v, w));
            adj[v].push((u, w));
            edge_list.push((u, v, w));
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable_by_key(|a| a.0);
        }
        Ok(Graph {
            n,
            adj,
            edges: edge_list,
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list: `(u, v, w)` with `u < v`, sorted.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Neighbors of `u` as `(v, weight)` pairs, sorted by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Weighted degree of `u` (sum of incident edge weights).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// Number of neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn num_neighbors(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Returns the weight of edge `{u, v}`, or `None` if absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        if u >= self.n || v >= self.n {
            return None;
        }
        self.adj[u]
            .binary_search_by(|probe| probe.0.cmp(&v))
            .ok()
            .map(|idx| self.adj[u][idx].1)
    }

    /// Returns `true` if edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Returns `true` if the graph is connected (vacuously true for
    /// `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut dsu = DisjointSet::new(self.n);
        for &(u, v, _) in &self.edges {
            dsu.union(u, v);
        }
        dsu.components() == 1
    }

    /// Returns `true` if the graph is bipartite.
    ///
    /// Bipartite inputs exercise the parity-consistency of the top-down
    /// filling algorithm, so the generators and tests care about this.
    pub fn is_bipartite(&self) -> bool {
        let mut color = vec![u8::MAX; self.n];
        for start in 0..self.n {
            if color[start] != u8::MAX {
                continue;
            }
            color[start] = 0;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.adj[u] {
                    if color[v] == u8::MAX {
                        color[v] = 1 - color[u];
                        stack.push(v);
                    } else if color[v] == color[u] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The random-walk transition matrix `P` (§1.1): `P[u,v] = w(u,v) /
    /// deg(u)`, zero elsewhere.
    ///
    /// Isolated vertices get a self-transition of 1 so the matrix stays
    /// row-stochastic.
    pub fn transition_matrix(&self) -> Matrix {
        let mut p = Matrix::zeros(self.n, self.n);
        for u in 0..self.n {
            let d = self.degree(u);
            if d == 0.0 {
                p[(u, u)] = 1.0;
                continue;
            }
            for &(v, w) in &self.adj[u] {
                p[(u, v)] = w / d;
            }
        }
        p
    }

    /// [`Graph::transition_matrix`] in the requested representation.
    ///
    /// The sparse route builds CSR **directly from the adjacency lists**
    /// (already sorted by neighbor id, i.e. already in CSR row order)
    /// without ever allocating the `n × n` dense buffer — one row per
    /// machine, `O(deg)` entries per row, exactly the paper's §1.6
    /// distribution. Entry values are computed with the same `w / deg(u)`
    /// arithmetic as the dense route, so the two representations hold
    /// bit-identical probabilities.
    pub fn transition_pmatrix(&self, repr: Repr) -> PMatrix {
        match repr {
            Repr::Dense => PMatrix::Dense(self.transition_matrix()),
            Repr::Sparse => {
                let mut b = CsrMatrix::builder(self.n, self.n);
                for u in 0..self.n {
                    let d = self.degree(u);
                    if d == 0.0 {
                        b.push(u, 1.0);
                    } else {
                        for &(v, w) in &self.adj[u] {
                            b.push(v, w / d);
                        }
                    }
                    b.finish_row();
                }
                PMatrix::Sparse(b.build())
            }
        }
    }

    /// The graph Laplacian `L = D − A` (§1.7).
    pub fn laplacian(&self) -> Matrix {
        let mut l = Matrix::zeros(self.n, self.n);
        for &(u, v, w) in &self.edges {
            l[(u, u)] += w;
            l[(v, v)] += w;
            l[(u, v)] -= w;
            l[(v, u)] -= w;
        }
        l
    }

    /// Returns `true` if every edge weight is a positive integer (within
    /// `1e-9`), as required by footnote 1 for the weighted extension.
    pub fn has_integer_weights(&self) -> bool {
        self.edges
            .iter()
            .all(|&(_, _, w)| (w - w.round()).abs() < 1e-9 && w.round() >= 1.0)
    }

    /// Largest edge weight (`W` in footnote 1); 0 for edgeless graphs.
    pub fn max_weight(&self) -> f64 {
        self.edges.iter().fold(0.0, |acc, &(_, _, w)| acc.max(w))
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Returns a copy of this graph with all weights replaced by 1.
    pub fn unweighted(&self) -> Graph {
        let edges: Vec<(usize, usize)> = self.edges.iter().map(|&(u, v, _)| (u, v)).collect();
        Graph::from_edges(self.n, &edges).expect("valid by construction")
    }

    /// The induced subgraph on `keep` (vertices relabeled `0..keep.len()`
    /// in the given order), together with the mapping back to original
    /// ids.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains duplicates or out-of-range vertices.
    pub fn induced_subgraph(&self, keep: &[usize]) -> (Graph, Vec<usize>) {
        let mut index = vec![usize::MAX; self.n];
        for (new, &old) in keep.iter().enumerate() {
            assert!(old < self.n, "vertex {old} out of range");
            assert!(index[old] == usize::MAX, "duplicate vertex {old}");
            index[old] = new;
        }
        let mut edges = Vec::new();
        for &(u, v, w) in &self.edges {
            if index[u] != usize::MAX && index[v] != usize::MAX {
                edges.push((index[u], index[v], w));
            }
        }
        let g = Graph::from_weighted_edges(keep.len(), &edges).expect("valid by construction");
        (g, keep.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cct_linalg::is_row_stochastic;

    fn triangle_plus_leaf() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_leaf();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 3.0);
        assert_eq!(g.degree(3), 1.0);
        assert_eq!(g.num_neighbors(0), 3);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 3), None);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 })
        );
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
        assert_eq!(
            Graph::from_weighted_edges(2, &[(0, 1, 0.0)]),
            Err(GraphError::BadWeight(0.0))
        );
        assert!(Graph::from_weighted_edges(2, &[(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn connectivity() {
        assert!(triangle_plus_leaf().is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert!(Graph::from_edges(1, &[]).unwrap().is_connected());
        assert!(Graph::from_edges(0, &[]).unwrap().is_connected());
    }

    #[test]
    fn bipartiteness() {
        let even_cycle = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(even_cycle.is_bipartite());
        assert!(!triangle_plus_leaf().is_bipartite());
        // Disconnected graph with one odd component.
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4), (4, 2)]).unwrap();
        assert!(!g.is_bipartite());
    }

    #[test]
    fn transition_matrix_is_stochastic() {
        let g = triangle_plus_leaf();
        let p = g.transition_matrix();
        assert!(is_row_stochastic(&p, 1e-12));
        assert_eq!(p[(3, 0)], 1.0);
        assert!((p[(0, 1)] - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(p[(1, 3)], 0.0);
    }

    #[test]
    fn weighted_transition_matrix() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 3.0), (0, 2, 1.0)]).unwrap();
        let p = g.transition_matrix();
        assert_eq!(p[(0, 1)], 0.75);
        assert_eq!(p[(0, 2)], 0.25);
        assert_eq!(p[(1, 0)], 1.0);
    }

    #[test]
    fn laplacian_row_sums_are_zero() {
        let g = triangle_plus_leaf();
        let l = g.laplacian();
        for i in 0..g.n() {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
        assert_eq!(l[(0, 0)], 3.0);
        assert_eq!(l[(0, 1)], -1.0);
    }

    #[test]
    fn integer_weight_detection() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 4.0)]).unwrap();
        assert!(g.has_integer_weights());
        assert_eq!(g.max_weight(), 4.0);
        let h = Graph::from_weighted_edges(2, &[(0, 1, 0.5)]).unwrap();
        assert!(!h.has_integer_weights());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_leaf();
        let (sub, map) = g.induced_subgraph(&[2, 0, 3]);
        assert_eq!(sub.n(), 3);
        // Edges kept: (2,0) -> (0,1), (0,3) -> (1,2).
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        assert_eq!(map, vec![2, 0, 3]);
    }

    #[test]
    fn unweighted_copy() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 5.0), (1, 2, 2.0)]).unwrap();
        let u = g.unweighted();
        assert_eq!(u.edge_weight(0, 1), Some(1.0));
        assert_eq!(u.m(), 2);
    }

    #[test]
    fn isolated_vertex_self_transition() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let p = g.transition_matrix();
        assert_eq!(p[(2, 2)], 1.0);
        assert!(is_row_stochastic(&p, 1e-12));
    }

    #[test]
    fn transition_pmatrix_is_bit_identical_across_representations() {
        let weighted =
            Graph::from_weighted_edges(4, &[(0, 1, 3.0), (0, 2, 1.0), (2, 3, 2.0)]).unwrap();
        for g in [triangle_plus_leaf(), weighted] {
            let dense = g.transition_matrix();
            let sparse = g.transition_pmatrix(Repr::Sparse);
            assert!(sparse.is_sparse());
            assert_eq!(sparse.to_dense(), dense, "sparse CSR build must match");
            assert_eq!(g.transition_pmatrix(Repr::Dense).to_dense(), dense);
        }
        // Isolated vertices keep their self-loop in CSR too.
        let iso = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(iso.transition_pmatrix(Repr::Sparse).get(2, 2), 1.0);
    }
}
