//! Graph generators used throughout the experiment suite.
//!
//! The families mirror the graphs the paper reasons about: complete graphs
//! and expanders (fast cover), paths and lollipops (slow cover, the
//! `Θ(mn)` worst case motivating the top-down algorithm), Erdős–Rényi
//! `G(n, p)` with `p = Ω(log n / n)` and the dense irregular
//! `K_{n−√n, √n}` (both `O(n log n)` cover time, §1.2 / Corollary 1).

use crate::{Graph, GraphError};
use rand::seq::SliceRandom;
use rand::Rng;

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "need at least one vertex");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The path `0 — 1 — … — (n−1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "need at least one vertex");
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The cycle `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The star `K_{1,n−1}` with centre `0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "a star needs at least 2 vertices");
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The wheel: a cycle on `n−1` vertices plus a hub adjacent to all.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 vertices");
    let hub = n - 1;
    let ring = n - 1;
    let mut edges: Vec<(usize, usize)> = (0..ring).map(|i| (i, (i + 1) % ring)).collect();
    edges.extend((0..ring).map(|i| (i, hub)));
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The `rows × cols` grid graph.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("valid by construction")
}

/// The complete bipartite graph `K_{a,b}`; side `A` is `0..a`.
///
/// With `a = n − ⌊√n⌋` and `b = ⌊√n⌋` this is the paper's example of a
/// dense, highly irregular graph with `O(n log n)` cover time (§1.2); see
/// [`k_dense_irregular`].
///
/// # Panics
///
/// Panics if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "both sides must be non-empty");
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in a..a + b {
            edges.push((u, v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("valid by construction")
}

/// The paper's `K_{n−√n, √n}` (§1.2): dense, highly irregular, yet
/// `O(n log n)` cover time by a coupon-collector argument.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn k_dense_irregular(n: usize) -> Graph {
    assert!(n >= 4, "need n ≥ 4");
    let b = (n as f64).sqrt().floor() as usize;
    complete_bipartite(n - b, b)
}

/// Two `k`-cliques joined by a single bridge edge.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 2, "cliques need at least 2 vertices");
    let mut edges = Vec::new();
    for u in 0..k {
        for v in u + 1..k {
            edges.push((u, v));
            edges.push((k + u, k + v));
        }
    }
    edges.push((k - 1, k));
    Graph::from_edges(2 * k, &edges).expect("valid by construction")
}

/// A `k`-clique with a path of `tail` extra vertices hanging off vertex
/// `k−1` — the classical worst case for cover time (`Θ(n³)` when
/// `tail ≈ k`).
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 2, "clique needs at least 2 vertices");
    let mut edges = Vec::new();
    for u in 0..k {
        for v in u + 1..k {
            edges.push((u, v));
        }
    }
    for t in 0..tail {
        edges.push((k - 1 + t, k + t));
    }
    Graph::from_edges(k + tail, &edges).expect("valid by construction")
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices — a classical
/// expander-adjacent family with `O(n log n)` cover time.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32) -> Graph {
    assert!((1..=20).contains(&d), "dimension must be in 1..=20");
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The `rows × cols` torus (grid with wraparound) — 4-regular,
/// vertex-transitive.
///
/// # Panics
///
/// Panics if either dimension is below 3 (wraparound would create
/// duplicate edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be ≥ 3");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("valid by construction")
}

/// A complete binary tree of the given depth (`2^{depth+1} − 1`
/// vertices, root 0) — a unique-spanning-tree input with long hitting
/// times between leaves.
///
/// # Panics
///
/// Panics if `depth > 20`.
pub fn binary_tree(depth: u32) -> Graph {
    assert!(depth <= 20, "depth must be ≤ 20");
    let n = (1usize << (depth + 1)) - 1;
    let edges: Vec<(usize, usize)> = (1..n).map(|v| ((v - 1) / 2, v)).collect();
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// The Petersen graph (3-regular, 10 vertices, girth 5).
pub fn petersen() -> Graph {
    let mut edges = Vec::new();
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer pentagon
        edges.push((i, i + 5)); // spokes
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
    }
    Graph::from_edges(10, &edges).expect("valid by construction")
}

/// Erdős–Rényi `G(n, p)`: every edge present independently with
/// probability `p`. Not necessarily connected — see
/// [`erdos_renyi_connected`].
///
/// # Panics
///
/// Panics if `p` is not in `\[0, 1\]` or `n == 0`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "need at least one vertex");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid by construction")
}

/// Erdős–Rényi conditioned on connectivity: resamples until connected.
///
/// # Panics
///
/// Panics if 1000 attempts fail (i.e. `p` is far below the connectivity
/// threshold `log n / n`). See [`try_erdos_renyi_connected`] for the
/// fallible variant.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    try_erdos_renyi_connected(n, p, rng).unwrap_or_else(|| {
        panic!("G({n}, {p}) failed to produce a connected graph in 1000 attempts")
    })
}

/// Fallible [`erdos_renyi_connected`]: `None` if 1000 attempts all come
/// out disconnected, so callers with untrusted `p` (e.g. the CLI) can
/// report an error instead of panicking.
///
/// # Panics
///
/// Panics if `p` is not in `\[0, 1\]` or `n == 0`.
pub fn try_erdos_renyi_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Option<Graph> {
    (0..1000)
        .map(|_| erdos_renyi(n, p, rng))
        .find(Graph::is_connected)
}

/// A random `d`-regular graph via the configuration model with rejection
/// (resampled until simple and connected).
///
/// Random regular graphs are expanders with high probability, giving the
/// `O(n log n)` cover times Corollary 1 wants.
///
/// # Panics
///
/// Panics if `n·d` is odd, `d ≥ n`, or 1000 attempts fail. See
/// [`try_random_regular`] for the last case's fallible variant.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    try_random_regular(n, d, rng)
        .unwrap_or_else(|| panic!("failed to sample a connected {d}-regular graph on {n} vertices"))
}

/// Fallible [`random_regular`]: `None` if 1000 configuration-model
/// attempts fail to produce a simple connected graph.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d ≥ n` (domain errors, unlike sampling
/// failures).
pub fn try_random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Option<Graph> {
    assert!(n * d % 2 == 0, "n·d must be even");
    assert!(d >= 1 && d < n, "need 1 ≤ d < n");
    'attempt: for _ in 0..1000 {
        // Stubs: d copies of each vertex, matched uniformly.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                continue 'attempt;
            }
            edges.push(key);
        }
        let g = Graph::from_edges(n, &edges).expect("valid by construction");
        if g.is_connected() {
            return Some(g);
        }
    }
    None
}

/// Replaces every weight with a uniform random integer in `1..=max_weight`
/// (footnote 1's bounded-integer-weight setting).
///
/// # Errors
///
/// Propagates [`GraphError`] (cannot occur for a valid input graph).
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn with_random_integer_weights<R: Rng + ?Sized>(
    g: &Graph,
    max_weight: u64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    let edges: Vec<(usize, usize, f64)> = g
        .edges()
        .iter()
        .map(|&(u, v, _)| (u, v, rng.gen_range(1..=max_weight) as f64))
        .collect();
    Graph::from_weighted_edges(g.n(), &edges)
}

/// SplitMix64's finalizer over a `(master, key)` pair — the same mix as
/// `cct_sim::machine_seed` (replicated here because `cct-graph` sits
/// below `cct-sim` in the dependency order). Used to derive per-edge
/// weights that are a pure function of the edge, independent of any RNG
/// stream.
fn splitmix_pair(master: u64, key: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(key.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic weight the weighted spec families (`er-w`,
/// `grid-w`, …) assign to the edge `{u, v}`: an integer in
/// `1..=max_weight`, a pure function of `(stream, min(u,v), max(u,v))`
/// via two chained SplitMix64 finalizers. No RNG is consumed, so a
/// weighted spec still denotes *one* fixed weighting however the caller
/// seeded the generator RNG — the invariant the sampling service's
/// spec-keyed cache relies on.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn deterministic_edge_weight(stream: u64, u: usize, v: usize, max_weight: u64) -> u64 {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    let (a, b) = (u.min(v) as u64, u.max(v) as u64);
    1 + splitmix_pair(splitmix_pair(stream, a), b) % max_weight
}

/// Replaces every weight with [`deterministic_edge_weight`]`(stream, u,
/// v, max_weight)` — footnote 1's bounded positive integer weights, but
/// reproducible from the edge alone (no RNG stream to keep in sync).
///
/// # Errors
///
/// Propagates [`GraphError`] (cannot occur for a valid input graph).
///
/// # Panics
///
/// Panics if `max_weight == 0`.
///
/// # Examples
///
/// ```
/// use cct_graph::generators::{complete, with_deterministic_integer_weights};
///
/// let a = with_deterministic_integer_weights(&complete(5), 8, 7).unwrap();
/// let b = with_deterministic_integer_weights(&complete(5), 8, 7).unwrap();
/// assert_eq!(a.edges(), b.edges());
/// assert!(a.has_integer_weights() && a.max_weight() <= 8.0);
/// ```
pub fn with_deterministic_integer_weights(
    g: &Graph,
    max_weight: u64,
    stream: u64,
) -> Result<Graph, GraphError> {
    let edges: Vec<(usize, usize, f64)> = g
        .edges()
        .iter()
        .map(|&(u, v, _)| {
            (
                u,
                v,
                deterministic_edge_weight(stream, u, v, max_weight) as f64,
            )
        })
        .collect();
    Graph::from_weighted_edges(g.n(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert!(g.is_connected());
        assert!((0..6).all(|v| g.degree(v) == 5.0));
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.m(), 4);
        assert_eq!(p.degree(0), 1.0);
        assert_eq!(p.degree(2), 2.0);
        let c = cycle(5);
        assert_eq!(c.m(), 5);
        assert!((0..5).all(|v| c.degree(v) == 2.0));
        assert!(!c.is_bipartite());
        assert!(cycle(6).is_bipartite());
    }

    #[test]
    fn star_structure() {
        let s = star(5);
        assert_eq!(s.degree(0), 4.0);
        assert!((1..5).all(|v| s.degree(v) == 1.0));
        assert!(s.is_bipartite());
    }

    #[test]
    fn wheel_structure() {
        let w = wheel(6);
        assert_eq!(w.n(), 6);
        assert_eq!(w.degree(5), 5.0); // hub
        assert!((0..5).all(|v| w.degree(v) == 3.0));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(g.is_bipartite());
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 2.0); // corner
        assert_eq!(g.degree(5), 4.0); // interior
    }

    #[test]
    fn bipartite_families() {
        let kb = complete_bipartite(3, 4);
        assert_eq!(kb.m(), 12);
        assert!(kb.is_bipartite());
        let kd = k_dense_irregular(16);
        assert_eq!(kd.n(), 16);
        // sides 12 and 4
        assert_eq!(kd.degree(0), 4.0);
        assert_eq!(kd.degree(15), 12.0);
    }

    #[test]
    fn barbell_and_lollipop() {
        let b = barbell(4);
        assert_eq!(b.n(), 8);
        assert_eq!(b.m(), 2 * 6 + 1);
        assert!(b.is_connected());
        let l = lollipop(4, 3);
        assert_eq!(l.n(), 7);
        assert_eq!(l.m(), 6 + 3);
        assert_eq!(l.degree(6), 1.0); // tail end
        assert!(l.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let q3 = hypercube(3);
        assert_eq!(q3.n(), 8);
        assert_eq!(q3.m(), 12);
        assert!((0..8).all(|v| q3.degree(v) == 3.0));
        assert!(q3.is_bipartite());
        assert!(q3.is_connected());
        assert!(q3.has_edge(0b000, 0b100));
        assert!(!q3.has_edge(0b000, 0b110));
    }

    #[test]
    fn torus_structure() {
        let t = torus(3, 4);
        assert_eq!(t.n(), 12);
        assert_eq!(t.m(), 24);
        assert!((0..12).all(|v| t.degree(v) == 4.0));
        assert!(t.is_connected());
        // Wraparound edges exist.
        assert!(t.has_edge(0, 3)); // row 0: col 0 ↔ col 3
        assert!(t.has_edge(0, 8)); // col 0: row 0 ↔ row 2
    }

    #[test]
    fn binary_tree_structure() {
        let t = binary_tree(3);
        assert_eq!(t.n(), 15);
        assert_eq!(t.m(), 14);
        assert!(t.is_connected());
        assert!(t.is_bipartite());
        assert_eq!(t.degree(0), 2.0); // root
        assert_eq!(t.degree(14), 1.0); // leaf
        assert_eq!(crate::spanning_tree_count_exact(&t).unwrap(), 1);
    }

    #[test]
    fn petersen_is_three_regular() {
        let p = petersen();
        assert_eq!(p.n(), 10);
        assert_eq!(p.m(), 15);
        assert!((0..10).all(|v| p.degree(v) == 3.0));
        assert!(p.is_connected());
        assert!(!p.is_bipartite());
    }

    #[test]
    fn erdos_renyi_edge_count_reasonable() {
        let mut r = rng();
        let g = erdos_renyi(40, 0.5, &mut r);
        let expect = 0.5 * (40.0 * 39.0 / 2.0);
        assert!((g.m() as f64 - expect).abs() < 5.0 * expect.sqrt());
        let empty = erdos_renyi(10, 0.0, &mut r);
        assert_eq!(empty.m(), 0);
        let full = erdos_renyi(10, 1.0, &mut r);
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        let mut r = rng();
        let g = erdos_renyi_connected(30, 0.3, &mut r);
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut r = rng();
        for d in [2usize, 3, 4] {
            let n = 20;
            let g = random_regular(n, d, &mut r);
            assert!((0..n).all(|v| g.degree(v) == d as f64), "d = {d}");
            assert!(g.is_connected());
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_odd_total_panics() {
        let mut r = rng();
        let _ = random_regular(5, 3, &mut r);
    }

    #[test]
    fn random_weights_are_integer_bounded() {
        let mut r = rng();
        let g = with_random_integer_weights(&complete(6), 7, &mut r).unwrap();
        assert!(g.has_integer_weights());
        assert!(g.max_weight() <= 7.0);
        assert!(g.edges().iter().all(|&(_, _, w)| w >= 1.0));
    }
}
