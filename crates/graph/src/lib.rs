//! # cct-graph
//!
//! Graphs, generators, spanning-tree types, and exact tree counting for
//! the `cct` workspace.
//!
//! This crate is the combinatorial substrate of the Congested Clique
//! spanning-tree sampler (Pemmaraju–Roy–Sobel, PODC 2025):
//!
//! * [`Graph`] — simple undirected graphs with positive weights, their
//!   transition matrices (§1.1) and Laplacians (§1.7);
//! * [`generators`] — the graph families the paper reasons about
//!   (expanders, `G(n,p)`, `K_{n−√n,√n}`, lollipops, …);
//! * [`SpanningTree`] — validated trees with canonical encodings;
//! * [`spanning_tree_count`] / [`enumerate_spanning_trees`] — Matrix–Tree
//!   ground truths for every uniformity experiment.
//!
//! # Examples
//!
//! ```
//! use cct_graph::{generators, spanning_tree_count_exact};
//!
//! let g = generators::complete(4);
//! // Cayley: 4^{4−2} = 16.
//! assert_eq!(spanning_tree_count_exact(&g)?, 16);
//! # Ok::<(), cct_linalg::ExactOverflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count;
mod dsu;
pub mod generators;
#[allow(clippy::module_inception)]
mod graph;
pub mod io;
mod resistance;
pub mod spec;
mod tree;

pub use count::{
    enumerate_spanning_trees, spanning_tree_count, spanning_tree_count_exact,
    spanning_tree_distribution,
};
pub use dsu::DisjointSet;
pub use graph::{Graph, GraphError};
pub use resistance::{effective_resistance, spanning_tree_edge_marginals};
pub use tree::{SpanningTree, TreeError};
