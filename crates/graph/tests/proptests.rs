//! Property-based tests for `cct-graph` invariants.

use cct_graph::{enumerate_spanning_trees, generators, spanning_tree_count_exact, Graph};
use cct_linalg::is_row_stochastic;
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a connected random graph described by (n, seed, density).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..=10, any::<u64>(), 0.3f64..0.9).prop_map(|(n, seed, p)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, p, &mut rng)
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in connected_graph()) {
        let deg_sum: f64 = (0..g.n()).map(|v| g.degree(v)).sum();
        prop_assert!((deg_sum - 2.0 * g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn transition_matrix_stochastic(g in connected_graph()) {
        prop_assert!(is_row_stochastic(&g.transition_matrix(), 1e-9));
    }

    #[test]
    fn laplacian_rows_sum_zero_and_symmetric(g in connected_graph()) {
        let l = g.laplacian();
        for i in 0..g.n() {
            prop_assert!(l.row(i).iter().sum::<f64>().abs() < 1e-9);
            for j in 0..g.n() {
                prop_assert!((l[(i, j)] - l[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric(g in connected_graph()) {
        for u in 0..g.n() {
            for &(v, w) in g.neighbors(u) {
                prop_assert_eq!(g.edge_weight(v, u), Some(w));
            }
        }
    }

    #[test]
    fn enumeration_count_matches_matrix_tree(
        (n, seed, p) in (3usize..=7, any::<u64>(), 0.3f64..0.9)
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, p, &mut rng);
        let trees = enumerate_spanning_trees(&g);
        let exact = spanning_tree_count_exact(&g).unwrap();
        prop_assert_eq!(trees.len() as i128, exact);
        // Every enumerated tree uses only graph edges.
        for t in &trees {
            for &(u, v) in t.edges() {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn deleting_any_edge_of_cycle_spans(n in 3usize..=9) {
        let g = generators::cycle(n);
        let trees = enumerate_spanning_trees(&g);
        prop_assert_eq!(trees.len(), n);
    }

    #[test]
    fn induced_subgraph_preserves_weights(g in connected_graph()) {
        let keep: Vec<usize> = (0..g.n()).step_by(2).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        for (new_u, &old_u) in map.iter().enumerate() {
            for &(new_v, w) in sub.neighbors(new_u) {
                prop_assert_eq!(g.edge_weight(old_u, map[new_v]), Some(w));
            }
        }
    }

    #[test]
    fn random_regular_degree(seed in any::<u64>(), d in 2usize..=4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 12;
        let g = generators::random_regular(n, d, &mut rng);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), d as f64);
        }
    }
}
