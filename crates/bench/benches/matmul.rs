//! Criterion bench: distributed matrix multiplication engines (the
//! dominant per-phase cost, Lemma 5).

use cct_linalg::{normalize_rows, Matrix};
use cct_sim::{Clique, FastOracleEngine, MatMulEngine, SemiringEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_stochastic(n: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>());
    normalize_rows(&mut m);
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [64usize, 128, 216] {
        let a = random_stochastic(n, 1);
        let b_mat = random_stochastic(n, 2);
        group.bench_with_input(BenchmarkId::new("local", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b_mat));
        });
        group.bench_with_input(BenchmarkId::new("local_4threads", n), &n, |bench, _| {
            bench.iter(|| a.matmul_parallel(&b_mat, 4));
        });
        group.bench_with_input(BenchmarkId::new("fast_oracle", n), &n, |bench, _| {
            let engine = FastOracleEngine::default();
            bench.iter(|| {
                let mut clique = Clique::new(n);
                engine.multiply(&mut clique, &a, &b_mat)
            });
        });
        group.bench_with_input(BenchmarkId::new("semiring_simulated", n), &n, |bench, _| {
            let engine = SemiringEngine::new(1);
            bench.iter(|| {
                let mut clique = Clique::new(n);
                engine.multiply(&mut clique, &a, &b_mat)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
