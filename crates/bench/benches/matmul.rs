//! Criterion bench: distributed matrix multiplication engines (the
//! dominant per-phase cost, Lemma 5).

use cct_linalg::{normalize_rows, Matrix};
use cct_sim::{Clique, FastOracleEngine, MatMulEngine, SemiringEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_stochastic(n: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>());
    normalize_rows(&mut m);
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [64usize, 128, 216] {
        let a = random_stochastic(n, 1);
        let b_mat = random_stochastic(n, 2);
        group.bench_with_input(BenchmarkId::new("local", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b_mat));
        });
        group.bench_with_input(BenchmarkId::new("local_into_scratch", n), &n, |bench, _| {
            // The allocation-free kernel: the scratch buffer lives across
            // iterations, as it does in the power pipelines.
            let mut scratch = Matrix::zeros(n, n);
            bench.iter(|| a.matmul_into(&b_mat, &mut scratch));
        });
        group.bench_with_input(BenchmarkId::new("local_4threads", n), &n, |bench, _| {
            bench.iter(|| a.matmul_parallel(&b_mat, 4));
        });
        group.bench_with_input(BenchmarkId::new("fast_oracle", n), &n, |bench, _| {
            let engine = FastOracleEngine::default();
            bench.iter(|| {
                let mut clique = Clique::new(n);
                engine.multiply(&mut clique, &a, &b_mat)
            });
        });
        group.bench_with_input(BenchmarkId::new("semiring_simulated", n), &n, |bench, _| {
            let engine = SemiringEngine::new(1);
            bench.iter(|| {
                let mut clique = Clique::new(n);
                engine.multiply(&mut clique, &a, &b_mat)
            });
        });
    }
    group.finish();
}

/// Micro-benches for the slice-based [`Matrix::transpose`] and
/// [`Matrix::col`] rewrites (formerly `from_fn`/per-element indexing
/// with a bounds check per access).
fn bench_transpose_col(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose_col");
    for n in [64usize, 256, 512] {
        let a = random_stochastic(n, 3);
        group.bench_with_input(BenchmarkId::new("transpose", n), &n, |bench, _| {
            bench.iter(|| a.transpose());
        });
        group.bench_with_input(BenchmarkId::new("col", n), &n, |bench, _| {
            bench.iter(|| a.col(n / 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_transpose_col);
criterion_main!(benches);
