//! Criterion bench: the main sampler (E1's kernel) across n and engines.

use cct_core::{CliqueTreeSampler, EngineChoice, SamplerConfig, WalkLength};
use cct_graph::generators;
use cct_sim::ALPHA;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_main_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("main_sampler");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let p = (2.0 * (n as f64).ln() / n as f64).min(0.9);
        let g = generators::erdos_renyi_connected(n, p, &mut seed_rng);
        let sampler = CliqueTreeSampler::new(
            SamplerConfig::new().engine(EngineChoice::FastOracle { alpha: ALPHA }),
        );
        group.bench_with_input(BenchmarkId::new("theorem1", n), &g, |b, g| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            b.iter(|| sampler.sample(g, &mut rng).unwrap());
        });
    }
    // Exact variant at one size for comparison.
    let g = generators::erdos_renyi_connected(32, 0.4, &mut rand::rngs::StdRng::seed_from_u64(1));
    let exact = CliqueTreeSampler::new(SamplerConfig::exact_variant());
    group.bench_with_input(BenchmarkId::new("exact_variant", 32), &g, |b, g| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        b.iter(|| exact.sample(g, &mut rng).unwrap());
    });
    // Direction 4 prototype (§1.4) at one size for comparison.
    group.bench_with_input(BenchmarkId::new("direction4", 32), &g, |b, g| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        b.iter(|| cct_core::direction4_sample(g, 1.0, &mut rng).unwrap());
    });
    // Semiring engine (real data movement) at one size.
    let sem = CliqueTreeSampler::new(
        SamplerConfig::new()
            .engine(EngineChoice::Semiring)
            .walk_length(WalkLength::ScaledCubic { factor: 1.0 }),
    );
    group.bench_with_input(BenchmarkId::new("semiring_engine", 32), &g, |b, g| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        b.iter(|| sem.sample(g, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_main_sampler);
criterion_main!(benches);
