//! Criterion bench: weighted perfect-matching samplers (E9's kernel).

use cct_matching::{ExactPermanentSampler, MatchingInstance, SwapChainSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_instance(values: usize, groups: usize, copies: usize, seed: u64) -> MatchingInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let value_counts = vec![copies; values];
    let total = values * copies;
    let base = total / groups;
    let mut group_sizes = vec![base; groups];
    group_sizes[0] += total - base * groups;
    let weights = (0..values)
        .map(|_| (0..groups).map(|_| 0.1 + rng.gen::<f64>()).collect())
        .collect();
    MatchingInstance::new(value_counts, group_sizes, weights).unwrap()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(20);
    // Exact permanent sampler on instances up to its limit.
    for slots in [6usize, 10, 14] {
        let inst = random_instance(slots / 2, 2, 2, slots as u64);
        group.bench_with_input(BenchmarkId::new("exact_jvv", slots), &inst, |b, inst| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| ExactPermanentSampler.sample(inst, &mut rng).unwrap());
        });
    }
    // Swap chain across sizes the exact sampler cannot touch.
    for slots in [16usize, 64, 256] {
        let inst = random_instance(slots / 4, 4, 4, slots as u64);
        group.bench_with_input(BenchmarkId::new("swap_chain", slots), &inst, |b, inst| {
            let sampler = SwapChainSampler { steps_per_slot: 64 };
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| sampler.sample(inst, None, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
