//! Criterion bench: doubling walks (E4/E6 kernels) — balanced vs naive,
//! short vs long walks, and the Corollary 1 tree sampler.

use cct_doubling::{doubling_walks, sample_tree_via_doubling, Balancing};
use cct_graph::generators;
use cct_sim::Clique;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_doubling(c: &mut Criterion) {
    let mut group = c.benchmark_group("doubling");
    group.sample_size(10);
    let n = 64;
    let g = generators::random_regular(n, 4, &mut rand::rngs::StdRng::seed_from_u64(1));
    for tau in [16u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("balanced", tau), &tau, |b, &tau| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut clique = Clique::new(n);
                doubling_walks(&mut clique, &g, tau, Balancing::Balanced { c: 1 }, &mut rng)
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", tau), &tau, |b, &tau| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut clique = Clique::new(n);
                doubling_walks(&mut clique, &g, tau, Balancing::Naive, &mut rng)
            });
        });
    }
    group.bench_function("corollary1_tree_n64", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut clique = Clique::new(n);
            sample_tree_via_doubling(&mut clique, &g, 2.0, 4000, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_doubling);
criterion_main!(benches);
