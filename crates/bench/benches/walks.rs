//! Criterion bench: the sequential tree samplers and the top-down fill
//! (baselines the distributed algorithm is measured against).

use cct_graph::generators;
use cct_linalg::powers_of_two;
use cct_walks::{aldous_broder, top_down_walk, truncated_top_down_walk, wilson};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("walks");
    for n in [32usize, 128] {
        let g = generators::erdos_renyi_connected(
            n,
            0.3,
            &mut rand::rngs::StdRng::seed_from_u64(n as u64),
        );
        group.bench_with_input(BenchmarkId::new("aldous_broder", n), &g, |b, g| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| aldous_broder(g, 0, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("wilson", n), &g, |b, g| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| wilson(g, 0, &mut rng).unwrap());
        });
        let table = powers_of_two(&g.transition_matrix(), 11, 1);
        group.bench_with_input(BenchmarkId::new("top_down_walk_1024", n), &g, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| top_down_walk(&table, 0, 1024, &mut rng));
        });
        let rho = (n as f64).sqrt() as usize;
        group.bench_with_input(BenchmarkId::new("truncated_top_down", n), &g, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            b.iter(|| truncated_top_down_walk(&table, 0, 1024, rho, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
