//! Criterion bench: Schur complement and shortcut graph construction
//! (the per-phase derivative-graph cost of §2.4).

use cct_graph::generators;
use cct_schur::{
    schur_transition_exact, schur_transition_from_shortcut, shortcut_by_squaring, shortcut_exact,
    VertexSubset,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_schur(c: &mut Criterion) {
    let mut group = c.benchmark_group("schur");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let g = generators::erdos_renyi_connected(
            n,
            0.2,
            &mut rand::rngs::StdRng::seed_from_u64(n as u64),
        );
        let keep: Vec<usize> = (0..n / 2).collect();
        let s = VertexSubset::new(n, &keep);
        group.bench_with_input(BenchmarkId::new("shortcut_exact_solve", n), &n, |b, _| {
            b.iter(|| shortcut_exact(&g, &s));
        });
        group.bench_with_input(BenchmarkId::new("shortcut_squaring", n), &n, |b, _| {
            b.iter(|| shortcut_by_squaring(&g, &s, 1e-10, 64));
        });
        group.bench_with_input(BenchmarkId::new("schur_laplacian", n), &n, |b, _| {
            b.iter(|| schur_transition_exact(&g, &s));
        });
        let q = shortcut_exact(&g, &s);
        group.bench_with_input(BenchmarkId::new("schur_via_corollary3", n), &n, |b, _| {
            b.iter(|| schur_transition_from_shortcut(&g, &s, &q));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schur);
criterion_main!(benches);
